//! # Adrias — interference-aware memory orchestration, reproduced in Rust
//!
//! This is the facade crate of a full reproduction of *“Adrias:
//! Interference-Aware Memory Orchestration for Disaggregated Cloud
//! Infrastructures”* (HPCA 2023). It re-exports the subsystem crates
//! under stable module names:
//!
//! * [`workloads`] — Spark/HiBench BE jobs, Redis/Memcached LC services,
//!   iBench stressors, arrival processes, application signatures;
//! * [`sim`] — the ThymesisFlow-like testbed simulator (channel model,
//!   contention, performance counters);
//! * [`telemetry`] — the Watcher, metric time series and statistics;
//! * [`nn`] — the LSTM/MLP deep-learning substrate;
//! * [`predictor`] — the system-state forecaster and the universal
//!   performance models;
//! * [`orchestrator`] — the Adrias policy, the baseline schedulers and
//!   the deployment engine;
//! * [`scenarios`] — scenario corpora, trace collection and the
//!   one-call [`scenarios::train_stack`] offline phase;
//! * [`obs`] — deterministic tracing, the metrics registry and the
//!   orchestration decision audit trail.
//!
//! # Examples
//!
//! Train a small stack and place one arriving application:
//!
//! ```no_run
//! use adrias::orchestrator::{DecisionContext, Policy};
//! use adrias::scenarios::{train_stack, StackOptions};
//! use adrias::workloads::{spark, WorkloadCatalog};
//!
//! let catalog = WorkloadCatalog::paper();
//! let stack = train_stack(&catalog, &StackOptions::quick());
//! let mut policy = stack.policy(0.8, 5.0);
//! let app = spark::by_name("gmm").expect("known app");
//! let mode = policy.decide(&DecisionContext {
//!     profile: &app,
//!     history: None, // warm-up: falls back to local
//!     qos_p99_ms: None,
//!     stamp: None,
//! });
//! println!("place gmm on {mode}");
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench/benches/` for the harnesses regenerating every table
//! and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adrias_core as core_util;
pub use adrias_nn as nn;
pub use adrias_obs as obs;
pub use adrias_orchestrator as orchestrator;
pub use adrias_predictor as predictor;
pub use adrias_scenarios as scenarios;
pub use adrias_sim as sim;
pub use adrias_telemetry as telemetry;
pub use adrias_workloads as workloads;
