//! A counting global allocator for allocation-freedom tests.
//!
//! The orchestrator's steady-state decision path claims to make zero
//! heap allocations. Claims like that rot silently, so this module
//! provides [`CountingAllocator`]: a transparent wrapper around the
//! system allocator that counts allocations on the current thread while
//! a [`pause_counting`]-free window opened by [`start_counting`] is
//! active. A test binary installs it with `#[global_allocator]` and
//! asserts the count over a hot loop is zero.
//!
//! Counting is thread-local and disabled by default, so installing the
//! allocator does not perturb the rest of the test binary (the harness,
//! other threads, setup code) beyond one relaxed TLS read per call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// A [`GlobalAlloc`] that forwards to [`System`] and counts
/// allocations made on threads that called [`start_counting`].
///
/// # Examples
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: adrias_core::alloc::CountingAllocator =
///     adrias_core::alloc::CountingAllocator;
///
/// adrias_core::alloc::start_counting();
/// hot_path();
/// let (allocs, _bytes) = adrias_core::alloc::stop_counting();
/// assert_eq!(allocs, 0);
/// ```
pub struct CountingAllocator;

/// Begins counting allocations on the current thread (resets counters).
pub fn start_counting() {
    ALLOCS.with(|c| c.set(0));
    BYTES.with(|c| c.set(0));
    COUNTING.with(|c| c.set(true));
}

/// Stops counting on the current thread and returns
/// `(allocation_count, bytes_allocated)` since [`start_counting`].
pub fn stop_counting() -> (u64, u64) {
    COUNTING.with(|c| c.set(false));
    (ALLOCS.with(Cell::get), BYTES.with(Cell::get))
}

fn note(size: usize) {
    if COUNTING.with(Cell::get) {
        ALLOCS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + size as u64));
    }
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counting side-channel only touches
// thread-local `Cell`s and never observes or alters the returned
// memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc that grows is a fresh allocation as far as an
        // allocation-freedom assertion is concerned.
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counting allocator is not installed in this crate's own test
    // binary, so only the bookkeeping side is testable here; the
    // orchestrator's `alloc_free` integration test installs it for real.
    #[test]
    fn counters_reset_and_accumulate() {
        start_counting();
        note(64);
        note(16);
        let (n, b) = stop_counting();
        assert_eq!(n, 2);
        assert_eq!(b, 80);
        start_counting();
        let (n, b) = stop_counting();
        assert_eq!((n, b), (0, 0));
    }

    #[test]
    fn counting_is_off_by_default() {
        note(128);
        start_counting();
        note(8);
        let (n, _) = stop_counting();
        assert_eq!(n, 1, "only the in-window note must count");
        note(4);
        let (n2, _) = stop_counting();
        assert_eq!(n2, 1, "notes after stop must not count");
    }
}
