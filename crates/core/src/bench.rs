//! Lightweight wall-clock benchmark harness.
//!
//! Replaces the external `criterion` dependency for the workspace's
//! micro-benchmarks: each benchmark is warmed up, then timed over a
//! fixed number of sample windows, and the median / p95 per-iteration
//! times are printed. No statistics engine, no plots — just numbers
//! that are comparable run-to-run on the same machine.
//!
//! Environment knobs: `ADRIAS_BENCH_SAMPLES` (default 30 windows) and
//! `ADRIAS_BENCH_WARMUP_MS` (default 200 ms per benchmark).
//!
//! ```no_run
//! use adrias_core::bench::{black_box, Harness};
//!
//! let mut h = Harness::new("micro");
//! h.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
//! });
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed sample windows (`ADRIAS_BENCH_SAMPLES`, default 30).
fn sample_count() -> usize {
    std::env::var("ADRIAS_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
        .max(2)
}

/// Warm-up budget per benchmark (`ADRIAS_BENCH_WARMUP_MS`, default 200).
fn warmup_budget() -> Duration {
    Duration::from_millis(
        std::env::var("ADRIAS_BENCH_WARMUP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200),
    )
}

/// Summary statistics of one benchmark, nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct BenchReport {
    /// Median over sample windows.
    pub median_ns: f64,
    /// 95th percentile over sample windows.
    pub p95_ns: f64,
    /// Total timed iterations.
    pub iterations: u64,
}

/// Passed to the measured closure; collects timing samples.
pub struct Bencher {
    samples_ns: Vec<f64>,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            samples_ns: Vec::new(),
            iterations: 0,
        }
    }

    /// Times `routine` directly: warm-up, then `sample_count()` windows
    /// whose per-iteration cost is recorded. The routine's output is
    /// passed through [`black_box`] so it is never optimized away.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up while estimating the per-call cost.
        let budget = warmup_budget();
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < budget {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        // Size each window to ≥ ~1 ms so timer resolution is negligible.
        let per_window = ((1e-3 / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..sample_count() {
            let t0 = Instant::now();
            for _ in 0..per_window {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples_ns.push(elapsed * 1e9 / per_window as f64);
            self.iterations += per_window;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement. Each window is a single call, so
    /// this suits routines that are ≥ microseconds.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let budget = warmup_budget();
        let warm_start = Instant::now();
        while warm_start.elapsed() < budget {
            black_box(routine(setup()));
        }
        for _ in 0..sample_count() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_secs_f64() * 1e9);
            self.iterations += 1;
        }
    }

    fn report(mut self) -> BenchReport {
        assert!(
            !self.samples_ns.is_empty(),
            "benchmark closure never called iter/iter_batched"
        );
        // Timing samples are elapsed durations and can never be NaN, so
        // a total order exists; total_cmp avoids a panicking unwrap.
        self.samples_ns.sort_by(f64::total_cmp);
        let n = self.samples_ns.len();
        let median_ns = self.samples_ns[n / 2];
        let p95_ns = self.samples_ns[((n as f64 * 0.95) as usize).min(n - 1)];
        BenchReport {
            median_ns,
            p95_ns,
            iterations: self.iterations,
        }
    }
}

/// A named group of benchmarks; prints one line per benchmark.
pub struct Harness {
    group: String,
    reports: Vec<(String, BenchReport)>,
}

impl Harness {
    /// Creates a harness and prints the group header.
    pub fn new(group: &str) -> Self {
        println!("bench group: {group}");
        Self {
            group: group.to_owned(),
            reports: Vec::new(),
        }
    }

    /// Runs one benchmark and prints its median / p95.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        let report = b.report();
        println!(
            "  {name:<40} median {:>12} p95 {:>12} ({} iters)",
            fmt_ns(report.median_ns),
            fmt_ns(report.p95_ns),
            report.iterations
        );
        self.reports.push((name.to_owned(), report));
        self
    }

    /// Records an externally measured median (e.g. from a whole-run
    /// stopwatch that the per-iteration [`Bencher`] machinery does not
    /// fit) so it lands in the JSON report next to the sampled sections.
    pub fn record_ns(&mut self, name: &str, median_ns: f64) -> &mut Self {
        println!("  {name:<40} median {:>12} (recorded)", fmt_ns(median_ns));
        self.reports.push((
            name.to_owned(),
            BenchReport {
                median_ns,
                p95_ns: median_ns,
                iterations: 1,
            },
        ));
        self
    }

    /// All collected reports, in execution order.
    pub fn reports(&self) -> &[(String, BenchReport)] {
        &self.reports
    }

    /// The group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Median nanoseconds of a benchmark by name, if it ran.
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.reports
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.median_ns)
    }

    /// Writes the collected reports as a small JSON document, e.g. for a
    /// CI artifact. `derived` carries extra scalar metrics computed from
    /// the reports (ratios, speedups) under a `"derived"` object.
    pub fn write_json(
        &self,
        path: &std::path::Path,
        derived: &[(&str, f64)],
    ) -> std::io::Result<()> {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"group\": {},\n", json_string(&self.group)));
        s.push_str("  \"benches\": [\n");
        for (i, (name, r)) in self.reports.iter().enumerate() {
            let sep = if i + 1 == self.reports.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"name\": {}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \
                 \"iterations\": {}}}{sep}\n",
                json_string(name),
                r.median_ns,
                r.p95_ns,
                r.iterations
            ));
        }
        s.push_str("  ],\n  \"derived\": {");
        for (i, (name, value)) in derived.iter().enumerate() {
            let sep = if i + 1 == derived.len() { "" } else { ", " };
            s.push_str(&format!("{}: {value:.4}{sep}", json_string(name)));
        }
        s.push_str("}\n}\n");
        std::fs::write(path, s)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_env() {
        // Keep unit tests quick regardless of ambient configuration.
        std::env::set_var("ADRIAS_BENCH_SAMPLES", "3");
        std::env::set_var("ADRIAS_BENCH_WARMUP_MS", "1");
    }

    #[test]
    fn iter_produces_positive_timings() {
        fast_env();
        let mut h = Harness::new("test");
        h.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let (_, r) = &h.reports()[0];
        assert!(r.median_ns > 0.0);
        assert!(r.p95_ns >= r.median_ns);
        assert!(r.iterations > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        fast_env();
        let mut h = Harness::new("test");
        h.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 1024],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            )
        });
        assert_eq!(h.reports().len(), 1);
    }

    #[test]
    fn write_json_round_trips_reports() {
        fast_env();
        let mut h = Harness::new("jsontest");
        h.bench_function("case", |b| b.iter(|| 1u64 + 1));
        let path = std::env::temp_dir().join("adrias_bench_write_json_test.json");
        h.write_json(&path, &[("speedup_x", 2.0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"group\": \"jsontest\""));
        assert!(text.contains("\"name\": \"case\""));
        assert!(text.contains("\"speedup_x\": 2.0000"));
        assert!(h.median_ns("case").is_some());
        assert!(h.median_ns("missing").is_none());
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
