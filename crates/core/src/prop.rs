//! Minimal in-tree property-testing harness.
//!
//! Replaces the external `proptest` dependency with a deterministic,
//! seed-reporting engine built on the workspace PRNG:
//!
//! * every test derives its base seed from its own name (stable across
//!   runs and platforms), overridable with `ADRIAS_PROP_SEED`;
//! * the number of generated cases defaults to 64, overridable with
//!   `ADRIAS_PROP_CASES`;
//! * on failure the input is shrunk by repeated halving toward the
//!   range origin (numbers) / toward shorter vectors, and the panic
//!   message reports the minimal input plus the seed to replay it.
//!
//! ```
//! adrias_core::proptest! {
//!     fn addition_commutes(a in -1e3f32..1e3, b in -1e3f32..1e3) {
//!         adrias_core::prop_assert!((a + b - (b + a)).abs() < 1e-6);
//!     }
//! }
//! addition_commutes();
//! ```

use core::fmt;
use core::ops::{Range, RangeInclusive};

use crate::rng::{Rng, SeedableRng, Xoshiro256pp};

/// A falsified property: the assertion message plus source location.
#[derive(Debug, Clone)]
pub struct PropFail {
    message: String,
    file: &'static str,
    line: u32,
}

impl PropFail {
    /// Builds a failure record (used by the `prop_assert!` macros).
    pub fn new(message: String, file: &'static str, line: u32) -> Self {
        Self {
            message,
            file,
            line,
        }
    }
}

impl fmt::Display for PropFail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.message, self.file, self.line)
    }
}

/// Something that can generate (and shrink) random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value;

    /// Proposes strictly "smaller" candidate values, best first.
    /// Returning an empty vector ends shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let origin: $t = if self.start <= 0 as $t && 0 as $t < self.end {
                    0 as $t
                } else {
                    self.start
                };
                let mut out = Vec::new();
                if *value != origin {
                    out.push(origin);
                    let half = *value - (*value - origin) / 2;
                    if half != *value && half != origin {
                        out.push(half);
                    }
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let origin: $t = if *self.start() <= 0 as $t && 0 as $t <= *self.end() {
                    0 as $t
                } else {
                    *self.start()
                };
                let mut out = Vec::new();
                if *value != origin {
                    out.push(origin);
                    let half = *value - (*value - origin) / 2;
                    if half != *value && half != origin {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let origin: $t = if self.start <= 0.0 && 0.0 < self.end {
                    0.0
                } else {
                    self.start
                };
                let mut out = Vec::new();
                if (*value - origin).abs() > <$t>::EPSILON {
                    out.push(origin);
                    let half = origin + (*value - origin) / 2.0;
                    if half != *value {
                        out.push(half);
                    }
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                let origin: $t = if lo <= 0.0 && 0.0 <= hi { 0.0 } else { lo };
                let mut out = Vec::new();
                if (*value - origin).abs() > <$t>::EPSILON {
                    out.push(origin);
                    let half = origin + (*value - origin) / 2.0;
                    if half != *value {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Length specification for [`collection::vec`]: an exact `usize`, a
/// half-open `lo..hi`, or an inclusive `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct LenRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

/// Conversion into [`LenRange`] (mirrors proptest's `Into<SizeRange>`).
pub trait IntoLenRange {
    /// The equivalent length range.
    fn into_len_range(self) -> LenRange;
}

impl IntoLenRange for usize {
    fn into_len_range(self) -> LenRange {
        LenRange {
            lo: self,
            hi: self + 1,
        }
    }
}

impl IntoLenRange for Range<usize> {
    fn into_len_range(self) -> LenRange {
        assert!(self.start < self.end, "empty length range");
        LenRange {
            lo: self.start,
            hi: self.end,
        }
    }
}

impl IntoLenRange for RangeInclusive<usize> {
    fn into_len_range(self) -> LenRange {
        assert!(self.start() <= self.end(), "empty length range");
        LenRange {
            lo: *self.start(),
            hi: *self.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: LenRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
        let len = rng.gen_range(self.len.lo..self.len.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Halve the length first (toward the minimum), then drop one
        // element, then shrink the first shrinkable element.
        let half_len = self.len.lo.max(value.len() / 2);
        if half_len < value.len() {
            out.push(value[..half_len].to_vec());
        }
        if value.len() > self.len.lo {
            out.push(value[..value.len() - 1].to_vec());
        }
        for (i, v) in value.iter().enumerate() {
            if let Some(c) = self.elem.shrink(v).into_iter().next() {
                let mut cand = value.clone();
                cand[i] = c;
                out.push(cand);
                break;
            }
        }
        out
    }
}

/// Collection strategies, namespaced like proptest's `prop::collection`.
pub mod collection {
    use super::{IntoLenRange, Strategy, VecStrategy};

    /// `Vec` strategy: `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoLenRange) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into_len_range(),
        }
    }
}

/// A strategy that always yields the same value. The fixed points of a
/// structured spec (a pinned field while the rest fuzzes) — never
/// shrinks.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Xoshiro256pp) -> T {
        self.0.clone()
    }
}

/// Choice strategies, namespaced like proptest's `prop::sample`.
pub mod sample {
    use super::{fmt, Strategy, Xoshiro256pp};
    use crate::rng::Rng;

    /// Strategy drawing uniformly from a fixed option set; see
    /// [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Draws uniformly from `options`, shrinking toward *earlier*
    /// entries — order the options simplest-first so a structured spec
    /// (an enum of fault kinds, a palette of app mixes) shrinks toward
    /// its most boring variant.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + fmt::Debug + PartialEq>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone + fmt::Debug + PartialEq> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut Xoshiro256pp) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            // Mirror the numeric halving: jump to the simplest option,
            // then to the midpoint between it and the current one.
            let Some(i) = self.options.iter().position(|o| o == value) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            if i > 0 {
                out.push(self.options[0].clone());
                let half = i / 2;
                if half != 0 && half != i {
                    out.push(self.options[half].clone());
                }
            }
            out
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $i:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
                ($( self.$i.generate(rng), )+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$i.shrink(&value.$i) {
                        let mut cand = value.clone();
                        cand.$i = c;
                        out.push(cand);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Number of generated cases per property (`ADRIAS_PROP_CASES`,
/// default 64).
pub fn case_count() -> u64 {
    std::env::var("ADRIAS_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// FNV-1a, used to derive a stable per-test base seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Base seed for one property (`ADRIAS_PROP_SEED` as decimal or
/// `0x`-hex overrides the name-derived default).
pub fn base_seed(name: &str) -> u64 {
    if let Ok(v) = std::env::var("ADRIAS_PROP_SEED") {
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        };
        if let Some(seed) = parsed {
            return seed;
        }
    }
    fnv1a(name.as_bytes())
}

const MAX_SHRINK_STEPS: usize = 512;

/// A falsified, fully-shrunk case found by [`falsify_from`]: the
/// minimal input, the failure it still triggers, and the coordinates
/// to regenerate the original un-shrunk value from scratch.
#[derive(Debug, Clone)]
pub struct Counterexample<V> {
    /// Minimal failing input after shrinking.
    pub minimal: V,
    /// The failure the minimal input triggers.
    pub fail: PropFail,
    /// Which generated case (0-based) first failed.
    pub case: u64,
    /// The base seed the search ran under.
    pub base_seed: u64,
    /// Accepted shrink steps between the original and `minimal`.
    pub shrink_steps: usize,
}

/// Per-case generator seed: decorrelates cases while keeping each one
/// individually replayable from `(base, case)`.
pub fn case_seed(base: u64, case: u64) -> u64 {
    base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Searches `cases` generated inputs from `base` for one falsifying
/// `check`, and greedily shrinks the first failure. Returns `None` when
/// every case passes. This is [`run`] without the panic — callers that
/// want to *persist* counterexamples (the scenario fuzzer) rather than
/// abort use this directly.
pub fn falsify_from<S, F>(
    base: u64,
    cases: u64,
    strat: &S,
    check: F,
) -> Option<Counterexample<S::Value>>
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), PropFail>,
{
    for case in 0..cases {
        let mut rng = Xoshiro256pp::seed_from_u64(case_seed(base, case));
        let value = strat.generate(&mut rng);
        if let Err(first_fail) = check(value.clone()) {
            let mut best = value;
            let mut best_fail = first_fail;
            let mut steps = 0;
            'outer: while steps < MAX_SHRINK_STEPS {
                for cand in strat.shrink(&best) {
                    if let Err(f) = check(cand.clone()) {
                        best = cand;
                        best_fail = f;
                        steps += 1;
                        continue 'outer;
                    }
                }
                break;
            }
            return Some(Counterexample {
                minimal: best,
                fail: best_fail,
                case,
                base_seed: base,
                shrink_steps: steps,
            });
        }
    }
    None
}

/// Drives one property: generates `case_count()` inputs, checks each,
/// and on failure shrinks the input before panicking with the minimal
/// counterexample and replay seed. Used via the [`crate::proptest!`]
/// macro rather than directly.
pub fn run<S, F>(name: &str, strat: &S, check: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), PropFail>,
{
    let cases = case_count();
    let base = base_seed(name);
    if let Some(cex) = falsify_from(base, cases, strat, check) {
        panic!(
            "property `{name}` falsified on case {case}/{cases} (base seed {base:#x})\n  \
             minimal input after {steps} shrink step(s): {best:?}\n  {best_fail}\n  \
             replay with ADRIAS_PROP_SEED={base:#x} ADRIAS_PROP_CASES={cases}",
            case = cex.case,
            steps = cex.shrink_steps,
            best = cex.minimal,
            best_fail = cex.fail,
        );
    }
}

/// Everything a property-test file needs: the macros plus the `prop`
/// module path (`prop::collection::vec(...)`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests.
///
/// Syntax mirrors the proptest macro this replaces:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_prop(x in 0.0f32..1.0, n in 1usize..10) {
///         prop_assert!(x < n as f32 + 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::prop::run(stringify!($name), &strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fails the enclosing property when `cond` is false (early-returns a
/// [`PropFail`](crate::prop::PropFail) so shrinking can kick in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::PropFail::new(
                ::std::format!($($fmt)+),
                ::core::file!(),
                ::core::line!(),
            ));
        }
    };
}

/// Equality flavour of [`prop_assert!`] with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::proptest! {
        #[test]
        fn floats_stay_in_range(x in -5.0f32..5.0) {
            crate::prop_assert!((-5.0..5.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(xs in collection::vec(0u64..100, 3..17)) {
            crate::prop_assert!((3..17).contains(&xs.len()));
            crate::prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_generate_independently(a in 0usize..10, b in 0usize..10, c in 0usize..10) {
            crate::prop_assert!(a < 10 && b < 10 && c < 10);
        }

        #[test]
        fn mut_bindings_work(mut xs in collection::vec(0i32..5, 1..6)) {
            xs.push(0);
            crate::prop_assert!(!xs.is_empty());
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // The property `x < 50` fails for large x; shrinking should
        // drive the reported counterexample close to the boundary…
        // here we just check the panic fires and mentions a seed.
        let result = std::panic::catch_unwind(|| {
            run("shrink_demo", &(0u64..1000,), |(x,)| {
                if x >= 50 {
                    Err(PropFail::new(format!("{x} too big"), file!(), line!()))
                } else {
                    Ok(())
                }
            });
        });
        let err = result.expect_err("property must be falsified");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("ADRIAS_PROP_SEED"), "{msg}");
        // Shrink-by-halving lands within [50, 100): halving from any
        // failing x cannot overshoot below the boundary, and any value
        // ≥ 100 would have been halved again.
        let minimal: u64 = msg
            .split("shrink step(s): (")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("panic message should contain the minimal tuple");
        assert!((50..100).contains(&minimal), "minimal {minimal}: {msg}");
    }

    #[test]
    fn just_always_yields_its_value_and_never_shrinks() {
        let strat = Just(42u64);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(strat.generate(&mut rng), 42);
        assert!(strat.shrink(&42).is_empty());
    }

    #[test]
    fn select_draws_from_options_and_shrinks_toward_first() {
        let strat = sample::select(vec!["calm", "spiky", "collapse", "flap"]);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(["calm", "spiky", "collapse", "flap"].contains(&v));
        }
        let cands = strat.shrink(&"flap");
        assert_eq!(cands, vec!["calm", "spiky"]);
        assert!(strat.shrink(&"calm").is_empty());
    }

    #[test]
    fn falsify_from_returns_shrunk_counterexample_without_panicking() {
        let cex = falsify_from(0xF00D, 64, &(0u64..1000,), |(x,)| {
            if x >= 50 {
                Err(PropFail::new(format!("{x} too big"), file!(), line!()))
            } else {
                Ok(())
            }
        })
        .expect("property is falsifiable");
        assert!((50..100).contains(&cex.minimal.0), "minimal {cex:?}");
        assert_eq!(cex.base_seed, 0xF00D);

        let none = falsify_from(0xF00D, 64, &(0u64..1000,), |_| Ok(()));
        assert!(none.is_none());
    }

    #[test]
    fn case_seed_is_replayable() {
        let base = base_seed("replay");
        let strat = collection::vec(0.0f64..1.0, 4..9);
        let mut r1 = Xoshiro256pp::seed_from_u64(case_seed(base, 7));
        let mut r2 = Xoshiro256pp::seed_from_u64(case_seed(base, 7));
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        assert_ne!(case_seed(base, 1), case_seed(base, 2));
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = collection::vec(0.0f64..1.0, 4..9);
        let mut r1 = Xoshiro256pp::seed_from_u64(base_seed("det"));
        let mut r2 = Xoshiro256pp::seed_from_u64(base_seed("det"));
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
