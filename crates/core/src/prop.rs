//! Minimal in-tree property-testing harness.
//!
//! Replaces the external `proptest` dependency with a deterministic,
//! seed-reporting engine built on the workspace PRNG:
//!
//! * every test derives its base seed from its own name (stable across
//!   runs and platforms), overridable with `ADRIAS_PROP_SEED`;
//! * the number of generated cases defaults to 64, overridable with
//!   `ADRIAS_PROP_CASES`;
//! * on failure the input is shrunk by repeated halving toward the
//!   range origin (numbers) / toward shorter vectors, and the panic
//!   message reports the minimal input plus the seed to replay it.
//!
//! ```
//! adrias_core::proptest! {
//!     fn addition_commutes(a in -1e3f32..1e3, b in -1e3f32..1e3) {
//!         adrias_core::prop_assert!((a + b - (b + a)).abs() < 1e-6);
//!     }
//! }
//! addition_commutes();
//! ```

use core::fmt;
use core::ops::{Range, RangeInclusive};

use crate::rng::{Rng, SeedableRng, Xoshiro256pp};

/// A falsified property: the assertion message plus source location.
#[derive(Debug, Clone)]
pub struct PropFail {
    message: String,
    file: &'static str,
    line: u32,
}

impl PropFail {
    /// Builds a failure record (used by the `prop_assert!` macros).
    pub fn new(message: String, file: &'static str, line: u32) -> Self {
        Self {
            message,
            file,
            line,
        }
    }
}

impl fmt::Display for PropFail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.message, self.file, self.line)
    }
}

/// Something that can generate (and shrink) random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value;

    /// Proposes strictly "smaller" candidate values, best first.
    /// Returning an empty vector ends shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let origin: $t = if self.start <= 0 as $t && 0 as $t < self.end {
                    0 as $t
                } else {
                    self.start
                };
                let mut out = Vec::new();
                if *value != origin {
                    out.push(origin);
                    let half = *value - (*value - origin) / 2;
                    if half != *value && half != origin {
                        out.push(half);
                    }
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let origin: $t = if *self.start() <= 0 as $t && 0 as $t <= *self.end() {
                    0 as $t
                } else {
                    *self.start()
                };
                let mut out = Vec::new();
                if *value != origin {
                    out.push(origin);
                    let half = *value - (*value - origin) / 2;
                    if half != *value && half != origin {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let origin: $t = if self.start <= 0.0 && 0.0 < self.end {
                    0.0
                } else {
                    self.start
                };
                let mut out = Vec::new();
                if (*value - origin).abs() > <$t>::EPSILON {
                    out.push(origin);
                    let half = origin + (*value - origin) / 2.0;
                    if half != *value {
                        out.push(half);
                    }
                }
                out
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                let origin: $t = if lo <= 0.0 && 0.0 <= hi { 0.0 } else { lo };
                let mut out = Vec::new();
                if (*value - origin).abs() > <$t>::EPSILON {
                    out.push(origin);
                    let half = origin + (*value - origin) / 2.0;
                    if half != *value {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Length specification for [`collection::vec`]: an exact `usize`, a
/// half-open `lo..hi`, or an inclusive `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct LenRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

/// Conversion into [`LenRange`] (mirrors proptest's `Into<SizeRange>`).
pub trait IntoLenRange {
    /// The equivalent length range.
    fn into_len_range(self) -> LenRange;
}

impl IntoLenRange for usize {
    fn into_len_range(self) -> LenRange {
        LenRange {
            lo: self,
            hi: self + 1,
        }
    }
}

impl IntoLenRange for Range<usize> {
    fn into_len_range(self) -> LenRange {
        assert!(self.start < self.end, "empty length range");
        LenRange {
            lo: self.start,
            hi: self.end,
        }
    }
}

impl IntoLenRange for RangeInclusive<usize> {
    fn into_len_range(self) -> LenRange {
        assert!(self.start() <= self.end(), "empty length range");
        LenRange {
            lo: *self.start(),
            hi: *self.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: LenRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
        let len = rng.gen_range(self.len.lo..self.len.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Halve the length first (toward the minimum), then drop one
        // element, then shrink the first shrinkable element.
        let half_len = self.len.lo.max(value.len() / 2);
        if half_len < value.len() {
            out.push(value[..half_len].to_vec());
        }
        if value.len() > self.len.lo {
            out.push(value[..value.len() - 1].to_vec());
        }
        for (i, v) in value.iter().enumerate() {
            if let Some(c) = self.elem.shrink(v).into_iter().next() {
                let mut cand = value.clone();
                cand[i] = c;
                out.push(cand);
                break;
            }
        }
        out
    }
}

/// Collection strategies, namespaced like proptest's `prop::collection`.
pub mod collection {
    use super::{IntoLenRange, Strategy, VecStrategy};

    /// `Vec` strategy: `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoLenRange) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into_len_range(),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $i:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
                ($( self.$i.generate(rng), )+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$i.shrink(&value.$i) {
                        let mut cand = value.clone();
                        cand.$i = c;
                        out.push(cand);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(S0.0);
impl_tuple_strategy!(S0.0, S1.1);
impl_tuple_strategy!(S0.0, S1.1, S2.2);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

/// Number of generated cases per property (`ADRIAS_PROP_CASES`,
/// default 64).
pub fn case_count() -> u64 {
    std::env::var("ADRIAS_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// FNV-1a, used to derive a stable per-test base seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Base seed for one property (`ADRIAS_PROP_SEED` as decimal or
/// `0x`-hex overrides the name-derived default).
pub fn base_seed(name: &str) -> u64 {
    if let Ok(v) = std::env::var("ADRIAS_PROP_SEED") {
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            v.parse().ok()
        };
        if let Some(seed) = parsed {
            return seed;
        }
    }
    fnv1a(name.as_bytes())
}

const MAX_SHRINK_STEPS: usize = 512;

/// Drives one property: generates `case_count()` inputs, checks each,
/// and on failure shrinks the input before panicking with the minimal
/// counterexample and replay seed. Used via the [`crate::proptest!`]
/// macro rather than directly.
pub fn run<S, F>(name: &str, strat: &S, check: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), PropFail>,
{
    let cases = case_count();
    let base = base_seed(name);
    for case in 0..cases {
        // Per-case stream: decorrelate cases while staying replayable.
        let mut rng = Xoshiro256pp::seed_from_u64(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let value = strat.generate(&mut rng);
        if let Err(first_fail) = check(value.clone()) {
            let mut best = value;
            let mut best_fail = first_fail;
            let mut steps = 0;
            'outer: while steps < MAX_SHRINK_STEPS {
                for cand in strat.shrink(&best) {
                    if let Err(f) = check(cand.clone()) {
                        best = cand;
                        best_fail = f;
                        steps += 1;
                        continue 'outer;
                    }
                }
                break;
            }
            panic!(
                "property `{name}` falsified on case {case}/{cases} (base seed {base:#x})\n  \
                 minimal input after {steps} shrink step(s): {best:?}\n  {best_fail}\n  \
                 replay with ADRIAS_PROP_SEED={base:#x} ADRIAS_PROP_CASES={cases}",
            );
        }
    }
}

/// Everything a property-test file needs: the macros plus the `prop`
/// module path (`prop::collection::vec(...)`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests.
///
/// Syntax mirrors the proptest macro this replaces:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_prop(x in 0.0f32..1.0, n in 1usize..10) {
///         prop_assert!(x < n as f32 + 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strat,)+);
            $crate::prop::run(stringify!($name), &strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fails the enclosing property when `cond` is false (early-returns a
/// [`PropFail`](crate::prop::PropFail) so shrinking can kick in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::prop::PropFail::new(
                ::std::format!($($fmt)+),
                ::core::file!(),
                ::core::line!(),
            ));
        }
    };
}

/// Equality flavour of [`prop_assert!`] with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::proptest! {
        #[test]
        fn floats_stay_in_range(x in -5.0f32..5.0) {
            crate::prop_assert!((-5.0..5.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(xs in collection::vec(0u64..100, 3..17)) {
            crate::prop_assert!((3..17).contains(&xs.len()));
            crate::prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_generate_independently(a in 0usize..10, b in 0usize..10, c in 0usize..10) {
            crate::prop_assert!(a < 10 && b < 10 && c < 10);
        }

        #[test]
        fn mut_bindings_work(mut xs in collection::vec(0i32..5, 1..6)) {
            xs.push(0);
            crate::prop_assert!(!xs.is_empty());
        }
    }

    #[test]
    fn shrinking_finds_small_counterexample() {
        // The property `x < 50` fails for large x; shrinking should
        // drive the reported counterexample close to the boundary…
        // here we just check the panic fires and mentions a seed.
        let result = std::panic::catch_unwind(|| {
            run("shrink_demo", &(0u64..1000,), |(x,)| {
                if x >= 50 {
                    Err(PropFail::new(format!("{x} too big"), file!(), line!()))
                } else {
                    Ok(())
                }
            });
        });
        let err = result.expect_err("property must be falsified");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("ADRIAS_PROP_SEED"), "{msg}");
        // Shrink-by-halving lands within [50, 100): halving from any
        // failing x cannot overshoot below the boundary, and any value
        // ≥ 100 would have been halved again.
        let minimal: u64 = msg
            .split("shrink step(s): (")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("panic message should contain the minimal tuple");
        assert!((50..100).contains(&minimal), "minimal {minimal}: {msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = collection::vec(0.0f64..1.0, 4..9);
        let mut r1 = Xoshiro256pp::seed_from_u64(base_seed("det"));
        let mut r2 = Xoshiro256pp::seed_from_u64(base_seed("det"));
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
