//! # adrias-core
//!
//! Zero-dependency substrate for the Adrias reproduction. Every other
//! crate in the workspace builds on this one instead of crates.io
//! dependencies, so the whole project compiles and tests fully
//! offline (`cargo build --offline`) and every random stream is
//! bit-for-bit reproducible from a `u64` seed:
//!
//! * [`rng`] — deterministic PRNG (xoshiro256++ seeded via SplitMix64)
//!   with the `Rng` / `SeedableRng` / `SliceRandom` trait surface the
//!   workspace uses (replaces `rand`);
//! * [`thread`] — scoped threads re-exported from std plus the
//!   [`thread::map_chunks`] fork-join helper (replaces `crossbeam`);
//! * [`prop`] — seeded property-testing engine behind the
//!   [`proptest!`] macro (replaces `proptest`);
//! * [`bench`] — wall-clock micro-benchmark harness with median/p95
//!   reporting (replaces `criterion`);
//! * [`alloc`] — a counting [`std::alloc::GlobalAlloc`] wrapper so
//!   tests can assert a hot path performs zero heap allocations.

#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod prop;
pub mod rng;
pub mod thread;
