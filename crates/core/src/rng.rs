//! Deterministic pseudo-random number generation.
//!
//! The whole workspace draws randomness from one in-tree generator so
//! simulation runs are bit-for-bit reproducible from a single `u64`
//! seed, on every platform, with no external crates. The generator is
//! xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 so that
//! consecutive integer seeds yield decorrelated streams.
//!
//! The trait surface deliberately mirrors the call-site vocabulary the
//! repository already uses (`gen`, `gen_range`, `gen_bool`, `sample`,
//! `shuffle`), so swapping generators never requires touching callers.
//!
//! ```
//! use adrias_core::rng::{Rng, SeedableRng, Xoshiro256pp};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! ```

/// SplitMix64: a tiny, very fast generator used only to expand a
/// single `u64` seed into the 256-bit xoshiro state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace generator: xoshiro256++.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush; ~1 ns per
/// draw. All simulator, NN-init, workload and scenario randomness goes
/// through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// Construction of a generator from a seed, split out as a trait so
/// generic code can stay generator-agnostic.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed via SplitMix64
    /// state expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is a fixed point; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// The raw 64-bit source every higher-level method builds on.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from their "standard" domain:
/// full range for integers, `[0, 1)` for floats, fair coin for bools.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform `u64` below `n` without modulo bias (Lemire's method).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges a value can be drawn from: `lo..hi` and `lo..=hi` over the
/// numeric types the workspace uses.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            /// Uniform in `[lo, hi)`.
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard the open upper bound against rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            /// Uniform in `[lo, hi]`.
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// A distribution values can be sampled from via [`Rng::sample`].
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Gaussian distribution sampled by the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be finite and non-negative"
        );
        Self { mean, std_dev }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// One standard-normal draw (Box–Muller, cosine branch).
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 1 - u keeps the argument of ln strictly positive.
    let u1: f64 = 1.0 - f64::sample_standard(rng);
    let u2: f64 = f64::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// The user-facing generator interface; blanket-implemented for every
/// [`RngCore`] so `&mut R` call-through works everywhere.
pub trait Rng: RngCore {
    /// Draws a standard value: full-range integer, `[0, 1)` float, or
    /// fair-coin bool.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `lo..hi` or `lo..=hi`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws from an explicit distribution.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place random permutation of slices (Fisher–Yates).
pub trait SliceRandom {
    /// Uniformly shuffles the slice in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(seed)
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-answer vector: SplitMix64 seeded with 0 emits
        // 0xE220A8397B1DCDAF first (same expansion as Java's
        // SplittableRandom).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = rng(1);
        let mut b = rng(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_f64_mean_and_variance() {
        let mut r = rng(7);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // E = 1/2, Var = 1/12 ≈ 0.0833.
        assert!((mean - 0.5).abs() < 5e-3, "uniform mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 5e-3, "uniform variance {var}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn uniform_f32_in_unit_interval() {
        let mut r = rng(8);
        for _ in 0..100_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut r = rng(9);
        let dist = Normal::new(3.0, 2.0);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.sample(&dist)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "normal mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "normal variance {var}");
    }

    #[test]
    fn gen_range_exclusive_excludes_upper_bound() {
        let mut r = rng(10);
        let mut hit_lo = false;
        for _ in 0..20_000 {
            let k = r.gen_range(0..4usize);
            assert!(k < 4);
            hit_lo |= k == 0;
        }
        assert!(hit_lo, "lower bound never drawn");
    }

    #[test]
    fn gen_range_inclusive_hits_both_bounds() {
        let mut r = rng(11);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..20_000 {
            let k = r.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&k));
            lo |= k == -2;
            hi |= k == 2;
        }
        assert!(lo && hi, "inclusive endpoints must both be reachable");
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut r = rng(12);
        for _ in 0..50_000 {
            let x = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x), "{x}");
            let y = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform_over_buckets() {
        let mut r = rng(13);
        let n = 120_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            counts[r.gen_range(0..6usize)] += 1;
        }
        let expect = n / 6;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn gen_bool_frequency_matches_p() {
        let mut r = rng(14);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "gen_bool(0.3) freq {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng(15);
        let original: Vec<u32> = (0..257).collect();
        let mut shuffled = original.clone();
        shuffled.shuffle(&mut r);
        assert_ne!(
            shuffled, original,
            "257 elements should not shuffle to identity"
        );
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must preserve the multiset");
    }

    #[test]
    fn shuffle_moves_every_position_eventually() {
        // Over many shuffles each position should see many distinct values.
        let mut r = rng(16);
        let mut seen_at_zero = std::collections::HashSet::new();
        for _ in 0..200 {
            let mut v: Vec<u8> = (0..8).collect();
            v.shuffle(&mut r);
            seen_at_zero.insert(v[0]);
        }
        assert_eq!(seen_at_zero.len(), 8);
    }
}
