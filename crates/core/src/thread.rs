//! Scoped-thread shim over `std::thread::scope`.
//!
//! The workspace used to pull `crossbeam` for scoped threads; since
//! Rust 1.63 the standard library provides them natively. This module
//! re-exports the std primitives under a stable local path and adds
//! [`map_chunks`], the fork-join shape every parallel runner in the
//! repository actually uses: split a slice into `threads` contiguous
//! chunks, map each chunk on its own worker, and concatenate results
//! in chunk order so parallel and sequential runs agree bit-for-bit.

pub use std::thread::{scope, Scope, ScopedJoinHandle};

/// Maps `f` over contiguous chunks of `items` on up to `threads`
/// scoped workers and flattens the per-chunk outputs **in chunk
/// order** (deterministic regardless of worker interleaving).
///
/// `f` receives one chunk and returns the mapped vector for it; it
/// runs once per chunk, so per-worker state (policies, RNGs) can be
/// created inside the closure.
///
/// # Panics
///
/// Panics if `threads` is zero or any worker panics.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if items.is_empty() {
        return Vec::new();
    }
    let chunk_len = items.len().div_ceil(threads);
    if threads == 1 || chunk_len >= items.len() {
        // Single chunk: run inline, no spawn overhead.
        return f(items);
    }
    scope(|s| {
        let handles: Vec<ScopedJoinHandle<'_, Vec<R>>> = items
            .chunks(chunk_len)
            .map(|chunk| s.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scoped worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u32> = (0..103).collect();
        let doubled = map_chunks(&items, 4, |chunk| chunk.iter().map(|x| x * 2).collect());
        let expect: Vec<u32> = items.iter().map(|x| x * 2).collect();
        assert_eq!(doubled, expect);
    }

    #[test]
    fn map_chunks_parallel_matches_sequential() {
        let items: Vec<u64> = (0..57).collect();
        let seq = map_chunks(&items, 1, |c| c.iter().map(|x| x * x).collect());
        let par = map_chunks(&items, 8, |c| c.iter().map(|x| x * x).collect());
        assert_eq!(seq, par);
    }

    #[test]
    fn map_chunks_handles_more_threads_than_items() {
        let items = [1, 2, 3];
        let out = map_chunks(&items, 16, |c| c.to_vec());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn map_chunks_empty_input() {
        let items: [u8; 0] = [];
        let out: Vec<u8> = map_chunks(&items, 4, |c| c.to_vec());
        assert!(out.is_empty());
    }

    #[test]
    fn scope_reexport_joins_workers() {
        let total: u64 = scope(|s| {
            let handles: Vec<_> = (0..4u64).map(|i| s.spawn(move || i * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 60);
    }
}
