//! Simulator determinism and cross-module consistency.

use adrias_sim::{Metric, Testbed, TestbedConfig};
use adrias_workloads::{ibench, keyvalue, spark, IbenchKind, MemoryMode};

#[test]
fn same_seed_replays_identically() {
    let run = || {
        let mut tb = Testbed::new(TestbedConfig::paper(), 1234);
        tb.deploy(spark::by_name("sort").unwrap(), MemoryMode::Remote);
        tb.deploy(spark::by_name("gmm").unwrap(), MemoryMode::Local);
        tb.deploy_for(keyvalue::redis(), MemoryMode::Remote, 120.0);
        let mut samples = Vec::new();
        let mut finished = Vec::new();
        for _ in 0..200 {
            let r = tb.step();
            samples.push(r.sample);
            finished.extend(r.finished.into_iter().map(|c| (c.name, c.finished_s)));
        }
        (samples, finished, tb.link_bytes_total())
    };
    let (s1, f1, b1) = run();
    let (s2, f2, b2) = run();
    assert_eq!(s1, s2, "metric streams must replay identically");
    assert_eq!(f1, f2, "completions must replay identically");
    assert_eq!(b1, b2);
}

#[test]
fn different_seeds_only_perturb_noise() {
    // With noise enabled, different seeds change samples but not the
    // deterministic progress/completion logic.
    let run = |seed| {
        let mut tb = Testbed::new(TestbedConfig::paper(), seed);
        let id = tb.deploy(spark::by_name("wordcount").unwrap(), MemoryMode::Local);
        loop {
            let r = tb.step();
            if let Some(c) = r.finished.into_iter().find(|c| c.id == id) {
                return c.finished_s;
            }
        }
    };
    assert_eq!(
        run(1),
        run(2),
        "completion time must not depend on noise seed"
    );
}

#[test]
fn counters_compose_additively_across_apps() {
    let cfg = TestbedConfig::noiseless();
    let sample_of = |apps: &[(&str, MemoryMode)]| {
        let mut tb = Testbed::new(cfg, 0);
        for (name, mode) in apps {
            tb.deploy(spark::by_name(name).unwrap(), *mode);
        }
        tb.step().sample
    };
    let a = sample_of(&[("gmm", MemoryMode::Local)]);
    let b = sample_of(&[("pca", MemoryMode::Local)]);
    let both = sample_of(&[("gmm", MemoryMode::Local), ("pca", MemoryMode::Local)]);
    // LLC loads are per-app demand driven and should add up when
    // contention is negligible (two small apps).
    let sum = a.get(Metric::LlcLoads) + b.get(Metric::LlcLoads);
    let rel = (both.get(Metric::LlcLoads) - sum).abs() / sum;
    assert!(rel < 0.05, "LLC loads should compose: {rel}");
}

#[test]
fn mixed_mode_colocations_split_traffic() {
    let cfg = TestbedConfig::noiseless();
    let mut tb = Testbed::new(cfg, 0);
    tb.deploy_for(
        ibench::profile(IbenchKind::MemBw),
        MemoryMode::Local,
        1000.0,
    );
    tb.deploy_for(
        ibench::profile(IbenchKind::MemBw),
        MemoryMode::Remote,
        1000.0,
    );
    let r = tb.step();
    // Remote stressor drives the link; local stressor only local DRAM.
    assert!(r.sample.get(Metric::LinkFlitsRx) > 0.0);
    assert!(r.pressure.link_utilization > 0.0);
    // Local traffic includes both the local stressor and the delivered
    // remote traffic (R3).
    assert!(
        r.pressure.local_traffic_gbps > r.pressure.link_delivered_gbps,
        "local traffic must include the local stressor too"
    );
}

#[test]
fn long_runs_do_not_accumulate_state_errors() {
    let mut tb = Testbed::new(TestbedConfig::noiseless(), 3);
    // Deploy/complete many waves of applications.
    for wave in 0..10 {
        let id = tb.deploy(spark::by_name("wordcount").unwrap(), MemoryMode::Local);
        loop {
            let r = tb.step();
            if r.finished.iter().any(|c| c.id == id) {
                break;
            }
        }
        assert_eq!(tb.resident_count(), 0, "wave {wave} left residue");
    }
    // After all waves the testbed is idle again.
    let p = tb.pressure();
    assert_eq!(p.llc, 0.0);
    assert_eq!(p.link_utilization, 0.0);
}
