//! Discrete-time simulator of a ThymesisFlow-like disaggregated-memory
//! testbed.
//!
//! The paper evaluates Adrias on real hardware: two IBM AC922 POWER9
//! servers whose FPGAs are cabled back-to-back, with ThymesisFlow
//! exposing the lender's DRAM as a CPU-less NUMA node on the borrower
//! (§III). That hardware is not available here, so this crate implements
//! the closest synthetic equivalent: a 1 Hz discrete-time model of the
//! borrower node and the communication channel, calibrated to the
//! characterization results of §IV:
//!
//! * **R1 — bounded throughput:** the channel delivers at most
//!   ≈2.5 Gbit/s regardless of offered load ([`Interconnect`]);
//! * **R2 — two-regime latency:** channel latency sits at ≈350 cycles
//!   until the knee and climbs to a ≈900-cycle plateau under saturation
//!   (back-pressure);
//! * **R3 — local side effects:** traffic from remote-mode applications
//!   still traverses the borrower's LLC and memory controllers, so it
//!   shows up in the local counters;
//! * **R5/R7 — contention chasm and stacking:** the same interference
//!   hurts remote-mode applications much more once the channel saturates,
//!   and for *stacking* applications even CPU/L2 contention widens the
//!   local-vs-remote gap.
//!
//! The simulator consumes [`WorkloadProfile`]s from `adrias-workloads`
//! and produces per-second [`MetricSample`]s (the Watcher's input) plus
//! per-application progress and completions.
//!
//! # Examples
//!
//! ```
//! use adrias_sim::{Testbed, TestbedConfig};
//! use adrias_workloads::{spark, MemoryMode};
//!
//! let mut testbed = Testbed::new(TestbedConfig::paper(), 42);
//! let app = spark::by_name("gmm").unwrap();
//! let id = testbed.deploy(app, MemoryMode::Local);
//! let report = testbed.step();
//! assert_eq!(report.time_s, 1.0);
//! assert!(testbed.is_resident(id));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod contention;
pub mod counters;
pub mod interconnect;
pub mod obs;
pub mod pressure;
pub mod testbed;

pub use config::{LinkConfig, NodeConfig, TestbedConfig};
pub use contention::slowdown;
pub use interconnect::{Interconnect, LinkState};
pub use pressure::ResourcePressure;
pub use testbed::{CompletedApp, Deployment, DeploymentId, StepReport, Testbed};

// Re-exported so downstream crates do not need a direct dependency for
// the common vocabulary types.
pub use adrias_telemetry::{Metric, MetricSample};
pub use adrias_workloads::{MemoryMode, WorkloadProfile};
