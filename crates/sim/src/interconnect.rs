//! The ThymesisFlow communication channel model.

use crate::config::LinkConfig;

/// Instantaneous state of the channel for one simulation step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// Load offered by remote-mode applications, Gbit/s.
    pub offered_gbps: f32,
    /// Load actually delivered after the throughput cap, Gbit/s.
    pub delivered_gbps: f32,
    /// Offered utilization: `offered / effective_cap`.
    pub utilization: f32,
    /// Average channel latency, cycles.
    pub latency_cycles: f32,
}

impl LinkState {
    /// An idle channel.
    pub fn idle(cfg: &LinkConfig) -> Self {
        Self {
            offered_gbps: 0.0,
            delivered_gbps: 0.0,
            utilization: 0.0,
            latency_cycles: cfg.base_latency_cycles,
        }
    }

    /// Fraction of offered traffic that is delivered (1 when idle).
    ///
    /// The FPGA back-pressure mechanism delays transactions rather than
    /// dropping them; this factor is how much remote-mode progress is
    /// scaled down under saturation.
    pub fn backpressure(&self) -> f32 {
        if self.offered_gbps <= f32::EPSILON {
            1.0
        } else {
            self.delivered_gbps / self.offered_gbps
        }
    }
}

/// The channel model: bounded throughput (R1) and two-regime latency
/// (R2).
///
/// # Examples
///
/// ```
/// use adrias_sim::{Interconnect, LinkConfig};
///
/// let link = Interconnect::new(LinkConfig::paper());
/// let light = link.evaluate(0.6);
/// let heavy = link.evaluate(10.0);
/// assert!(light.delivered_gbps < 1.0);
/// assert!(heavy.delivered_gbps <= 2.5);
/// assert!(heavy.latency_cycles > 2.0 * light.latency_cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    cfg: LinkConfig,
}

impl Interconnect {
    /// Creates a channel with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the effective cap is not strictly positive or the
    /// latency bounds are inverted.
    pub fn new(cfg: LinkConfig) -> Self {
        assert!(cfg.effective_cap_gbps > 0.0, "link cap must be positive");
        assert!(
            cfg.saturated_latency_cycles >= cfg.base_latency_cycles,
            "saturated latency below base latency"
        );
        Self { cfg }
    }

    /// The channel parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Evaluates the channel under `offered_gbps` of offered load.
    ///
    /// Delivered throughput follows a smooth-min against the effective
    /// cap (steady rise, then plateau — Fig. 2 top), and latency follows
    /// a logistic transition from the base to the saturated regime
    /// centred at the knee utilization.
    pub fn evaluate(&self, offered_gbps: f32) -> LinkState {
        assert!(
            offered_gbps >= 0.0 && offered_gbps.is_finite(),
            "offered load must be finite and non-negative, got {offered_gbps}"
        );
        let cap = self.cfg.effective_cap_gbps;
        let u = offered_gbps / cap;
        // Smooth minimum via a p-norm: ≈linear below the cap, ≈cap above.
        let delivered = if u <= f32::EPSILON {
            0.0
        } else {
            cap * u / (1.0 + u.powi(8)).powf(1.0 / 8.0)
        };
        let x = self.cfg.latency_knee_steepness * (u - self.cfg.latency_knee_utilization);
        let sigmoid = 1.0 / (1.0 + (-x).exp());
        let latency = self.cfg.base_latency_cycles
            + (self.cfg.saturated_latency_cycles - self.cfg.base_latency_cycles) * sigmoid;
        LinkState {
            offered_gbps,
            delivered_gbps: delivered,
            utilization: u,
            latency_cycles: latency,
        }
    }

    /// Converts a delivered throughput into flits per second.
    pub fn flits_per_second(&self, delivered_gbps: f32) -> f32 {
        let bytes_per_s = delivered_gbps * 1e9 / 8.0;
        bytes_per_s / self.cfg.flit_bytes as f32
    }
}

impl Default for Interconnect {
    fn default() -> Self {
        Self::new(LinkConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Interconnect {
        Interconnect::new(LinkConfig::paper())
    }

    #[test]
    fn idle_channel_is_at_base_latency() {
        let s = link().evaluate(0.0);
        assert_eq!(s.delivered_gbps, 0.0);
        assert!((s.latency_cycles - 350.0).abs() < 5.0);
        assert_eq!(s.backpressure(), 1.0);
    }

    #[test]
    fn throughput_never_exceeds_cap() {
        let l = link();
        for offered in [0.1, 0.5, 1.0, 2.0, 2.5, 3.0, 5.0, 10.0, 50.0] {
            let s = l.evaluate(offered);
            assert!(
                s.delivered_gbps <= 2.5 + 1e-3,
                "delivered {} at offered {offered}",
                s.delivered_gbps
            );
            assert!(s.delivered_gbps <= offered + 1e-3);
        }
    }

    #[test]
    fn throughput_is_monotone_in_offered_load() {
        let l = link();
        let mut prev = 0.0;
        for i in 0..100 {
            let s = l.evaluate(i as f32 * 0.2);
            assert!(s.delivered_gbps >= prev - 1e-4);
            prev = s.delivered_gbps;
        }
    }

    #[test]
    fn latency_regimes_match_r2() {
        let l = link();
        // 1–4 memBw micro-benchmarks: ~0.6 Gbps each offered.
        for n in [1, 2, 4] {
            let s = l.evaluate(0.6 * n as f32);
            assert!(
                s.latency_cycles < 420.0,
                "{n} stressors: latency {} should be near base",
                s.latency_cycles
            );
        }
        // 8+ micro-benchmarks: saturated plateau near 900 cycles.
        for n in [8, 16, 32] {
            let s = l.evaluate(0.6 * n as f32);
            assert!(
                s.latency_cycles > 800.0,
                "{n} stressors: latency {} should be saturated",
                s.latency_cycles
            );
        }
    }

    #[test]
    fn latency_is_monotone_and_bounded() {
        let l = link();
        let mut prev = 0.0;
        for i in 0..200 {
            let s = l.evaluate(i as f32 * 0.1);
            assert!(s.latency_cycles >= prev - 1e-3);
            assert!(s.latency_cycles <= 900.0 + 1e-3);
            prev = s.latency_cycles;
        }
    }

    #[test]
    fn backpressure_shrinks_under_saturation() {
        let l = link();
        let light = l.evaluate(0.5);
        let heavy = l.evaluate(10.0);
        assert!((light.backpressure() - 1.0).abs() < 0.05);
        assert!(heavy.backpressure() < 0.3);
    }

    #[test]
    fn flit_accounting_uses_32_byte_flits() {
        let l = link();
        let flits = l.flits_per_second(2.5);
        // 2.5 Gbit/s = 312.5 MB/s = ~9.77e6 flits/s.
        assert!((flits - 9.765e6).abs() / 9.765e6 < 0.01);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_offered_load_rejected() {
        let _ = link().evaluate(-1.0);
    }
}
