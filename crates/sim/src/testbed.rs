//! The stateful testbed: deployments, progress and completions.

use std::collections::BTreeMap;
use std::fmt;

use adrias_core::rng::SeedableRng;
use adrias_core::rng::Xoshiro256pp;

use adrias_telemetry::MetricSample;
use adrias_workloads::{LatencyEnv, MemoryMode, WorkloadClass, WorkloadProfile};

use crate::config::TestbedConfig;
use crate::contention::slowdown;
use crate::counters;
use crate::pressure::ResourcePressure;

/// Opaque handle identifying one deployment on the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeploymentId(u64);

impl DeploymentId {
    /// The raw sequence number behind the handle (stable within a run;
    /// used as the deployment's track id in trace exports).
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DeploymentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dep-{}", self.0)
    }
}

/// Accumulated environment statistics over a deployment's residency.
#[derive(Debug, Clone, Copy, Default)]
struct EnvAccumulator {
    steps: u32,
    cpu: f64,
    l2: f64,
    llc: f64,
    mem_bw: f64,
    link_util: f64,
    link_lat: f64,
    slowdown: f64,
}

impl EnvAccumulator {
    fn push(&mut self, p: &ResourcePressure, sd: f32) {
        self.steps += 1;
        self.cpu += f64::from(p.cpu);
        self.l2 += f64::from(p.l2);
        self.llc += f64::from(p.llc);
        self.mem_bw += f64::from(p.mem_bw);
        self.link_util += f64::from(p.link_utilization);
        self.link_lat += f64::from(p.link_latency_cycles);
        self.slowdown += f64::from(sd);
    }

    fn average_env(&self, mode: MemoryMode) -> LatencyEnv {
        let n = f64::from(self.steps.max(1));
        LatencyEnv {
            mode,
            cpu_pressure: (self.cpu / n) as f32,
            l2_pressure: (self.l2 / n) as f32,
            llc_pressure: (self.llc / n) as f32,
            mem_bw_pressure: (self.mem_bw / n) as f32,
            link_utilization: (self.link_util / n) as f32,
            link_latency_cycles: if self.steps == 0 {
                350.0
            } else {
                (self.link_lat / n) as f32
            },
        }
    }

    fn mean_slowdown(&self) -> f32 {
        if self.steps == 0 {
            1.0
        } else {
            (self.slowdown / f64::from(self.steps)) as f32
        }
    }
}

/// One application resident on the testbed.
#[derive(Debug, Clone)]
pub struct Deployment {
    id: DeploymentId,
    profile: WorkloadProfile,
    mode: MemoryMode,
    arrived_s: f64,
    duration_s: f32,
    work_done_s: f64,
    env: EnvAccumulator,
}

impl Deployment {
    /// The deployment handle.
    pub fn id(&self) -> DeploymentId {
        self.id
    }

    /// The deployed workload.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The memory mode the orchestrator chose.
    pub fn mode(&self) -> MemoryMode {
        self.mode
    }

    /// Arrival time, seconds.
    pub fn arrived_s(&self) -> f64 {
        self.arrived_s
    }

    /// Nominal work to complete, seconds of isolated execution.
    pub fn duration_s(&self) -> f32 {
        self.duration_s
    }

    /// Completed work, seconds of isolated-equivalent execution.
    pub fn work_done_s(&self) -> f64 {
        self.work_done_s
    }

    /// Environment averaged over residency so far.
    pub fn average_env(&self) -> LatencyEnv {
        self.env.average_env(self.mode)
    }

    /// Whether progress is scaled by contention (BE) or wall-clock
    /// (LC services and micro-benchmarks run for a fixed duration).
    fn contended_progress(&self) -> bool {
        self.profile.class() == WorkloadClass::BestEffort
    }
}

/// Record of one finished application.
#[derive(Debug, Clone)]
pub struct CompletedApp {
    /// Deployment handle.
    pub id: DeploymentId,
    /// Workload name.
    pub name: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Memory mode it ran in.
    pub mode: MemoryMode,
    /// Arrival time, seconds.
    pub arrived_s: f64,
    /// Completion time, seconds.
    pub finished_s: f64,
    /// Wall-clock runtime, seconds.
    pub runtime_s: f64,
    /// Mean slowdown factor experienced while resident.
    pub mean_slowdown: f32,
    /// Environment averaged over the whole residency (for LC tail
    /// latency evaluation).
    pub average_env: LatencyEnv,
}

/// Output of one 1-second simulation step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Simulation time after the step, seconds.
    pub time_s: f64,
    /// The Watcher sample generated for this step.
    pub sample: MetricSample,
    /// Pressure snapshot used during the step.
    pub pressure: ResourcePressure,
    /// Applications that finished during the step.
    pub finished: Vec<CompletedApp>,
}

/// The disaggregated-memory testbed simulator.
///
/// Advances in fixed 1-second steps; see the crate docs for the model.
///
/// # Examples
///
/// ```
/// use adrias_sim::{Testbed, TestbedConfig};
/// use adrias_workloads::{spark, MemoryMode};
///
/// let mut tb = Testbed::new(TestbedConfig::noiseless(), 1);
/// let gmm = spark::by_name("gmm").unwrap();
/// let id = tb.deploy(gmm.clone(), MemoryMode::Local);
/// let mut finished = None;
/// for _ in 0..200 {
///     let report = tb.step();
///     if let Some(done) = report.finished.into_iter().find(|c| c.id == id) {
///         finished = Some(done);
///         break;
///     }
/// }
/// let done = finished.expect("gmm finishes in isolation");
/// assert!((done.runtime_s - gmm.base_runtime_s() as f64).abs() < 2.0);
/// ```
#[derive(Debug)]
pub struct Testbed {
    cfg: TestbedConfig,
    time_s: f64,
    next_id: u64,
    resident: BTreeMap<DeploymentId, Deployment>,
    rng: Xoshiro256pp,
    link_bytes_total: f64,
}

impl Testbed {
    /// Simulation step length, seconds.
    pub const STEP_S: f64 = 1.0;

    /// Creates a testbed with the given configuration and RNG seed.
    pub fn new(cfg: TestbedConfig, seed: u64) -> Self {
        Self {
            cfg,
            time_s: 0.0,
            next_id: 0,
            resident: BTreeMap::new(),
            rng: Xoshiro256pp::seed_from_u64(seed),
            link_bytes_total: 0.0,
        }
    }

    /// The testbed configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    /// Replaces the ThymesisFlow channel parameters in place.
    ///
    /// This is the fault-injection hook: a degradation schedule can
    /// spike `base_latency_cycles`, collapse `effective_cap_gbps`, or
    /// flap between healthy and degraded parameter sets mid-run. The
    /// change takes effect from the next [`Testbed::step`]; resident
    /// deployments, accumulated environment averages, and the noise RNG
    /// stream are untouched, so a schedule that restores the original
    /// `LinkConfig` converges back to the healthy trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `link` is degenerate (non-positive capacity, or a
    /// saturated latency below the base latency) — the same invariants
    /// the interconnect model asserts.
    pub fn set_link(&mut self, link: crate::config::LinkConfig) {
        assert!(
            link.effective_cap_gbps > 0.0,
            "link capacity must be positive"
        );
        assert!(
            link.saturated_latency_cycles >= link.base_latency_cycles,
            "saturated latency below base latency"
        );
        self.cfg.link = link;
    }

    /// Current simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Cumulative bytes delivered over the ThymesisFlow link.
    pub fn link_bytes_total(&self) -> f64 {
        self.link_bytes_total
    }

    /// Deploys `profile` in `mode` with its nominal duration.
    pub fn deploy(&mut self, profile: WorkloadProfile, mode: MemoryMode) -> DeploymentId {
        let duration = profile.base_runtime_s();
        self.deploy_for(profile, mode, duration)
    }

    /// Deploys `profile` in `mode` for an explicit `duration_s` (used for
    /// open-ended micro-benchmarks in scenario traces).
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    pub fn deploy_for(
        &mut self,
        profile: WorkloadProfile,
        mode: MemoryMode,
        duration_s: f32,
    ) -> DeploymentId {
        assert!(duration_s > 0.0, "duration must be positive");
        let id = DeploymentId(self.next_id);
        self.next_id += 1;
        self.resident.insert(
            id,
            Deployment {
                id,
                profile,
                mode,
                arrived_s: self.time_s,
                duration_s,
                work_done_s: 0.0,
                env: EnvAccumulator::default(),
            },
        );
        id
    }

    /// Removes a deployment before completion; returns it if resident.
    pub fn remove(&mut self, id: DeploymentId) -> Option<Deployment> {
        self.resident.remove(&id)
    }

    /// Whether `id` is still resident.
    pub fn is_resident(&self, id: DeploymentId) -> bool {
        self.resident.contains_key(&id)
    }

    /// Number of resident deployments.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Iterates over resident deployments in id order.
    pub fn resident(&self) -> impl Iterator<Item = &Deployment> + '_ {
        self.resident.values()
    }

    /// A deployment by id, if resident.
    pub fn deployment(&self, id: DeploymentId) -> Option<&Deployment> {
        self.resident.get(&id)
    }

    /// Pressure snapshot for the current resident set.
    pub fn pressure(&self) -> ResourcePressure {
        let refs: Vec<_> = self
            .resident
            .values()
            .map(|d| (&d.profile, d.mode))
            .collect();
        ResourcePressure::compute(&self.cfg, &refs)
    }

    /// Instantaneous slowdown factor of a resident deployment.
    pub fn slowdown_of(&self, id: DeploymentId) -> Option<f32> {
        let d = self.resident.get(&id)?;
        Some(slowdown(&d.profile, d.mode, &self.pressure()))
    }

    /// Advances the simulation by one second.
    ///
    /// Computes the pressure for the current resident set, advances every
    /// deployment's progress, collects completions (with sub-second
    /// completion-time interpolation) and synthesizes the Watcher sample.
    pub fn step(&mut self) -> StepReport {
        // One reference vec serves both the pressure model and the
        // counter synthesis — profiles are borrowed, never cloned, so
        // the per-step cost is independent of profile size.
        let refs: Vec<_> = self
            .resident
            .values()
            .map(|d| (&d.profile, d.mode))
            .collect();
        let pressure = ResourcePressure::compute(&self.cfg, &refs);
        let sample = counters::sample(
            &self.cfg,
            &refs,
            &pressure,
            self.time_s + Self::STEP_S,
            &mut self.rng,
        );
        self.link_bytes_total += f64::from(pressure.link_delivered_gbps) * 1e9 / 8.0 * Self::STEP_S;

        let mut finished = Vec::new();
        let step_start = self.time_s;
        for d in self.resident.values_mut() {
            let sd = slowdown(&d.profile, d.mode, &pressure);
            d.env.push(&pressure, sd);
            let rate = if d.contended_progress() {
                1.0 / f64::from(sd)
            } else {
                1.0
            };
            let before = d.work_done_s;
            d.work_done_s += rate * Self::STEP_S;
            if d.work_done_s >= f64::from(d.duration_s) {
                // Interpolate the in-step completion instant.
                let need = f64::from(d.duration_s) - before;
                let frac = if rate > 0.0 {
                    (need / rate).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                let finished_s = step_start + frac * Self::STEP_S;
                finished.push(CompletedApp {
                    id: d.id,
                    name: d.profile.name().to_owned(),
                    class: d.profile.class(),
                    mode: d.mode,
                    arrived_s: d.arrived_s,
                    finished_s,
                    runtime_s: finished_s - d.arrived_s,
                    mean_slowdown: d.env.mean_slowdown(),
                    average_env: d.env.average_env(d.mode),
                });
            }
        }
        for c in &finished {
            self.resident.remove(&c.id);
        }
        self.time_s += Self::STEP_S;
        StepReport {
            time_s: self.time_s,
            sample,
            pressure,
            finished,
        }
    }

    /// Runs `profile` to completion in isolation on an otherwise empty
    /// testbed and returns its completion record together with the 1 Hz
    /// metric samples captured while it ran.
    ///
    /// This is how application *signatures* are captured (§V-B2) and how
    /// the isolation experiments of Figs. 3–4 are executed.
    ///
    /// # Panics
    ///
    /// Panics if other applications are resident.
    pub fn run_isolated(
        &mut self,
        profile: WorkloadProfile,
        mode: MemoryMode,
    ) -> (CompletedApp, Vec<MetricSample>) {
        assert!(
            self.resident.is_empty(),
            "run_isolated requires an empty testbed"
        );
        let id = self.deploy(profile, mode);
        let mut samples = Vec::new();
        loop {
            let report = self.step();
            samples.push(report.sample);
            if let Some(done) = report.finished.into_iter().find(|c| c.id == id) {
                return (done, samples);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_workloads::{ibench, spark, IbenchKind};

    fn testbed() -> Testbed {
        Testbed::new(TestbedConfig::noiseless(), 99)
    }

    #[test]
    fn isolated_local_run_matches_base_runtime() {
        let mut tb = testbed();
        let app = spark::by_name("wordcount").unwrap();
        let (done, samples) = tb.run_isolated(app.clone(), MemoryMode::Local);
        assert!((done.runtime_s - f64::from(app.base_runtime_s())).abs() <= 1.0);
        assert_eq!(samples.len(), done.finished_s.ceil() as usize);
        assert!((done.mean_slowdown - 1.0).abs() < 1e-3);
    }

    #[test]
    fn isolated_remote_run_suffers_penalty() {
        let mut tb = testbed();
        let app = spark::by_name("nweight").unwrap();
        let (done, _) = tb.run_isolated(app.clone(), MemoryMode::Remote);
        let ratio = done.runtime_s / f64::from(app.base_runtime_s());
        assert!(
            (ratio - f64::from(app.remote_penalty())).abs() < 0.1,
            "remote/local ratio {ratio} vs penalty {}",
            app.remote_penalty()
        );
    }

    #[test]
    fn co_located_apps_slow_each_other_down() {
        let mut tb = testbed();
        let app = spark::by_name("sort").unwrap();
        let stressor = ibench::profile(IbenchKind::Llc);
        for _ in 0..16 {
            tb.deploy_for(stressor.clone(), MemoryMode::Local, 3600.0);
        }
        let id = tb.deploy(app.clone(), MemoryMode::Local);
        let mut runtime = None;
        for _ in 0..2000 {
            let report = tb.step();
            if let Some(done) = report.finished.iter().find(|c| c.id == id) {
                runtime = Some(done.runtime_s);
                break;
            }
        }
        let runtime = runtime.expect("app should finish");
        assert!(
            runtime > 1.5 * f64::from(app.base_runtime_s()),
            "contended runtime {runtime} vs base {}",
            app.base_runtime_s()
        );
    }

    #[test]
    fn lc_services_run_wall_clock_durations() {
        let mut tb = testbed();
        let redis = adrias_workloads::keyvalue::redis();
        let id = tb.deploy_for(redis, MemoryMode::Remote, 30.0);
        let mut done = None;
        for _ in 0..40 {
            let report = tb.step();
            if let Some(c) = report.finished.into_iter().find(|c| c.id == id) {
                done = Some(c);
                break;
            }
        }
        let done = done.expect("LC session ends after its duration");
        assert!((done.runtime_s - 30.0).abs() < 1.0);
        assert_eq!(done.average_env.mode, MemoryMode::Remote);
    }

    #[test]
    fn remove_prevents_completion() {
        let mut tb = testbed();
        let app = spark::by_name("gmm").unwrap();
        let id = tb.deploy(app, MemoryMode::Local);
        tb.step();
        assert!(tb.is_resident(id));
        let removed = tb.remove(id).expect("was resident");
        assert_eq!(removed.id(), id);
        assert!(!tb.is_resident(id));
        assert_eq!(tb.resident_count(), 0);
    }

    #[test]
    fn link_traffic_accumulates_only_for_remote() {
        let mut tb = testbed();
        let app = spark::by_name("lr").unwrap();
        tb.deploy(app.clone(), MemoryMode::Local);
        for _ in 0..10 {
            tb.step();
        }
        assert_eq!(tb.link_bytes_total(), 0.0);

        let mut tb2 = testbed();
        tb2.deploy(app, MemoryMode::Remote);
        for _ in 0..10 {
            tb2.step();
        }
        assert!(tb2.link_bytes_total() > 0.0);
    }

    #[test]
    fn deployment_ids_are_unique_and_ordered() {
        let mut tb = testbed();
        let app = spark::by_name("gmm").unwrap();
        let a = tb.deploy(app.clone(), MemoryMode::Local);
        let b = tb.deploy(app, MemoryMode::Remote);
        assert_ne!(a, b);
        assert!(a < b);
        assert_eq!(tb.resident_count(), 2);
        assert_eq!(tb.deployment(a).unwrap().mode(), MemoryMode::Local);
        assert_eq!(tb.deployment(b).unwrap().mode(), MemoryMode::Remote);
    }

    #[test]
    fn slowdown_of_reports_current_factor() {
        let mut tb = testbed();
        let app = spark::by_name("nweight").unwrap();
        let id = tb.deploy(app.clone(), MemoryMode::Remote);
        let sd = tb.slowdown_of(id).unwrap();
        assert!((sd - app.remote_penalty()).abs() < 0.05);
        assert!(tb.slowdown_of(DeploymentId(999)).is_none());
    }

    #[test]
    #[should_panic(expected = "empty testbed")]
    fn run_isolated_requires_empty_testbed() {
        let mut tb = testbed();
        let app = spark::by_name("gmm").unwrap();
        tb.deploy(app.clone(), MemoryMode::Local);
        let _ = tb.run_isolated(app, MemoryMode::Local);
    }

    #[test]
    fn time_advances_one_second_per_step() {
        let mut tb = testbed();
        assert_eq!(tb.time_s(), 0.0);
        tb.step();
        tb.step();
        assert_eq!(tb.time_s(), 2.0);
    }
}
