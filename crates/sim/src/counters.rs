//! Synthesis of the Watcher's performance-event samples.
//!
//! Real hardware exposes these events through `perf` and the ThymesisFlow
//! FPGA registers; the simulator synthesizes them from workload demands
//! and the current [`ResourcePressure`], with a small multiplicative
//! noise to mimic measurement jitter.

use adrias_core::rng::Rng;

use adrias_telemetry::{dist, Metric, MetricSample, MetricVec};
use adrias_workloads::{MemoryMode, WorkloadProfile};

use crate::config::TestbedConfig;
use crate::interconnect::Interconnect;
use crate::pressure::ResourcePressure;

/// LLC load events per second per demanded core.
const LLC_LOADS_PER_CORE: f32 = 3.0e7;
/// LLC load events per second per MiB of LLC working set.
const LLC_LOADS_PER_LLC_MB: f32 = 1.5e7;
/// Baseline LLC miss ratio of a well-cached application.
const BASE_MISS_RATIO: f32 = 0.08;
/// Additional miss ratio per unit of LLC pressure.
const MISS_RATIO_PER_PRESSURE: f32 = 0.30;
/// Maximum miss ratio.
const MAX_MISS_RATIO: f32 = 0.85;
/// Bytes moved per DRAM load event (cache-line granularity).
const BYTES_PER_MEM_EVENT: f32 = 128.0;
/// Fraction of local DRAM events that are loads (rest are stores).
const MEM_LOAD_FRACTION: f32 = 0.7;
/// Fraction of link flits flowing toward the borrower (reads dominate).
const FLIT_RX_FRACTION: f32 = 0.6;

/// Synthesizes the Watcher sample for one simulation step.
///
/// `resident` lists the currently deployed `(workload, mode)` pairs, `p`
/// is the pressure snapshot for this step and `time_s` the simulation
/// clock. Noise is multiplicative with relative standard deviation
/// `cfg.noise_rel_std`.
pub fn sample<R: Rng + ?Sized>(
    cfg: &TestbedConfig,
    resident: &[(&WorkloadProfile, MemoryMode)],
    p: &ResourcePressure,
    time_s: f64,
    rng: &mut R,
) -> MetricSample {
    let mut llc_loads = 0.0f32;
    for (w, _) in resident {
        let d = w.demand();
        llc_loads += d.cpu_cores * LLC_LOADS_PER_CORE + d.llc_mb * LLC_LOADS_PER_LLC_MB;
    }
    let miss_ratio = (BASE_MISS_RATIO + MISS_RATIO_PER_PRESSURE * p.llc).min(MAX_MISS_RATIO);
    let llc_misses = llc_loads * miss_ratio;

    // Local DRAM events from aggregate local traffic (includes delivered
    // remote traffic per R3).
    let mem_events = p.local_traffic_gbps * 1e9 / 8.0 / BYTES_PER_MEM_EVENT;
    let mem_loads = mem_events * MEM_LOAD_FRACTION;
    let mem_stores = mem_events * (1.0 - MEM_LOAD_FRACTION);

    let flits = Interconnect::new(cfg.link).flits_per_second(p.link_delivered_gbps);
    let flits_rx = flits * FLIT_RX_FRACTION;
    let flits_tx = flits * (1.0 - FLIT_RX_FRACTION);

    let mut vec = MetricVec::zero();
    let noisy = |value: f32, rng: &mut R| -> f32 {
        if cfg.noise_rel_std <= 0.0 {
            value
        } else {
            value * dist::noise_factor(rng, cfg.noise_rel_std) as f32
        }
    };
    vec.set(Metric::LlcLoads, noisy(llc_loads, rng));
    vec.set(Metric::LlcMisses, noisy(llc_misses, rng));
    vec.set(Metric::MemLoads, noisy(mem_loads, rng));
    vec.set(Metric::MemStores, noisy(mem_stores, rng));
    vec.set(Metric::LinkFlitsTx, noisy(flits_tx, rng));
    vec.set(Metric::LinkFlitsRx, noisy(flits_rx, rng));
    vec.set(Metric::LinkLatency, noisy(p.link_latency_cycles, rng));
    MetricSample::new(time_s, vec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;
    use adrias_workloads::{ibench, spark, IbenchKind};

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(7)
    }

    fn sample_for(
        pairs: &[(adrias_workloads::WorkloadProfile, MemoryMode)],
        cfg: &TestbedConfig,
    ) -> MetricSample {
        let refs: Vec<_> = pairs.iter().map(|(w, m)| (w, *m)).collect();
        let p = ResourcePressure::compute(cfg, &refs);
        sample(cfg, &refs, &p, 0.0, &mut rng())
    }

    #[test]
    fn idle_sample_is_all_zero_but_latency() {
        let cfg = TestbedConfig::noiseless();
        let s = sample_for(&[], &cfg);
        assert_eq!(s.get(Metric::LlcLoads), 0.0);
        assert_eq!(s.get(Metric::MemLoads), 0.0);
        assert_eq!(s.get(Metric::LinkFlitsRx), 0.0);
        assert!((s.get(Metric::LinkLatency) - 350.0).abs() < 5.0);
    }

    #[test]
    fn local_app_generates_no_link_traffic() {
        let cfg = TestbedConfig::noiseless();
        let app = spark::by_name("lr").unwrap();
        let s = sample_for(&[(app, MemoryMode::Local)], &cfg);
        assert!(s.get(Metric::LlcLoads) > 0.0);
        assert!(s.get(Metric::MemLoads) > 0.0);
        assert_eq!(s.get(Metric::LinkFlitsRx), 0.0);
        assert_eq!(s.get(Metric::LinkFlitsTx), 0.0);
    }

    #[test]
    fn remote_app_generates_link_and_local_traffic() {
        let cfg = TestbedConfig::noiseless();
        let app = spark::by_name("lr").unwrap();
        let s = sample_for(&[(app, MemoryMode::Remote)], &cfg);
        assert!(s.get(Metric::LinkFlitsRx) > 0.0);
        assert!(s.get(Metric::LinkFlitsTx) > 0.0);
        // R3: remote traffic traverses local memory controllers.
        assert!(s.get(Metric::MemLoads) > 0.0);
    }

    #[test]
    fn miss_ratio_grows_with_llc_pressure() {
        let cfg = TestbedConfig::noiseless();
        let app = spark::by_name("sort").unwrap();
        let alone = sample_for(&[(app.clone(), MemoryMode::Local)], &cfg);
        let stressor = ibench::profile(IbenchKind::Llc);
        let mut pairs = vec![(app, MemoryMode::Local)];
        pairs.extend((0..16).map(|_| (stressor.clone(), MemoryMode::Local)));
        let contended = sample_for(&pairs, &cfg);
        let ratio_alone = alone.get(Metric::LlcMisses) / alone.get(Metric::LlcLoads);
        let ratio_contended = contended.get(Metric::LlcMisses) / contended.get(Metric::LlcLoads);
        assert!(
            ratio_contended > 2.0 * ratio_alone,
            "miss ratio should inflate: {ratio_alone} -> {ratio_contended}"
        );
    }

    #[test]
    fn load_store_split_is_constant() {
        let cfg = TestbedConfig::noiseless();
        let app = spark::by_name("terasort").unwrap();
        let s = sample_for(&[(app, MemoryMode::Local)], &cfg);
        let ratio = s.get(Metric::MemStores) / s.get(Metric::MemLoads);
        assert!((ratio - 3.0 / 7.0).abs() < 1e-3);
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let mut cfg = TestbedConfig::paper();
        cfg.noise_rel_std = 0.05;
        let app = spark::by_name("kmeans").unwrap();
        let noiseless = sample_for(
            &[(app.clone(), MemoryMode::Local)],
            &TestbedConfig::noiseless(),
        );
        let noisy = sample_for(&[(app, MemoryMode::Local)], &cfg);
        let rel = (noisy.get(Metric::LlcLoads) - noiseless.get(Metric::LlcLoads)).abs()
            / noiseless.get(Metric::LlcLoads);
        assert!(rel < 0.3, "noise should be small, got {rel}");
        assert!(rel > 0.0, "noise should actually perturb");
    }
}
