//! Per-application slowdown under contention.
//!
//! This module encodes the characterization findings of §IV-C as a
//! closed-form slowdown model:
//!
//! * local-mode slowdown is a weighted sum of resource pressures
//!   (weights = the application's [`Sensitivity`]);
//! * remote mode multiplies in the application's isolated remote penalty
//!   (Fig. 4) and a link term that grows with queueing delay and
//!   over-subscription (R5 — the "performance chasm" past saturation);
//! * *stacking* applications (R7) additionally suffer from CPU/L2
//!   contention when remote, widening the local-vs-remote gap on levels
//!   of the hierarchy that normally affect both modes equally.
//!
//! [`Sensitivity`]: adrias_workloads::Sensitivity

use adrias_workloads::{MemoryMode, WorkloadProfile};

use crate::pressure::ResourcePressure;

/// Weight of the link queueing-delay term in the remote slowdown.
const LINK_LATENCY_WEIGHT: f32 = 0.8;
/// Weight of link over-subscription beyond the soft threshold.
const LINK_OVERLOAD_WEIGHT: f32 = 0.5;
/// Link utilization past which over-subscription starts to add delay.
const LINK_OVERLOAD_ONSET: f32 = 1.0;
/// Upper clamp on the over-subscription term.
const LINK_OVERLOAD_CAP: f32 = 3.0;
/// Fraction of CPU/L2 contention that stacks onto remote mode (R7).
const STACKING_WEIGHT: f32 = 0.5;

/// Slowdown factor (≥ 1) of `profile` deployed in `mode` under pressure
/// `p`.
///
/// A factor of 1 means the application runs at its isolated local-DRAM
/// speed; 2 means it takes twice as long (BE) or, for the latency model,
/// that its service time doubles.
///
/// # Examples
///
/// ```
/// use adrias_sim::{slowdown, ResourcePressure, TestbedConfig};
/// use adrias_workloads::{spark, MemoryMode};
///
/// let cfg = TestbedConfig::paper();
/// let idle = ResourcePressure::idle(&cfg);
/// let nweight = spark::by_name("nweight").unwrap();
/// let local = slowdown(&nweight, MemoryMode::Local, &idle);
/// let remote = slowdown(&nweight, MemoryMode::Remote, &idle);
/// assert!((local - 1.0).abs() < 1e-6);
/// assert!((remote - nweight.remote_penalty()).abs() < 0.05);
/// ```
pub fn slowdown(profile: &WorkloadProfile, mode: MemoryMode, p: &ResourcePressure) -> f32 {
    let s = profile.sensitivity();
    let local_term = 1.0 + s.cpu * p.cpu + s.l2 * p.l2 + s.llc * p.llc + s.mem_bw * p.mem_bw;
    match mode {
        MemoryMode::Local => local_term,
        MemoryMode::Remote => {
            let latency_ratio = (p.link_latency_cycles / 350.0).max(1.0) - 1.0;
            let overload = (p.link_utilization - LINK_OVERLOAD_ONSET).clamp(0.0, LINK_OVERLOAD_CAP);
            let link_term = 1.0
                + s.mem_bw
                    * (LINK_LATENCY_WEIGHT * latency_ratio + LINK_OVERLOAD_WEIGHT * overload);
            let stacking_term = if profile.stacking() {
                1.0 + STACKING_WEIGHT * (s.cpu * p.cpu + s.l2 * p.l2)
            } else {
                1.0
            };
            local_term * profile.remote_penalty() * link_term * stacking_term
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TestbedConfig;
    use adrias_workloads::{ibench, spark, IbenchKind, MemoryMode, WorkloadProfile};

    fn cfg() -> TestbedConfig {
        TestbedConfig::paper()
    }

    fn pressure_with(
        n: usize,
        kind: IbenchKind,
        mode: MemoryMode,
        extra: Option<(&WorkloadProfile, MemoryMode)>,
    ) -> ResourcePressure {
        let stressor = ibench::profile(kind);
        let mut pairs: Vec<(WorkloadProfile, MemoryMode)> =
            (0..n).map(|_| (stressor.clone(), mode)).collect();
        if let Some((w, m)) = extra {
            pairs.push((w.clone(), m));
        }
        let refs: Vec<_> = pairs.iter().map(|(w, m)| (w, *m)).collect();
        ResourcePressure::compute(&cfg(), &refs)
    }

    #[test]
    fn isolated_local_slowdown_is_one() {
        let idle = ResourcePressure::idle(&cfg());
        for w in spark::suite() {
            assert!((slowdown(&w, MemoryMode::Local, &idle) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn isolated_remote_slowdown_equals_penalty() {
        let idle = ResourcePressure::idle(&cfg());
        for w in spark::suite() {
            let sd = slowdown(&w, MemoryMode::Remote, &idle);
            assert!(
                (sd - w.remote_penalty()).abs() < 0.05,
                "{}: {} vs {}",
                w.name(),
                sd,
                w.remote_penalty()
            );
        }
    }

    #[test]
    fn remote_chasm_under_membw_saturation_per_r5() {
        // With 16 memBw stressors co-located in the same mode, the
        // remote-vs-local gap must exceed the isolated penalty by a lot.
        let app = spark::by_name("lr").unwrap();
        let p_local = pressure_with(
            16,
            IbenchKind::MemBw,
            MemoryMode::Local,
            Some((&app, MemoryMode::Local)),
        );
        let p_remote = pressure_with(
            16,
            IbenchKind::MemBw,
            MemoryMode::Remote,
            Some((&app, MemoryMode::Remote)),
        );
        let sd_local = slowdown(&app, MemoryMode::Local, &p_local);
        let sd_remote = slowdown(&app, MemoryMode::Remote, &p_remote);
        let gap = sd_remote / sd_local;
        assert!(
            gap > 1.5 * app.remote_penalty(),
            "gap {gap} should widen well past the isolated penalty {}",
            app.remote_penalty()
        );
    }

    #[test]
    fn light_interference_keeps_gap_near_penalty() {
        let app = spark::by_name("terasort").unwrap();
        let p_local = pressure_with(
            1,
            IbenchKind::MemBw,
            MemoryMode::Local,
            Some((&app, MemoryMode::Local)),
        );
        let p_remote = pressure_with(
            1,
            IbenchKind::MemBw,
            MemoryMode::Remote,
            Some((&app, MemoryMode::Remote)),
        );
        let gap = slowdown(&app, MemoryMode::Remote, &p_remote)
            / slowdown(&app, MemoryMode::Local, &p_local);
        assert!(
            (gap / app.remote_penalty() - 1.0).abs() < 0.25,
            "gap {gap} vs penalty {}",
            app.remote_penalty()
        );
    }

    #[test]
    fn stacking_apps_suffer_cpu_interference_remotely_per_r7() {
        let stacker = spark::by_name("nweight").unwrap();
        let plain = spark::by_name("terasort").unwrap();
        let p = pressure_with(80, IbenchKind::Cpu, MemoryMode::Local, None);
        assert!(p.cpu > 0.0, "80 CPU stressors should pressure 64 cores");
        let gap_stacker = slowdown(&stacker, MemoryMode::Remote, &p)
            / (slowdown(&stacker, MemoryMode::Local, &p) * stacker.remote_penalty());
        let gap_plain = slowdown(&plain, MemoryMode::Remote, &p)
            / (slowdown(&plain, MemoryMode::Local, &p) * plain.remote_penalty());
        assert!(
            gap_stacker > gap_plain + 0.02,
            "stacking app gap {gap_stacker} should exceed plain gap {gap_plain}"
        );
    }

    #[test]
    fn llc_contention_is_worst_for_cache_heavy_apps_per_r6() {
        let app = spark::by_name("sort").unwrap();
        let llc = pressure_with(16, IbenchKind::Llc, MemoryMode::Local, None);
        let cpu = pressure_with(16, IbenchKind::Cpu, MemoryMode::Local, None);
        let sd_llc = slowdown(&app, MemoryMode::Local, &llc);
        let sd_cpu = slowdown(&app, MemoryMode::Local, &cpu);
        assert!(
            sd_llc > sd_cpu,
            "LLC contention ({sd_llc}) should dominate CPU contention ({sd_cpu})"
        );
    }

    #[test]
    fn slowdown_is_monotone_in_stressor_count() {
        let app = spark::by_name("pagerank").unwrap();
        let mut prev = 0.0;
        for n in [0, 2, 4, 8, 16, 32] {
            let p = pressure_with(n, IbenchKind::Llc, MemoryMode::Local, None);
            let sd = slowdown(&app, MemoryMode::Local, &p);
            assert!(sd >= prev - 1e-5, "slowdown regressed at n={n}");
            prev = sd;
        }
    }
}
