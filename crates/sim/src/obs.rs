//! Observability hooks for the testbed: accumulates [`StepReport`]s
//! into sim metrics for an [`adrias_obs::Registry`].
//!
//! The engine observes every simulated second, so the per-step path
//! must stay cheap: [`SimMetrics`] is a plain struct of counters and
//! histograms — no name lookups, no allocation except the first
//! completion of each app — and [`SimMetrics::flush`] pays the registry
//! accesses once per run. Everything recorded here is derived from
//! simulator state, so the resulting exports inherit the testbed's
//! determinism.

use std::collections::BTreeMap;

use adrias_obs::registry::default_buckets;
use adrias_obs::{Histogram, Registry};
use adrias_telemetry::Metric;

use crate::testbed::StepReport;

/// Bucket bounds for contention-slowdown histograms: slowdown factors
/// from "no interference" (1×) up to heavily degraded (≥3×).
pub const SLOWDOWN_BUCKETS: [f64; 9] = [1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0];

/// Bucket bounds for pressure/utilization histograms (fractions).
const UTIL_BUCKETS: [f64; 10] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0];

/// Per-run accumulator for simulator metrics: the step counter,
/// interconnect traffic and latency, resource-pressure histograms, and
/// per-app contention slowdowns for applications that finished.
#[derive(Debug, Clone)]
pub struct SimMetrics {
    steps: u64,
    time_s: f64,
    flits_tx: u64,
    flits_rx: u64,
    completions: u64,
    latency_cycles: Histogram,
    link_utilization: Histogram,
    mem_bw: Histogram,
    llc: Histogram,
    slowdown: Histogram,
    slowdown_bounds: Vec<f64>,
    slowdown_per_app: BTreeMap<String, Histogram>,
}

impl Default for SimMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMetrics {
    /// Creates an empty accumulator with the default
    /// [`SLOWDOWN_BUCKETS`] layout.
    pub fn new() -> Self {
        Self::with_slowdown_buckets(SLOWDOWN_BUCKETS.to_vec())
    }

    /// Creates an empty accumulator whose slowdown histograms (global
    /// and per-app) use the given bucket layout instead of the default
    /// [`SLOWDOWN_BUCKETS`]. Long rack-scale runs can pick a layout
    /// matching their contention regime (e.g. finer resolution below
    /// 1.5×); the default layout is unchanged, so existing golden
    /// exports stay bitwise-stable.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_slowdown_buckets(bounds: Vec<f64>) -> Self {
        Self {
            steps: 0,
            time_s: 0.0,
            flits_tx: 0,
            flits_rx: 0,
            completions: 0,
            latency_cycles: Histogram::new(default_buckets()),
            link_utilization: Histogram::new(UTIL_BUCKETS.to_vec()),
            mem_bw: Histogram::new(UTIL_BUCKETS.to_vec()),
            llc: Histogram::new(UTIL_BUCKETS.to_vec()),
            slowdown: Histogram::new(bounds.clone()),
            slowdown_bounds: bounds,
            slowdown_per_app: BTreeMap::new(),
        }
    }

    /// Records one simulation step.
    pub fn record(&mut self, report: &StepReport) {
        self.steps += 1;
        self.time_s = report.time_s;

        let vec = report.sample.vec();
        self.flits_tx += vec.get(Metric::LinkFlitsTx) as u64;
        self.flits_rx += vec.get(Metric::LinkFlitsRx) as u64;
        self.latency_cycles
            .observe(f64::from(vec.get(Metric::LinkLatency)));

        let p = &report.pressure;
        self.link_utilization.observe(f64::from(p.link_utilization));
        self.mem_bw.observe(f64::from(p.mem_bw));
        self.llc.observe(f64::from(p.llc));

        for done in &report.finished {
            self.completions += 1;
            let slowdown = f64::from(done.mean_slowdown);
            self.slowdown.observe(slowdown);
            self.slowdown_per_app
                .entry(done.name.clone())
                .or_insert_with(|| Histogram::new(self.slowdown_bounds.clone()))
                .observe(slowdown);
        }
    }

    /// Number of steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Folds the accumulated metrics into `registry` under the `sim.*`
    /// names (per-app slowdowns under `sim.slowdown.app.<name>`).
    /// Call once at the end of a run; repeated flushes double-count.
    pub fn flush(&self, registry: &mut Registry) {
        registry.counter_add("sim.steps", self.steps);
        registry.gauge_set("sim.time_s", self.time_s);
        registry.counter_add("sim.link.flits_tx", self.flits_tx);
        registry.counter_add("sim.link.flits_rx", self.flits_rx);
        registry.counter_add("sim.completions", self.completions);
        registry.merge_histogram("sim.link.latency_cycles", &self.latency_cycles);
        registry.merge_histogram("sim.pressure.link_utilization", &self.link_utilization);
        registry.merge_histogram("sim.pressure.mem_bw", &self.mem_bw);
        registry.merge_histogram("sim.pressure.llc", &self.llc);
        registry.merge_histogram("sim.slowdown", &self.slowdown);
        for (name, h) in &self.slowdown_per_app {
            registry.merge_histogram(&format!("sim.slowdown.app.{name}"), h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Testbed, TestbedConfig};
    use adrias_obs::export::to_jsonl_metrics;
    use adrias_obs::{validate_jsonl_metrics, Observer};
    use adrias_workloads::{spark, MemoryMode};

    /// Runs a deterministic co-located scenario and feeds every step to
    /// each accumulator, so layouts can be compared on identical data.
    fn record_run(sims: &mut [&mut SimMetrics]) {
        let mut tb = Testbed::new(TestbedConfig::noiseless(), 1);
        tb.deploy_for(spark::by_name("gmm").unwrap(), MemoryMode::Remote, 5.0);
        tb.deploy_for(spark::by_name("kmeans").unwrap(), MemoryMode::Remote, 5.0);
        tb.deploy_for(spark::by_name("lda").unwrap(), MemoryMode::Local, 5.0);
        for _ in 0..40 {
            let report = tb.step();
            for sim in sims.iter_mut() {
                sim.record(&report);
            }
        }
    }

    fn export(sim: &SimMetrics) -> String {
        let mut obs = Observer::default();
        sim.flush(&mut obs.registry);
        to_jsonl_metrics(&obs)
    }

    #[test]
    fn custom_slowdown_layout_round_trips_export_and_validation() {
        // Finer resolution below 1.5x than the default layout offers.
        let custom = vec![1.0, 1.05, 1.1, 1.15, 1.2, 1.3, 1.4, 1.5, 2.0, 4.0];
        let mut fine = SimMetrics::with_slowdown_buckets(custom);
        let mut coarse = SimMetrics::new();
        record_run(&mut [&mut fine, &mut coarse]);
        assert!(fine.steps() >= 40);

        let fine_text = export(&fine);
        let coarse_text = export(&coarse);
        let validated = validate_jsonl_metrics(&fine_text).expect("custom layout exports validate");
        assert_eq!(validated, fine_text.lines().count());
        assert!(fine_text.contains(r#""name":"sim.slowdown""#));

        // The layout only reshapes the slowdown histograms: counters and
        // gauges are identical, and the slowdown quantile estimates (which
        // interpolate within buckets) differ between layouts.
        let non_slowdown = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| !l.contains("sim.slowdown"))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(non_slowdown(&fine_text), non_slowdown(&coarse_text));
        assert_ne!(
            fine_text.lines().find(|l| l.contains(r#""sim.slowdown""#)),
            coarse_text
                .lines()
                .find(|l| l.contains(r#""sim.slowdown""#)),
            "a finer layout must change the interpolated quantiles"
        );
    }

    #[test]
    fn default_layout_matches_the_golden_buckets_bitwise() {
        // Golden layout predating the configurable constructor: the
        // default export must stay bitwise-stable for existing dashboards.
        assert_eq!(
            SLOWDOWN_BUCKETS,
            [1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0]
        );
        let mut a = SimMetrics::new();
        let mut b = SimMetrics::with_slowdown_buckets(SLOWDOWN_BUCKETS.to_vec());
        record_run(&mut [&mut a, &mut b]);
        assert_eq!(export(&a), export(&b));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_layouts_are_rejected() {
        let _ = SimMetrics::with_slowdown_buckets(vec![1.0, 2.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn empty_layouts_are_rejected() {
        let _ = SimMetrics::with_slowdown_buckets(Vec::new());
    }

    #[test]
    fn steps_and_completions_are_counted() {
        let mut sim = SimMetrics::new();
        let mut tb = Testbed::new(TestbedConfig::noiseless(), 1);
        let gmm = spark::by_name("gmm").unwrap();
        tb.deploy_for(gmm, MemoryMode::Remote, 5.0);
        let mut completions = 0;
        for _ in 0..10 {
            let report = tb.step();
            completions += report.finished.len();
            sim.record(&report);
            if completions > 0 {
                break;
            }
        }
        let mut registry = Registry::new();
        sim.flush(&mut registry);
        assert!(registry.counter("sim.steps") >= 5);
        assert_eq!(registry.counter("sim.completions"), 1);
        assert!(registry.counter("sim.link.flits_tx") > 0);
        let h = registry.histogram("sim.slowdown.app.gmm").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.mean() >= 1.0);
        assert_eq!(
            registry
                .histogram("sim.link.latency_cycles")
                .unwrap()
                .count(),
            sim.steps()
        );
    }
}
