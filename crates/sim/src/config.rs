//! Testbed configuration: borrower-node and link parameters.

/// Borrower-node hardware parameters (defaults model one AC922).
///
/// Capacities are *contention* capacities: the point at which additional
/// demand starts to visibly degrade co-runners, which for caches and
/// memory controllers sits well below theoretical peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Logical cores (AC922: 2 sockets × 32).
    pub cores: f32,
    /// Aggregate private L2 capacity, MiB.
    pub l2_mb: f32,
    /// Last-level-cache capacity, MiB (10 MiB per socket).
    pub llc_mb: f32,
    /// Local DRAM contention bandwidth, Gbit/s.
    pub dram_gbps: f32,
    /// Idle local-DRAM load latency, nanoseconds.
    pub dram_latency_ns: f32,
}

impl NodeConfig {
    /// The paper's AC922 borrower node.
    pub fn paper() -> Self {
        Self {
            cores: 64.0,
            l2_mb: 32.0,
            llc_mb: 20.0,
            dram_gbps: 40.0,
            dram_latency_ns: 80.0,
        }
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// ThymesisFlow channel parameters.
///
/// The physical link is 100 Gbit/s (8×25 Gbit/s OpenCAPI toward the CPU),
/// but the *effective* cache-line-granularity throughput observed in the
/// paper's stress test caps out near 2.5 Gbit/s (R1), with the FPGA
/// back-pressure mechanism stepping the channel latency from ≈350 to
/// ≈900 cycles once the channel saturates (R2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Effective sustainable throughput, Gbit/s.
    pub effective_cap_gbps: f32,
    /// Channel latency at low utilization, cycles.
    pub base_latency_cycles: f32,
    /// Channel latency plateau under saturation, cycles.
    pub saturated_latency_cycles: f32,
    /// Utilization (offered/cap) at the centre of the latency transition.
    pub latency_knee_utilization: f32,
    /// Steepness of the latency transition.
    pub latency_knee_steepness: f32,
    /// Idle remote-access latency seen by applications, nanoseconds.
    pub remote_latency_ns: f32,
    /// Flit size on the channel, bytes.
    pub flit_bytes: u32,
    /// Fraction of an application's local-mode bandwidth demand that
    /// materializes as offered link load when it runs remote (the high
    /// remote latency self-throttles demand).
    pub link_demand_factor: f32,
    /// How strongly LLC pressure inflates the link demand of remote-mode
    /// applications (misses convert to channel traffic, R6).
    pub miss_traffic_coupling: f32,
}

impl LinkConfig {
    /// The paper's ThymesisFlow prototype.
    pub fn paper() -> Self {
        Self {
            effective_cap_gbps: 2.5,
            base_latency_cycles: 350.0,
            saturated_latency_cycles: 900.0,
            latency_knee_utilization: 1.5,
            latency_knee_steepness: 6.0,
            remote_latency_ns: 900.0,
            flit_bytes: 32,
            link_demand_factor: 0.3,
            miss_traffic_coupling: 0.6,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Full testbed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TestbedConfig {
    /// Borrower-node parameters.
    pub node: NodeConfig,
    /// ThymesisFlow channel parameters.
    pub link: LinkConfig,
    /// Relative standard deviation of the multiplicative measurement
    /// noise applied to generated counters.
    pub noise_rel_std: f64,
}

impl TestbedConfig {
    /// The paper's testbed with a small default measurement noise.
    pub fn paper() -> Self {
        Self {
            node: NodeConfig::paper(),
            link: LinkConfig::paper(),
            noise_rel_std: 0.02,
        }
    }

    /// A noise-free configuration, useful for deterministic tests.
    pub fn noiseless() -> Self {
        Self {
            noise_rel_std: 0.0,
            ..Self::paper()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_testbed_description() {
        let node = NodeConfig::paper();
        assert_eq!(node.cores, 64.0);
        assert_eq!(node.llc_mb, 20.0);
        assert_eq!(node.dram_latency_ns, 80.0);

        let link = LinkConfig::paper();
        assert_eq!(link.effective_cap_gbps, 2.5);
        assert_eq!(link.base_latency_cycles, 350.0);
        assert_eq!(link.saturated_latency_cycles, 900.0);
        assert_eq!(link.remote_latency_ns, 900.0);
        assert_eq!(link.flit_bytes, 32);
    }

    #[test]
    fn noiseless_config_zeroes_noise() {
        let cfg = TestbedConfig::noiseless();
        assert_eq!(cfg.noise_rel_std, 0.0);
        assert_eq!(cfg.node, NodeConfig::paper());
    }

    #[test]
    fn defaults_are_paper_values() {
        assert_eq!(NodeConfig::default(), NodeConfig::paper());
        assert_eq!(LinkConfig::default(), LinkConfig::paper());
    }
}
