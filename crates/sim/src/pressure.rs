//! Resource-pressure computation.
//!
//! Pressures are dimensionless contention indicators derived from the
//! aggregate demand of resident workloads against node capacities. A
//! pressure of 0 means the resource is comfortably shared; positive
//! values scale the slowdown of sensitive co-runners (see
//! [`crate::contention`]).

use adrias_workloads::{LatencyEnv, MemoryMode, WorkloadProfile};

use crate::config::TestbedConfig;
use crate::interconnect::{Interconnect, LinkState};

/// Utilization below which a resource exerts no pressure on co-runners.
const CACHE_PRESSURE_ONSET: f32 = 0.5;
/// CPU over-subscription starts to bite near full allocation.
const CPU_PRESSURE_ONSET: f32 = 0.9;
/// Memory-bandwidth contention onset.
const MEM_BW_PRESSURE_ONSET: f32 = 0.5;
/// Upper clamp for any single pressure term.
const PRESSURE_CAP: f32 = 4.0;

/// Converts a utilization ratio into a pressure value.
fn pressure_of(utilization: f32, onset: f32) -> f32 {
    ((utilization - onset) / (1.0 - onset)).clamp(0.0, PRESSURE_CAP)
}

/// The contention state of the testbed at one instant.
///
/// # Examples
///
/// ```
/// use adrias_sim::{ResourcePressure, TestbedConfig};
/// use adrias_workloads::{ibench, IbenchKind, MemoryMode};
///
/// let cfg = TestbedConfig::paper();
/// let stressor = ibench::profile(IbenchKind::MemBw);
/// let resident: Vec<_> = (0..16)
///     .map(|_| (stressor.clone(), MemoryMode::Remote))
///     .collect();
/// let refs: Vec<_> = resident.iter().map(|(w, m)| (w, *m)).collect();
/// let p = ResourcePressure::compute(&cfg, &refs);
/// assert!(p.link_latency_cycles > 800.0); // saturated channel
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourcePressure {
    /// CPU over-subscription pressure.
    pub cpu: f32,
    /// L2 pressure.
    pub l2: f32,
    /// LLC pressure (shared by local- and remote-mode applications).
    pub llc: f32,
    /// Local memory-bandwidth pressure (includes delivered remote
    /// traffic, which traverses the borrower's memory controllers — R3).
    pub mem_bw: f32,
    /// Offered link utilization (offered / effective cap).
    pub link_utilization: f32,
    /// Average channel latency, cycles.
    pub link_latency_cycles: f32,
    /// Delivered link throughput, Gbit/s.
    pub link_delivered_gbps: f32,
    /// Back-pressure factor: delivered / offered (1 when idle).
    pub link_backpressure: f32,
    /// Aggregate local-DRAM traffic, Gbit/s (local demand + delivered
    /// remote traffic).
    pub local_traffic_gbps: f32,
}

impl ResourcePressure {
    /// An idle testbed.
    pub fn idle(cfg: &TestbedConfig) -> Self {
        let link = LinkState::idle(&cfg.link);
        Self {
            cpu: 0.0,
            l2: 0.0,
            llc: 0.0,
            mem_bw: 0.0,
            link_utilization: 0.0,
            link_latency_cycles: link.latency_cycles,
            link_delivered_gbps: 0.0,
            link_backpressure: 1.0,
            local_traffic_gbps: 0.0,
        }
    }

    /// Computes pressures for a set of resident `(workload, mode)` pairs.
    ///
    /// The computation runs in two passes: node-level pressures first
    /// (CPU, L2, LLC from aggregate demand), then the link, whose offered
    /// load depends on the LLC pressure because cache misses of
    /// remote-mode applications convert into channel traffic.
    pub fn compute(cfg: &TestbedConfig, resident: &[(&WorkloadProfile, MemoryMode)]) -> Self {
        let mut cpu_total = 0.0f32;
        let mut l2_total = 0.0f32;
        let mut llc_total = 0.0f32;
        for (w, _) in resident {
            let d = w.demand();
            cpu_total += d.cpu_cores;
            l2_total += d.l2_mb;
            llc_total += d.llc_mb;
        }
        let cpu = pressure_of(cpu_total / cfg.node.cores, CPU_PRESSURE_ONSET);
        let l2 = pressure_of(l2_total / cfg.node.l2_mb, CACHE_PRESSURE_ONSET);
        let llc = pressure_of(llc_total / cfg.node.llc_mb, CACHE_PRESSURE_ONSET);

        // Link pass: remote-mode applications offer a latency-throttled
        // fraction of their bandwidth demand, inflated by LLC misses.
        let miss_inflation = 1.0 + cfg.link.miss_traffic_coupling * llc;
        let mut offered = 0.0f32;
        let mut local_bw = 0.0f32;
        for (w, mode) in resident {
            let bw = w.demand().mem_bw_gbps;
            match mode {
                MemoryMode::Remote => {
                    offered += bw * cfg.link.link_demand_factor * miss_inflation;
                }
                MemoryMode::Local => local_bw += bw,
            }
        }
        let link = Interconnect::new(cfg.link).evaluate(offered);
        // Delivered remote traffic also crosses the local controllers (R3).
        let local_traffic = local_bw + link.delivered_gbps;
        let mem_bw = pressure_of(local_traffic / cfg.node.dram_gbps, MEM_BW_PRESSURE_ONSET);

        Self {
            cpu,
            l2,
            llc,
            mem_bw,
            link_utilization: link.utilization,
            link_latency_cycles: link.latency_cycles,
            link_delivered_gbps: link.delivered_gbps,
            link_backpressure: link.backpressure(),
            local_traffic_gbps: local_traffic,
        }
    }

    /// Projects the pressure into the [`LatencyEnv`] consumed by the
    /// key-value latency model, for an application in `mode`.
    pub fn to_latency_env(&self, mode: MemoryMode) -> LatencyEnv {
        LatencyEnv {
            mode,
            cpu_pressure: self.cpu,
            l2_pressure: self.l2,
            llc_pressure: self.llc,
            mem_bw_pressure: self.mem_bw,
            link_utilization: self.link_utilization,
            link_latency_cycles: self.link_latency_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_workloads::{ibench, spark, IbenchKind};

    fn cfg() -> TestbedConfig {
        TestbedConfig::paper()
    }

    #[test]
    fn idle_testbed_has_zero_pressure() {
        let p = ResourcePressure::idle(&cfg());
        assert_eq!(p.cpu, 0.0);
        assert_eq!(p.llc, 0.0);
        assert_eq!(p.mem_bw, 0.0);
        assert!((p.link_latency_cycles - 350.0).abs() < 5.0);
    }

    #[test]
    fn single_app_exerts_no_meaningful_pressure() {
        let app = spark::by_name("gmm").unwrap();
        let resident = [(&app, MemoryMode::Local)];
        let p = ResourcePressure::compute(&cfg(), &resident);
        assert!(p.cpu < 0.1);
        assert!(p.llc < 0.1);
        assert!(p.mem_bw < 0.1);
    }

    #[test]
    fn llc_stressors_raise_llc_pressure() {
        let stressor = ibench::profile(IbenchKind::Llc);
        let pairs: Vec<(adrias_workloads::WorkloadProfile, MemoryMode)> = (0..16)
            .map(|_| (stressor.clone(), MemoryMode::Local))
            .collect();
        let refs: Vec<_> = pairs.iter().map(|(w, m)| (w, *m)).collect();
        let p = ResourcePressure::compute(&cfg(), &refs);
        assert!(
            p.llc > 1.0,
            "16 LLC stressors should pressure the LLC: {}",
            p.llc
        );
        assert!(p.cpu < 0.2, "LLC stressors are CPU-light");
    }

    #[test]
    fn remote_membw_stressors_saturate_link_per_r1_r2() {
        let stressor = ibench::profile(IbenchKind::MemBw);
        for (n, saturated) in [(1usize, false), (4, false), (8, true), (32, true)] {
            let pairs: Vec<_> = (0..n)
                .map(|_| (stressor.clone(), MemoryMode::Remote))
                .collect();
            let refs: Vec<_> = pairs.iter().map(|(w, m)| (w, *m)).collect();
            let p = ResourcePressure::compute(&cfg(), &refs);
            if saturated {
                assert!(
                    p.link_latency_cycles > 750.0,
                    "{n} stressors: latency {}",
                    p.link_latency_cycles
                );
                assert!(p.link_backpressure < 0.8);
            } else {
                assert!(
                    p.link_latency_cycles < 480.0,
                    "{n} stressors: latency {}",
                    p.link_latency_cycles
                );
            }
        }
    }

    #[test]
    fn local_stressors_do_not_touch_link() {
        let stressor = ibench::profile(IbenchKind::MemBw);
        let pairs: Vec<_> = (0..16)
            .map(|_| (stressor.clone(), MemoryMode::Local))
            .collect();
        let refs: Vec<_> = pairs.iter().map(|(w, m)| (w, *m)).collect();
        let p = ResourcePressure::compute(&cfg(), &refs);
        assert_eq!(p.link_utilization, 0.0);
        assert!(p.mem_bw > 0.0, "local traffic should pressure local DRAM");
    }

    #[test]
    fn remote_traffic_shows_up_locally_per_r3() {
        let stressor = ibench::profile(IbenchKind::MemBw);
        let pairs: Vec<_> = (0..8)
            .map(|_| (stressor.clone(), MemoryMode::Remote))
            .collect();
        let refs: Vec<_> = pairs.iter().map(|(w, m)| (w, *m)).collect();
        let p = ResourcePressure::compute(&cfg(), &refs);
        assert!(
            p.local_traffic_gbps > 0.0,
            "delivered remote traffic must appear in local controllers"
        );
    }

    #[test]
    fn latency_env_projection_copies_fields() {
        let p = ResourcePressure::idle(&cfg());
        let env = p.to_latency_env(MemoryMode::Remote);
        assert_eq!(env.mode, MemoryMode::Remote);
        assert_eq!(env.link_latency_cycles, p.link_latency_cycles);
        assert_eq!(env.cpu_pressure, p.cpu);
    }

    #[test]
    fn pressures_are_capped() {
        let stressor = ibench::profile(IbenchKind::Llc);
        let pairs: Vec<_> = (0..500)
            .map(|_| (stressor.clone(), MemoryMode::Local))
            .collect();
        let refs: Vec<_> = pairs.iter().map(|(w, m)| (w, *m)).collect();
        let p = ResourcePressure::compute(&cfg(), &refs);
        assert!(p.llc <= 4.0 + 1e-6);
    }
}
