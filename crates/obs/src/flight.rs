//! Flight recorder: a bounded ring of the engine's most recent events.
//!
//! When a fuzz oracle fails, the interesting question is "what was the
//! engine doing right before the violation?". The flight recorder keeps
//! the answer cheap: every engine-observer hook (admission, fault,
//! watcher sample, completion, drain deadline, SLO burn alert) appends
//! one fixed-size entry to a ring of the most recent `capacity`
//! entries. The ring is dumped — together with the QoS counterexample
//! evidence, the registry snapshot and the lifecycle spans — as a
//! post-mortem bundle by [`crate::export::write_post_mortem`].
//!
//! Entries carry only sim-clock data, so a dump is as deterministic as
//! the run that produced it; the `dropped` counter in the meta line
//! makes ring truncation visible.

use std::collections::VecDeque;

/// One recorded engine event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Monotone record index (counts every recorded event, including
    /// ones later evicted from the ring).
    pub seq: u64,
    /// Event kind tag (`"arrival"`, `"fault"`, `"sample"`, `"finish"`,
    /// `"deadline"`, `"burn"`).
    pub kind: &'static str,
    /// Sim-clock instant of the event, seconds.
    pub at_s: f64,
    /// Deployment id, for events tied to one deployment.
    pub deployment_id: Option<u64>,
}

/// Bounded ring of recent [`FlightEntry`] records.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEntry>,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight capacity must be positive");
        Self {
            capacity,
            ring: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends one event; evicts the oldest entry when the ring is
    /// full. Returns the assigned sequence number.
    pub fn record(&mut self, kind: &'static str, at_s: f64, deployment_id: Option<u64>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEntry {
            seq,
            kind,
            at_s,
            deployment_id,
        });
        seq
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.ring.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted due to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotone_seq() {
        let mut fr = FlightRecorder::new(8);
        fr.record("arrival", 1.0, Some(0));
        fr.record("sample", 1.0, None);
        fr.record("finish", 2.0, Some(0));
        let kinds: Vec<_> = fr.entries().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["arrival", "sample", "finish"]);
        let seqs: Vec<_> = fr.entries().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(fr.recorded(), 3);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn overflow_keeps_the_most_recent_entries() {
        let mut fr = FlightRecorder::new(3);
        for t in 0..7 {
            fr.record("sample", f64::from(t), None);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 4);
        let times: Vec<f64> = fr.entries().map(|e| e.at_s).collect();
        assert_eq!(times, vec![4.0, 5.0, 6.0]);
        // Seq numbers keep counting across evictions.
        assert_eq!(fr.entries().last().unwrap().seq, 6);
    }

    #[test]
    #[should_panic(expected = "flight capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }
}
