//! Causal lifecycle spans: one span tree per deployment.
//!
//! The flat tracer answers "what happened when"; the span store answers
//! "what happened to *this deployment*". Every admitted deployment gets
//! a four-node tree keyed by its deployment id:
//!
//! ```text
//! lifecycle (root)                arrival .. finish
//! ├── queue                       arrival .. admission tick
//! ├── decision (zero-width)       the policy ruling + lane
//! └── resident                    admission .. finish, watcher samples
//! ```
//!
//! Span ids are derived from the deployment id (`id * 4 + phase`), so
//! the tree is reconstructible from any single line and ids never
//! depend on ring state. All timestamps are **sim clock**, so the
//! export (`spans.jsonl`, see [`crate::export::to_jsonl_spans`]) is
//! byte-identical across same-seed runs, worker counts and engine
//! cores — the same contract the flat exports carry.
//!
//! Closed records live in a bounded ring with an explicit drop counter
//! (the meta line reports it), so a million-arrival run stays bounded.

use std::collections::{BTreeMap, VecDeque};

/// Child-phase offsets inside one deployment's span-id block.
pub mod phase {
    /// Root span offset: the whole lifecycle.
    pub const LIFECYCLE: u64 = 0;
    /// Queue-wait child: raw arrival to admission tick.
    pub const QUEUE: u64 = 1;
    /// Decision child: zero-width, carries the rule and the lane.
    pub const DECISION: u64 = 2;
    /// Residency child: admission to finish, carries the sample count.
    pub const RESIDENT: u64 = 3;
}

/// One deployment's complete (closed) lifecycle record.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleSpan {
    /// The deployment id the tree is keyed by.
    pub deployment_id: u64,
    /// Application name (interned).
    pub app: &'static str,
    /// Workload class tag (e.g. `"BE"` / `"LC"`).
    pub class: &'static str,
    /// Chosen memory mode tag (`"local"` / `"remote"`).
    pub mode: &'static str,
    /// The decision rule tag that fired (see `DecisionRule::tag`).
    pub rule: &'static str,
    /// The decision lane (`"fast"` / `"slow"` / `"direct"` /
    /// `"forced"`).
    pub lane: &'static str,
    /// Raw scheduled arrival instant, sim seconds.
    pub arrived_s: f64,
    /// Admission instant (the decision tick), sim seconds.
    pub decided_s: f64,
    /// Engine tick counter at admission.
    pub opened_tick: u64,
    /// Completion (or drain) instant, sim seconds.
    pub finished_s: f64,
    /// Watcher samples elapsed while resident.
    pub samples: u64,
    /// Whether the run ended before the deployment finished.
    pub drained: bool,
}

impl LifecycleSpan {
    /// The root span id of this deployment's tree.
    pub fn root_id(&self) -> u64 {
        self.deployment_id * 4 + phase::LIFECYCLE
    }
}

/// Bounded store of per-deployment lifecycle span trees.
///
/// Spans open at admission, close at completion (or get force-closed as
/// `drained` at run end). Closed records are retained newest-last in a
/// ring of `capacity` records; overflow evicts the oldest and bumps the
/// drop counter.
#[derive(Debug, Clone)]
pub struct SpanStore {
    enabled: bool,
    capacity: usize,
    open: BTreeMap<u64, LifecycleSpan>,
    closed: VecDeque<LifecycleSpan>,
    dropped: u64,
}

impl SpanStore {
    /// Creates a store retaining at most `capacity` closed records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, enabled: bool) -> Self {
        assert!(capacity > 0, "span capacity must be positive");
        Self {
            enabled,
            capacity,
            open: BTreeMap::new(),
            closed: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Whether lifecycle recording is switched on (the
    /// `ObsConfig::record_spans` gate).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Maximum retained closed records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closed records evicted due to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained closed records.
    pub fn len(&self) -> usize {
        self.closed.len()
    }

    /// Whether no closed records are retained.
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty()
    }

    /// Deployments admitted but not yet closed.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Opens a deployment's tree at admission. The finish fields of
    /// `span` are placeholders until [`SpanStore::close`]. No-op when
    /// recording is disabled.
    pub fn open(&mut self, span: LifecycleSpan) {
        if !self.enabled {
            return;
        }
        self.open.insert(span.deployment_id, span);
    }

    /// Closes a deployment's tree: stamps the finish instant and the
    /// elapsed sample count, then moves the record into the closed
    /// ring. Unknown ids (or disabled recording) are ignored.
    pub fn close(&mut self, deployment_id: u64, finished_s: f64, closed_tick: u64, drained: bool) {
        let Some(mut span) = self.open.remove(&deployment_id) else {
            return;
        };
        span.finished_s = finished_s;
        span.samples = closed_tick.saturating_sub(span.opened_tick);
        span.drained = drained;
        if self.closed.len() == self.capacity {
            self.closed.pop_front();
            self.dropped += 1;
        }
        self.closed.push_back(span);
    }

    /// Force-closes every still-open tree as drained (run end), in
    /// deployment-id order.
    pub fn drain_open(&mut self, finished_s: f64, closed_tick: u64) {
        while let Some(id) = self.open.keys().next().copied() {
            self.close(id, finished_s, closed_tick, true);
        }
    }

    /// Closed records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &LifecycleSpan> {
        self.closed.iter()
    }
}

impl Default for SpanStore {
    fn default() -> Self {
        Self::new(65_536, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, arrived: f64, decided: f64) -> LifecycleSpan {
        LifecycleSpan {
            deployment_id: id,
            app: "gmm",
            class: "be",
            mode: "local",
            rule: "static",
            lane: "direct",
            arrived_s: arrived,
            decided_s: decided,
            opened_tick: decided as u64,
            finished_s: 0.0,
            samples: 0,
            drained: false,
        }
    }

    #[test]
    fn open_close_produces_one_record_with_sample_count() {
        let mut store = SpanStore::new(8, true);
        store.open(span(3, 1.2, 2.0));
        assert_eq!(store.open_count(), 1);
        store.close(3, 40.0, 40, false);
        assert_eq!(store.open_count(), 0);
        let rec = store.records().next().unwrap();
        assert_eq!(rec.deployment_id, 3);
        assert_eq!(rec.finished_s, 40.0);
        assert_eq!(rec.samples, 38);
        assert!(!rec.drained);
        assert_eq!(rec.root_id(), 12);
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts_drops() {
        let mut store = SpanStore::new(2, true);
        for id in 0..4u64 {
            store.open(span(id, id as f64, id as f64));
            store.close(id, 10.0, 10, false);
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.dropped(), 2);
        let ids: Vec<u64> = store.records().map(|r| r.deployment_id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn drain_open_closes_in_deployment_id_order() {
        let mut store = SpanStore::new(8, true);
        for id in [5u64, 1, 3] {
            store.open(span(id, 0.0, 0.0));
        }
        store.drain_open(99.0, 99);
        let recs: Vec<_> = store.records().collect();
        assert_eq!(
            recs.iter().map(|r| r.deployment_id).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert!(recs.iter().all(|r| r.drained && r.finished_s == 99.0));
    }

    #[test]
    fn disabled_store_records_nothing() {
        let mut store = SpanStore::new(8, false);
        store.open(span(1, 0.0, 0.0));
        store.close(1, 5.0, 5, false);
        assert!(store.is_empty());
        assert_eq!(store.open_count(), 0);
        assert!(!store.enabled());
    }

    #[test]
    fn closing_an_unknown_id_is_a_no_op() {
        let mut store = SpanStore::new(8, true);
        store.close(42, 1.0, 1, false);
        assert!(store.is_empty());
        assert_eq!(store.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "span capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpanStore::new(0, true);
    }
}
