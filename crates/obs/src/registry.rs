//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms.
//!
//! Components register metrics under dotted names (`sim.steps`,
//! `orchestrator.decisions.local`, `predictor.system.epoch_loss`).
//! Storage is `BTreeMap`-backed so every export iterates in a stable
//! order — a prerequisite for byte-identical JSONL across runs.
//!
//! Histograms use **fixed bucket boundaries** chosen at registration:
//! observation is O(log buckets) and the memory footprint is constant,
//! which is what lets the engine observe every simulated second of a
//! long run. Mean/σ come from the Welford accumulator in
//! `adrias_telemetry::stats`; quantiles are interpolated from the bucket
//! counts.

use std::collections::BTreeMap;

use adrias_telemetry::stats::OnlineStats;

use crate::sketch::Sketch;

/// Default histogram boundaries: a log10 grid from `1e-3` to `1e12`,
/// three buckets per decade. Wide enough for cycle latencies (~1e2),
/// flit counts (~1e8) and slowdown factors (~1e0) alike.
pub fn default_buckets() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(46);
    for decade in -3..=11 {
        for mantissa in [1.0, 2.0, 5.0] {
            bounds.push(mantissa * 10f64.powi(decade));
        }
    }
    bounds.push(1e12);
    bounds
}

/// A fixed-bucket histogram with exact count/mean/σ and interpolated
/// quantiles.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `counts[i]` counts samples in `(bounds[i-1], bounds[i]]`;
    /// `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<u64>,
    stats: OnlineStats,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper
    /// bucket boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            stats: OnlineStats::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.stats.push(v as f32);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean of all observations.
    pub fn mean(&self) -> f32 {
        self.stats.mean()
    }

    /// Population standard deviation of all observations.
    pub fn std_dev(&self) -> f32 {
        self.stats.std_dev()
    }

    /// Smallest observation (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Bucket boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (the final entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds another histogram with identical bucket boundaries into
    /// this one, as if its observations had been recorded here.
    ///
    /// # Panics
    ///
    /// Panics if the bucket boundaries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different buckets"
        );
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.stats.merge(&other.stats);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) estimated by linear interpolation
    /// inside the containing bucket, clamped to the observed min/max.
    /// Returns `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = q * (total as f64 - 1.0);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (seen + c) as f64 > rank {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                let frac = (rank - seen as f64 + 0.5) / c as f64;
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }
}

/// The metrics registry.
///
/// # Examples
///
/// ```
/// use adrias_obs::registry::Registry;
///
/// let mut reg = Registry::new();
/// reg.counter_add("sim.steps", 1);
/// reg.gauge_set("engine.end_time_s", 720.0);
/// reg.observe("sim.slowdown", 1.8);
/// assert_eq!(reg.counter("sim.steps"), 1);
/// assert_eq!(reg.histogram("sim.slowdown").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    sketches: BTreeMap<String, Sketch>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Current value of a counter (`0` if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_owned(), v);
            }
        }
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into the named histogram, creating it with
    /// [`default_buckets`] on first use.
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::new(default_buckets());
                h.observe(v);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Records `v` into the named histogram, creating it with custom
    /// `bounds` on first use (later calls ignore `bounds`).
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], v: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::new(bounds.to_vec());
                h.observe(v);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Folds a pre-accumulated histogram into the named one (adopting a
    /// clone of it on first use). Lets hot loops accumulate into a
    /// lookup-free local histogram and pay one registry access per run.
    /// Empty histograms are ignored so exports only carry observed
    /// metrics.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        match self.histograms.get_mut(name) {
            Some(dst) => dst.merge(h),
            None => {
                self.histograms.insert(name.to_owned(), h.clone());
            }
        }
    }

    /// Folds every metric of `other` into this registry: counters add,
    /// histograms merge bucket-wise (via [`Histogram::merge`], so
    /// mean/σ come out as if all observations had landed here), and
    /// gauges take `other`'s value (last-merge-wins). Merging
    /// per-scenario registries in a fixed scenario order therefore
    /// yields a cross-scenario view that is independent of how the
    /// scenarios were scheduled across worker threads.
    ///
    /// # Panics
    ///
    /// Panics if a histogram name exists in both registries with
    /// different bucket boundaries.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in other.counters() {
            self.counter_add(name, v);
        }
        for (name, v) in other.gauges() {
            self.gauge_set(name, v);
        }
        for (name, h) in other.histograms() {
            self.merge_histogram(name, h);
        }
        for (name, s) in other.sketches() {
            self.merge_sketch(name, s);
        }
    }

    /// Records `v` into the named quantile sketch, creating it on first
    /// use. Sketches share one global log-bucket layout (see
    /// [`crate::sketch`]), so unlike [`Registry::observe`] there is no
    /// bounds choice to make and cross-worker merges stay exact.
    pub fn sketch_observe(&mut self, name: &str, v: f64) {
        match self.sketches.get_mut(name) {
            Some(s) => s.observe(v),
            None => {
                let mut s = Sketch::new();
                s.observe(v);
                self.sketches.insert(name.to_owned(), s);
            }
        }
    }

    /// The named quantile sketch, if any sample was recorded.
    pub fn sketch(&self, name: &str) -> Option<&Sketch> {
        self.sketches.get(name)
    }

    /// All sketches in name order.
    pub fn sketches(&self) -> impl Iterator<Item = (&str, &Sketch)> {
        self.sketches.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds a pre-accumulated sketch into the named one (adopting a
    /// clone on first use). Empty sketches are ignored.
    pub fn merge_sketch(&mut self, name: &str, s: &Sketch) {
        if s.is_empty() {
            return;
        }
        match self.sketches.get_mut(name) {
            Some(dst) => dst.merge(s),
            None => {
                self.sketches.insert(name.to_owned(), s.clone());
            }
        }
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut reg = Registry::new();
        reg.counter_add("a", 2);
        reg.counter_add("a", 3);
        reg.gauge_set("g", 1.0);
        reg.gauge_set("g", -4.5);
        assert_eq!(reg.counter("a"), 5);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauge("g"), Some(-4.5));
        assert_eq!(reg.gauge("missing"), None);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 2.0, 2.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert!((f64::from(h.mean()) - 110.9).abs() < 0.1);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 500.0);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Histogram::new(default_buckets());
        for i in 1..=1000 {
            h.observe(f64::from(i));
        }
        let q50 = h.quantile(0.5);
        let q95 = h.quantile(0.95);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q95 && q95 <= q99, "{q50} {q95} {q99}");
        assert!((400.0..=600.0).contains(&q50), "median estimate {q50}");
        assert!(q99 <= 1000.0);
        assert_eq!(Histogram::new(vec![1.0]).quantile(0.99), 0.0);
    }

    #[test]
    fn bucket_boundary_is_inclusive_upper() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(1.0);
        assert_eq!(h.counts(), &[1, 0, 0]);
    }

    #[test]
    fn registry_iterates_in_name_order() {
        let mut reg = Registry::new();
        reg.counter_add("z", 1);
        reg.counter_add("a", 1);
        let names: Vec<&str> = reg.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn observe_with_keeps_first_bounds() {
        let mut reg = Registry::new();
        reg.observe_with("h", &[10.0], 3.0);
        reg.observe_with("h", &[99.0], 30.0);
        let h = reg.histogram("h").unwrap();
        assert_eq!(h.bounds(), &[10.0]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn histogram_merge_matches_direct_observation() {
        let bounds = vec![1.0, 10.0, 100.0];
        let mut whole = Histogram::new(bounds.clone());
        let mut a = Histogram::new(bounds.clone());
        let mut b = Histogram::new(bounds.clone());
        for v in [0.5, 2.0, 50.0] {
            whole.observe(v);
            a.observe(v);
        }
        for v in [2.0, 500.0] {
            whole.observe(v);
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.counts(), whole.counts());
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-5);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn registry_merge_adopts_and_skips_empty() {
        let mut reg = Registry::new();
        let empty = Histogram::new(vec![1.0]);
        reg.merge_histogram("h", &empty);
        assert!(reg.histogram("h").is_none(), "empty merges leave no trace");
        let mut h = Histogram::new(vec![1.0]);
        h.observe(0.5);
        reg.merge_histogram("h", &h);
        reg.merge_histogram("h", &h);
        assert_eq!(reg.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn registry_merge_folds_all_three_kinds() {
        let mut a = Registry::new();
        a.counter_add("c", 2);
        a.gauge_set("g", 1.0);
        a.observe("h", 3.0);
        let mut b = Registry::new();
        b.counter_add("c", 3);
        b.counter_add("only_b", 1);
        b.gauge_set("g", -4.0);
        b.observe("h", 30.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), Some(-4.0), "gauges are last-merge-wins");
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        a.merge(&Registry::new());
        assert_eq!(a.counter("c"), 5);
    }

    #[test]
    fn registry_merge_with_disjoint_key_sets_keeps_both_sides() {
        let mut a = Registry::new();
        a.counter_add("a.count", 7);
        a.gauge_set("a.gauge", 1.5);
        a.observe("a.hist", 2.0);
        let mut b = Registry::new();
        b.counter_add("b.count", 3);
        b.gauge_set("b.gauge", -0.5);
        b.observe("b.hist", 20.0);
        a.merge(&b);
        assert_eq!(a.counter("a.count"), 7);
        assert_eq!(a.counter("b.count"), 3);
        assert_eq!(a.gauge("a.gauge"), Some(1.5));
        assert_eq!(a.gauge("b.gauge"), Some(-0.5));
        assert_eq!(a.histogram("a.hist").unwrap().count(), 1);
        assert_eq!(a.histogram("b.hist").unwrap().count(), 1);
        // `b` was only read from.
        assert_eq!(b.counter("b.count"), 3);
        assert!(b.histogram("a.hist").is_none());
    }

    #[test]
    fn registry_merge_with_empty_key_sets_is_identity_both_ways() {
        let mut populated = Registry::new();
        populated.counter_add("c", 4);
        populated.gauge_set("g", 2.0);
        populated.observe("h", 9.0);

        // empty.merge(populated) adopts everything...
        let mut empty = Registry::new();
        empty.merge(&populated);
        assert_eq!(empty.counter("c"), 4);
        assert_eq!(empty.gauge("g"), Some(2.0));
        assert_eq!(empty.histogram("h").unwrap().count(), 1);

        // ...and populated.merge(empty) changes nothing.
        populated.merge(&Registry::new());
        assert_eq!(populated.counter("c"), 4);
        assert_eq!(populated.gauge("g"), Some(2.0));
        assert_eq!(populated.histogram("h").unwrap().count(), 1);

        // Two empties stay empty.
        let mut x = Registry::new();
        x.merge(&Registry::new());
        assert!(x.is_empty());
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = Histogram::new(vec![1.0]);
        a.merge(&Histogram::new(vec![2.0]));
    }

    #[test]
    fn empty_histogram_quantiles_and_moments_read_zero() {
        let h = Histogram::new(default_buckets());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "q{q} on empty");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_bucket_histogram_interpolates_within_observed_range() {
        // One bucket bound: everything below 10 lands in bucket 0, and
        // quantiles must interpolate inside [min, max], never escape it.
        let mut h = Histogram::new(vec![10.0]);
        for v in [2.0, 4.0, 6.0] {
            h.observe(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let est = h.quantile(q);
            assert!((2.0..=6.0).contains(&est), "q{q} escaped range: {est}");
        }
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn merge_after_empty_is_identical_to_the_source() {
        let mut src = Histogram::new(vec![1.0, 10.0]);
        for v in [0.5, 5.0, 50.0] {
            src.observe(v);
        }
        // empty.merge(src) must behave exactly like src for every read.
        let mut dst = Histogram::new(vec![1.0, 10.0]);
        dst.merge(&src);
        assert_eq!(dst.counts(), src.counts());
        assert_eq!(dst.count(), src.count());
        assert_eq!(dst.min(), src.min());
        assert_eq!(dst.max(), src.max());
        for q in [0.0, 0.5, 0.99] {
            assert_eq!(dst.quantile(q).to_bits(), src.quantile(q).to_bits());
        }
        // ...and merging an empty histogram afterwards changes nothing.
        dst.merge(&Histogram::new(vec![1.0, 10.0]));
        assert_eq!(dst.counts(), src.counts());
        assert_eq!(dst.min(), src.min());
    }

    #[test]
    fn p99_on_a_single_sample_returns_that_sample() {
        let mut h = Histogram::new(default_buckets());
        h.observe(3.7);
        // rank = q * (1 - 1) = 0 for every q: the clamp to [min, max]
        // must pin all quantiles to the lone observation.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 3.7, "q{q}");
        }
    }

    #[test]
    fn registry_sketches_record_merge_and_iterate_in_name_order() {
        let mut a = Registry::new();
        a.sketch_observe("z.lat", 1.0);
        a.sketch_observe("a.lat", 2.0);
        let names: Vec<&str> = a.sketches().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.lat", "z.lat"]);
        assert_eq!(a.sketch("a.lat").unwrap().count(), 1);
        assert!(a.sketch("missing").is_none());

        let mut b = Registry::new();
        b.sketch_observe("a.lat", 4.0);
        a.merge(&b);
        assert_eq!(a.sketch("a.lat").unwrap().count(), 2);

        // Empty sketches leave no trace, mirroring merge_histogram.
        a.merge_sketch("ghost", &Sketch::new());
        assert!(a.sketch("ghost").is_none());
        assert!(!a.is_empty());
        assert!(Registry::new().is_empty());
    }
}
