//! Deterministic structured tracing.
//!
//! Every event is stamped with the **simulation clock**, never the wall
//! clock, so a trace is a pure function of the run's seeds: two runs of
//! the same seeded scenario produce byte-identical exports regardless of
//! host speed or worker count (the determinism contract pinned by
//! `tests/determinism_ws.rs`). Events live in a bounded ring: when the
//! ring is full the oldest event is evicted and an explicit overflow
//! counter records the loss, so exports are bounded and truncation is
//! always visible.
//!
//! Wall-clock timing is supported, but deliberately quarantined: it is
//! accumulated per label in a side table ([`Tracer::wall_totals`]) that
//! never appears in the deterministic exports — only in the
//! human-readable run report, clearly marked as host-dependent.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// One argument attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A numeric argument.
    Num(f64),
    /// A string argument.
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Num(v)
    }
}

impl From<f32> for ArgValue {
    fn from(v: f32) -> Self {
        ArgValue::Num(f64::from(v))
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// The temporal shape of one event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// A closed interval on the sim clock, `[t0_s, t1_s]`.
    Span {
        /// Start, sim seconds.
        t0_s: f64,
        /// End, sim seconds.
        t1_s: f64,
    },
    /// A point event on the sim clock.
    Instant {
        /// Event time, sim seconds.
        at_s: f64,
    },
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. `engine.run`, `deploy`), interned in the global
    /// string arena so recording an event never allocates for the name.
    pub name: &'static str,
    /// Category (e.g. `engine`, `decision`, `app`).
    pub cat: &'static str,
    /// Temporal shape.
    pub kind: TraceKind,
    /// Track id for timeline viewers; `0` is the engine track, each
    /// deployment gets its own.
    pub track: u64,
    /// Attached arguments, in insertion order.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Bounded, deterministic event recorder.
///
/// # Examples
///
/// ```
/// use adrias_obs::trace::Tracer;
///
/// let mut tr = Tracer::new(128);
/// tr.span("engine.run", "engine", 0.0, 42.0, 0, vec![]);
/// tr.instant("deploy", "decision", 3.0, 0, vec![("app", "gmm".into())]);
/// assert_eq!(tr.len(), 2);
/// assert_eq!(tr.dropped(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    wall_totals: BTreeMap<String, f64>,
    record_wall: bool,
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
            wall_totals: BTreeMap::new(),
            record_wall: false,
        }
    }

    /// Enables wall-clock accumulation (host-dependent; kept out of the
    /// deterministic exports).
    pub fn with_wall_clock(mut self) -> Self {
        self.record_wall = true;
        self
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted due to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Records a closed span `[t0_s, t1_s]` on the sim clock.
    pub fn span(
        &mut self,
        name: &str,
        cat: &'static str,
        t0_s: f64,
        t1_s: f64,
        track: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name: crate::intern::intern(name),
            cat,
            kind: TraceKind::Span { t0_s, t1_s },
            track,
            args,
        });
    }

    /// Records a point event on the sim clock.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &'static str,
        at_s: f64,
        track: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name: crate::intern::intern(name),
            cat,
            kind: TraceKind::Instant { at_s },
            track,
            args,
        });
    }

    /// Runs `f`, accumulating its wall-clock time under `label` when
    /// wall-clock recording is enabled. The measurement never enters the
    /// deterministic exports.
    pub fn time_wall<R>(&mut self, label: &str, f: impl FnOnce() -> R) -> R {
        if !self.record_wall {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        *self.wall_totals.entry(label.to_owned()).or_insert(0.0) += ms;
        out
    }

    /// Whether wall-clock accumulation is enabled.
    pub fn wall_enabled(&self) -> bool {
        self.record_wall
    }

    /// Adds `ns` nanoseconds of externally measured wall time under
    /// `label`. No-op unless wall-clock recording is enabled. Lets hot
    /// loops time themselves with a raw `Instant` and deposit the total
    /// once, instead of paying a closure call per iteration.
    pub fn add_wall_ns(&mut self, label: &str, ns: u64) {
        if !self.record_wall {
            return;
        }
        *self.wall_totals.entry(label.to_owned()).or_insert(0.0) += ns as f64 / 1e6;
    }

    /// Accumulated wall-clock milliseconds per label (host-dependent;
    /// empty unless [`Tracer::with_wall_clock`] was used).
    pub fn wall_totals(&self) -> &BTreeMap<String, f64> {
        &self.wall_totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overflow_evicts_oldest_and_counts() {
        let mut tr = Tracer::new(3);
        for t in 0..5 {
            tr.instant("e", "test", f64::from(t), 0, vec![]);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let first = tr.events().next().unwrap();
        assert_eq!(first.kind, TraceKind::Instant { at_s: 2.0 });
    }

    #[test]
    fn spans_and_instants_retain_args() {
        let mut tr = Tracer::new(8);
        tr.span("run", "engine", 0.0, 10.0, 0, vec![("n", 4.0.into())]);
        tr.instant("done", "engine", 10.0, 1, vec![("app", "gmm".into())]);
        let events: Vec<_> = tr.events().collect();
        assert_eq!(events[0].args[0], ("n", ArgValue::Num(4.0)));
        assert_eq!(events[1].args[0], ("app", ArgValue::Str("gmm".into())));
        assert_eq!(events[1].track, 1);
    }

    #[test]
    fn wall_clock_is_opt_in_and_side_channel() {
        let mut off = Tracer::new(4);
        off.time_wall("work", || std::hint::black_box(1 + 1));
        assert!(off.wall_totals().is_empty());

        let mut on = Tracer::new(4).with_wall_clock();
        on.time_wall("work", || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(on.wall_totals().contains_key("work"));
        // And no trace *events* were produced either way.
        assert!(on.is_empty());
    }

    #[test]
    fn add_wall_ns_respects_the_opt_in_gate() {
        let mut off = Tracer::new(4);
        off.add_wall_ns("engine;heap;push", 5_000_000);
        assert!(off.wall_totals().is_empty());
        assert!(!off.wall_enabled());

        let mut on = Tracer::new(4).with_wall_clock();
        assert!(on.wall_enabled());
        on.add_wall_ns("engine;heap;push", 5_000_000);
        on.add_wall_ns("engine;heap;push", 2_500_000);
        let ms = on.wall_totals()["engine;heap;push"];
        assert!((ms - 7.5).abs() < 1e-9, "accumulated {ms} ms");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Tracer::new(0);
    }
}
