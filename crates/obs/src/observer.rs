//! The [`Observer`]: one bundle of tracer + registry + audit trail
//! attached to an engine run.
//!
//! The engine itself knows nothing about exports: it calls the thin
//! recording methods here, and the `export` module turns a finished
//! `Observer` into JSONL / Chrome trace files. An observer is plain
//! owned state — no globals, no interior mutability — so two concurrent
//! runs can each carry their own without contention, and dropping one
//! discards its data.

use adrias_nn::TrainStats;

use crate::adapt::AdaptationLog;
use crate::audit::{AuditTrail, DecisionInput};
use crate::burn::BurnEvent;
use crate::flight::FlightRecorder;
use crate::registry::Registry;
use crate::spans::SpanStore;
use crate::trace::Tracer;

/// Configuration for an [`Observer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Maximum retained trace events (ring capacity).
    pub trace_capacity: usize,
    /// Near-flip band on the normalised decision margin (fraction,
    /// e.g. `0.05` flags decisions within 5% of flipping).
    pub near_flip_band: f32,
    /// Whether to accumulate host wall-clock timings (kept out of the
    /// deterministic exports; shown in the human report and the
    /// flamegraph file only).
    pub record_wall: bool,
    /// Maximum retained closed lifecycle spans (ring capacity).
    pub span_capacity: usize,
    /// Maximum retained flight-recorder entries (ring capacity).
    pub flight_capacity: usize,
    /// Whether to record per-deployment lifecycle spans (and feed the
    /// decision-latency / queue-wait / slowdown quantile sketches).
    pub record_spans: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            trace_capacity: 65_536,
            near_flip_band: 0.05,
            record_wall: false,
            span_capacity: 65_536,
            flight_capacity: 4096,
            record_spans: true,
        }
    }
}

/// Collected observability state for one run.
///
/// # Examples
///
/// ```
/// use adrias_obs::{Observer, ObsConfig};
///
/// let mut obs = Observer::new(ObsConfig::default());
/// obs.tracer.instant("deploy", "engine", 1.0, 0, vec![]);
/// obs.registry.counter_add("sim.steps", 1);
/// assert_eq!(obs.registry.counter("sim.steps"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Observer {
    /// Deterministic event trace.
    pub tracer: Tracer,
    /// Counters, gauges, histograms.
    pub registry: Registry,
    /// Orchestration decision audit trail.
    pub audit: AuditTrail,
    /// Online-adaptation audit log (captures, drift, model swaps).
    pub adapt: AdaptationLog,
    /// Per-deployment lifecycle span trees.
    pub spans: SpanStore,
    /// Bounded ring of recent engine events (post-mortem source).
    pub flight: FlightRecorder,
    /// SLO burn alerts fired during the run, in trigger order.
    pub burn: Vec<BurnEvent>,
}

impl Observer {
    /// Creates an observer from `cfg`.
    pub fn new(cfg: ObsConfig) -> Self {
        let mut tracer = Tracer::new(cfg.trace_capacity);
        if cfg.record_wall {
            tracer = tracer.with_wall_clock();
        }
        Self {
            tracer,
            registry: Registry::new(),
            audit: AuditTrail::new(cfg.near_flip_band),
            adapt: AdaptationLog::new(),
            spans: SpanStore::new(cfg.span_capacity, cfg.record_spans),
            flight: FlightRecorder::new(cfg.flight_capacity),
            burn: Vec::new(),
        }
    }

    /// Records one orchestration decision: appends it to the audit
    /// trail, bumps the per-placement counters, and emits an instant
    /// trace event on the engine track.
    pub fn record_decision(&mut self, input: DecisionInput) {
        // This runs on every orchestration decision, so the registry
        // keys and classification args are static strings rather than
        // formatted ones (they must match the `Display` impls the
        // exports use).
        use adrias_workloads::{MemoryMode, WorkloadClass};
        let mode_key = match input.chosen {
            MemoryMode::Local => "orchestrator.decisions.local",
            MemoryMode::Remote => "orchestrator.decisions.remote",
        };
        let rule_key = match input.rule {
            crate::audit::DecisionRule::BetaSlack { .. } => "orchestrator.rule.beta_slack",
            crate::audit::DecisionRule::QosThreshold { .. } => "orchestrator.rule.qos_threshold",
            crate::audit::DecisionRule::UnknownRemoteFirst => {
                "orchestrator.rule.unknown_remote_first"
            }
            crate::audit::DecisionRule::WarmupDefault => "orchestrator.rule.warmup_default",
            crate::audit::DecisionRule::Static => "orchestrator.rule.static",
            crate::audit::DecisionRule::Forced => "orchestrator.rule.forced",
        };
        self.registry.counter_add("orchestrator.decisions", 1);
        self.registry.counter_add(mode_key, 1);
        self.registry.counter_add(rule_key, 1);
        let class = match input.class {
            WorkloadClass::BestEffort => "BE",
            WorkloadClass::LatencyCritical => "LC",
            WorkloadClass::Interference => "iBench",
        };
        let mode = match input.chosen {
            MemoryMode::Local => "local",
            MemoryMode::Remote => "remote",
        };
        let mut args = vec![
            ("app", input.app.into()),
            ("class", class.into()),
            ("mode", mode.into()),
            ("rule", input.rule.tag().into()),
        ];
        if let Some(l) = input.pred_local {
            args.push(("pred_local", l.into()));
        }
        if let Some(r) = input.pred_remote {
            args.push(("pred_remote", r.into()));
        }
        self.tracer
            .instant("decision", "decision", input.at_s, 0, args);
        self.audit.record(input);
    }

    /// Records one SLO burn alert: stores the typed event, bumps the
    /// alert counter, and emits an instant trace event on the engine
    /// track (`cat = "slo"`).
    pub fn record_burn(&mut self, event: BurnEvent) {
        self.registry.counter_add("slo.burn.alerts", 1);
        self.tracer.instant(
            "slo_burn",
            "slo",
            event.at_s,
            0,
            vec![
                ("window_s", event.window_s.into()),
                ("rate", event.rate.into()),
                ("violations", (event.violations as f64).into()),
                ("total", (event.total as f64).into()),
            ],
        );
        self.burn.push(event);
    }

    /// Records one signature-capture attempt: appends it to the
    /// adaptation log, bumps the capture counters, and emits an instant
    /// trace event on the engine track (`cat = "adapt"`).
    pub fn record_capture(&mut self, record: crate::adapt::CaptureRecord) {
        let key = match record.skip {
            None => "adapt.captures",
            Some(crate::adapt::CaptureSkip::Interference) => "adapt.capture_skip.interference",
            Some(crate::adapt::CaptureSkip::NotRemote) => "adapt.capture_skip.not_remote",
            Some(crate::adapt::CaptureSkip::AlreadyKnown) => "adapt.capture_skip.already_known",
            Some(crate::adapt::CaptureSkip::DuplicateInRun) => {
                "adapt.capture_skip.duplicate_in_run"
            }
            Some(crate::adapt::CaptureSkip::EmptyResidency) => "adapt.capture_skip.empty_residency",
        };
        self.registry.counter_add(key, 1);
        let mut args = vec![
            ("app", record.app.into()),
            ("rows", (record.rows as f64).into()),
            ("co_runners", (record.co_runners as f64).into()),
        ];
        if let Some(skip) = record.skip {
            args.push(("skip", skip.tag().into()));
        }
        self.tracer
            .instant("capture", "adapt", record.finished_s, 0, args);
        self.adapt.record_capture(record);
    }

    /// Records one drift detection: appends it to the adaptation log,
    /// bumps the drift counter, and emits an instant trace event.
    pub fn record_drift(&mut self, event: crate::adapt::DriftEvent) {
        self.registry.counter_add("adapt.drift_events", 1);
        self.tracer.instant(
            "drift",
            "adapt",
            event.at_s,
            0,
            vec![
                ("stream", event.stream.into()),
                ("samples", (event.samples as f64).into()),
                ("mean", event.mean.into()),
                ("stat", event.stat.into()),
                ("threshold", event.threshold.into()),
            ],
        );
        self.adapt.record_drift(event);
    }

    /// Records one swap-gate verdict: appends it to the adaptation log,
    /// bumps the verdict counter, and emits an instant trace event.
    pub fn record_swap(&mut self, record: crate::adapt::ModelSwapRecord) {
        let key = match record.verdict {
            crate::adapt::SwapVerdict::Swapped => "adapt.swaps.swapped",
            crate::adapt::SwapVerdict::Rejected => "adapt.swaps.rejected",
        };
        self.registry.counter_add(key, 1);
        self.tracer.instant(
            "model_swap",
            "adapt",
            record.at_s,
            0,
            vec![
                ("target", record.target.into()),
                ("verdict", record.verdict.tag().into()),
                (
                    "incumbent_version",
                    (record.incumbent_version as f64).into(),
                ),
                (
                    "candidate_version",
                    (record.candidate_version as f64).into(),
                ),
                ("gate_margin", record.gate_margin.into()),
            ],
        );
        self.adapt.record_swap(record);
    }

    /// Records the counters of a finished training run under
    /// `prefix` (e.g. `predictor.system`), plus its per-epoch losses.
    pub fn record_train_stats(&mut self, prefix: &str, stats: &TrainStats, epoch_losses: &[f32]) {
        self.registry
            .counter_add(&format!("{prefix}.epochs"), stats.epochs);
        self.registry
            .counter_add(&format!("{prefix}.minibatches"), stats.minibatches);
        self.registry
            .counter_add(&format!("{prefix}.grad_chunks"), stats.grad_chunks);
        self.registry
            .counter_add(&format!("{prefix}.samples"), stats.samples);
        for &loss in epoch_losses {
            self.registry
                .observe(&format!("{prefix}.epoch_loss"), f64::from(loss));
        }
        if let Some(&last) = epoch_losses.last() {
            self.registry
                .gauge_set(&format!("{prefix}.final_loss"), f64::from(last));
        }
    }
}

impl Default for Observer {
    fn default() -> Self {
        Self::new(ObsConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{DecisionRule, WindowSummary};
    use adrias_workloads::{MemoryMode, WorkloadClass};

    #[test]
    fn record_decision_updates_all_three_pillars() {
        let mut obs = Observer::default();
        obs.record_decision(DecisionInput {
            at_s: 2.0,
            deployment_id: 1,
            app: "gmm",
            class: WorkloadClass::BestEffort,
            window: WindowSummary::empty(),
            pred_local: Some(80.0),
            pred_remote: Some(100.0),
            rule: DecisionRule::BetaSlack { beta: 1.0 },
            chosen: MemoryMode::Local,
            policy: "adrias",
        });
        assert_eq!(obs.audit.len(), 1);
        assert_eq!(obs.registry.counter("orchestrator.decisions"), 1);
        assert_eq!(obs.registry.counter("orchestrator.decisions.local"), 1);
        assert_eq!(obs.registry.counter("orchestrator.rule.beta_slack"), 1);
        assert_eq!(obs.tracer.len(), 1);
    }

    #[test]
    fn record_burn_updates_counter_trace_and_typed_log() {
        let mut obs = Observer::default();
        obs.record_burn(crate::burn::BurnEvent {
            at_s: 42.0,
            window_s: 60.0,
            rate: 0.75,
            violations: 3,
            total: 4,
        });
        assert_eq!(obs.registry.counter("slo.burn.alerts"), 1);
        assert_eq!(obs.tracer.len(), 1);
        assert_eq!(obs.burn.len(), 1);
        assert_eq!(obs.burn[0].window_s, 60.0);
    }

    #[test]
    fn train_stats_land_in_registry() {
        let mut obs = Observer::default();
        let mut stats = TrainStats::new();
        stats.record_minibatch(32, 8);
        stats.record_epoch();
        obs.record_train_stats("predictor.system", &stats, &[0.9, 0.4]);
        assert_eq!(obs.registry.counter("predictor.system.epochs"), 1);
        assert_eq!(obs.registry.counter("predictor.system.grad_chunks"), 4);
        assert_eq!(
            obs.registry
                .histogram("predictor.system.epoch_loss")
                .unwrap()
                .count(),
            2
        );
        let last = obs.registry.gauge("predictor.system.final_loss").unwrap();
        assert!((last - 0.4f64).abs() < 1e-6);
    }
}
