//! SLO burn-rate monitor: rolling multi-window QoS-violation rates.
//!
//! A single QoS violation is noise; a *rate* of violations is an
//! incident. The monitor watches every latency-critical completion and
//! maintains, per rolling window (60 s and 300 s by default, the
//! classic fast/slow burn pair), the fraction of completions whose p99
//! exceeded the QoS target. When a violating completion pushes a
//! window's rate to or above the alert threshold, one typed
//! [`BurnEvent`] fires (edge-triggered: the window must cool below the
//! threshold before it can alert again).
//!
//! Everything is computed from sim-clock completion instants and
//! integer counts, so the emitted events — exported as `slo_burn`
//! instants in the trace and surfaced in the report — are bitwise
//! deterministic across engine cores, decision lanes and worker counts.

use std::collections::VecDeque;

/// Configuration for [`SloBurnMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnConfig {
    /// Rolling window lengths, seconds (fast, slow).
    pub windows_s: [f64; 2],
    /// Violation-rate threshold in `[0, 1]` at which a window alerts.
    pub threshold: f64,
    /// Minimum completions in a window before it may alert (guards the
    /// first-sample `1/1 = 100 %` degenerate rate).
    pub min_samples: u64,
}

impl Default for BurnConfig {
    fn default() -> Self {
        Self {
            windows_s: [60.0, 300.0],
            threshold: 0.5,
            min_samples: 4,
        }
    }
}

/// One burn alert: a window crossed the violation-rate threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnEvent {
    /// Completion instant that triggered the alert, sim seconds.
    pub at_s: f64,
    /// The window that crossed, seconds.
    pub window_s: f64,
    /// Violation rate in the window at trigger time.
    pub rate: f64,
    /// Violating completions in the window.
    pub violations: u64,
    /// Total LC completions in the window.
    pub total: u64,
}

#[derive(Debug, Clone)]
struct Window {
    window_s: f64,
    /// `(finished_s, violated)` per LC completion still inside the
    /// window.
    events: VecDeque<(f64, bool)>,
    violations: u64,
    alerting: bool,
}

impl Window {
    fn observe(&mut self, at_s: f64, violated: bool, cfg: &BurnConfig) -> Option<BurnEvent> {
        self.events.push_back((at_s, violated));
        if violated {
            self.violations += 1;
        }
        while let Some(&(t, v)) = self.events.front() {
            if t >= at_s - self.window_s {
                break;
            }
            self.events.pop_front();
            if v {
                self.violations -= 1;
            }
        }
        let total = self.events.len() as u64;
        let rate = self.violations as f64 / total as f64;
        if rate >= cfg.threshold && total >= cfg.min_samples {
            if !self.alerting && violated {
                self.alerting = true;
                return Some(BurnEvent {
                    at_s,
                    window_s: self.window_s,
                    rate,
                    violations: self.violations,
                    total,
                });
            }
        } else {
            self.alerting = false;
        }
        None
    }

    fn rate(&self) -> f64 {
        if self.events.is_empty() {
            0.0
        } else {
            self.violations as f64 / self.events.len() as f64
        }
    }
}

/// Rolling multi-window QoS burn-rate monitor over LC completions.
///
/// # Examples
///
/// ```
/// use adrias_obs::burn::{BurnConfig, SloBurnMonitor};
///
/// let mut m = SloBurnMonitor::new(5.0, BurnConfig::default());
/// let mut alerts = Vec::new();
/// for i in 0..8 {
///     alerts.extend(m.observe(i as f64, 9.0)); // every p99 violates
/// }
/// assert!(!alerts.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SloBurnMonitor {
    qos_p99_ms: f32,
    cfg: BurnConfig,
    windows: Vec<Window>,
}

impl SloBurnMonitor {
    /// Creates a monitor against the given QoS p99 target.
    pub fn new(qos_p99_ms: f32, cfg: BurnConfig) -> Self {
        let windows = cfg
            .windows_s
            .iter()
            .map(|&window_s| Window {
                window_s,
                events: VecDeque::new(),
                violations: 0,
                alerting: false,
            })
            .collect();
        Self {
            qos_p99_ms,
            cfg,
            windows,
        }
    }

    /// The QoS target the monitor compares against, milliseconds.
    pub fn qos_p99_ms(&self) -> f32 {
        self.qos_p99_ms
    }

    /// Feeds one LC completion (`p99_ms` realized) at `at_s`. Returns
    /// the burn events triggered, in window order.
    pub fn observe(&mut self, at_s: f64, p99_ms: f32) -> Vec<BurnEvent> {
        let violated = p99_ms > self.qos_p99_ms;
        let cfg = self.cfg;
        self.windows
            .iter_mut()
            .filter_map(|w| w.observe(at_s, violated, &cfg))
            .collect()
    }

    /// Current violation rate per window, `(window_s, rate)` pairs.
    pub fn rates(&self) -> Vec<(f64, f64)> {
        self.windows
            .iter()
            .map(|w| (w.window_s, w.rate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> SloBurnMonitor {
        SloBurnMonitor::new(5.0, BurnConfig::default())
    }

    #[test]
    fn clean_completions_never_alert() {
        let mut m = monitor();
        for i in 0..100 {
            assert!(m.observe(i as f64, 1.0).is_empty());
        }
        assert!(m.rates().iter().all(|&(_, r)| r == 0.0));
    }

    #[test]
    fn sustained_violations_alert_once_per_window_edge() {
        let mut m = monitor();
        let mut events = Vec::new();
        for i in 0..10 {
            events.extend(m.observe(i as f64, 9.0));
        }
        // Both windows fire exactly once (edge-triggered).
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].window_s, 60.0);
        assert_eq!(events[1].window_s, 300.0);
        assert!(events.iter().all(|e| e.rate >= 0.5));
        // Still violating: no re-alerts while hot.
        assert!(m.observe(10.0, 9.0).is_empty());
    }

    #[test]
    fn window_cools_and_can_realert() {
        let cfg = BurnConfig {
            windows_s: [10.0, 300.0],
            ..BurnConfig::default()
        };
        let mut m = SloBurnMonitor::new(5.0, cfg);
        let mut first = Vec::new();
        for i in 0..5 {
            first.extend(m.observe(i as f64, 9.0));
        }
        assert!(first.iter().any(|e| e.window_s == 10.0));
        // A long clean stretch ages the violations out of the fast
        // window and drops its rate below threshold.
        for i in 5..30 {
            assert!(m.observe(i as f64, 1.0).is_empty());
        }
        let fast_rate = m.rates()[0].1;
        assert!(fast_rate < 0.5, "fast window still hot: {fast_rate}");
        // A fresh burst re-alerts the fast window.
        let mut again = Vec::new();
        for i in 30..40 {
            again.extend(m.observe(i as f64, 9.0));
        }
        assert!(again.iter().any(|e| e.window_s == 10.0));
    }

    #[test]
    fn min_samples_guards_the_first_violation() {
        let mut m = monitor();
        // 1/1 and 2/2 are 100 % rates but below min_samples.
        assert!(m.observe(0.0, 9.0).is_empty());
        assert!(m.observe(1.0, 9.0).is_empty());
        assert!(m.observe(2.0, 9.0).is_empty());
        // The 4th sample reaches min_samples and alerts.
        assert_eq!(m.observe(3.0, 9.0).len(), 2);
    }

    #[test]
    fn boundary_p99_equal_to_target_is_not_a_violation() {
        let mut m = monitor();
        for i in 0..20 {
            assert!(m.observe(i as f64, 5.0).is_empty());
        }
    }
}
