//! In-tree schema validators for the exported artifacts.
//!
//! CI runs the `obs_report` example and feeds the files it wrote back
//! through these checks, so a malformed export fails the build rather
//! than silently producing a trace Perfetto refuses to load. The
//! validators deliberately re-parse from text (through `json::parse`)
//! instead of inspecting observer state: they check what a consumer
//! would actually read.

use std::fmt;

use crate::json::{self, Json};

/// A schema violation found by a validator.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    /// 1-based line number for JSONL inputs; `0` for whole-document
    /// (Chrome trace) inputs.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid export: {}", self.reason)
        } else {
            write!(f, "invalid export at line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for ValidateError {}

fn err(line: usize, reason: impl Into<String>) -> ValidateError {
    ValidateError {
        line,
        reason: reason.into(),
    }
}

fn parse_line(line_no: usize, line: &str) -> Result<Json, ValidateError> {
    let doc = json::parse(line).map_err(|e| err(line_no, e.to_string()))?;
    if !doc.is_obj() {
        return Err(err(line_no, "expected a JSON object"));
    }
    Ok(doc)
}

fn require_num(doc: &Json, key: &str, line: usize) -> Result<f64, ValidateError> {
    doc.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| err(line, format!("missing numeric field `{key}`")))
}

fn require_str<'a>(doc: &'a Json, key: &str, line: usize) -> Result<&'a str, ValidateError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err(line, format!("missing string field `{key}`")))
}

/// Validates an `events.jsonl` export. Returns the number of event
/// lines (excluding the meta header).
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_jsonl_events(text: &str) -> Result<usize, ValidateError> {
    let mut lines = text.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or_else(|| err(0, "empty events export"))?;
    let meta = parse_line(1, meta_line)?;
    if require_str(&meta, "type", 1)? != "meta" {
        return Err(err(1, "first line must be the meta record"));
    }
    let capacity = require_num(&meta, "capacity", 1)?;
    let dropped = require_num(&meta, "dropped", 1)?;
    if capacity < 1.0 || dropped < 0.0 {
        return Err(err(1, "meta capacity/dropped out of range"));
    }

    let mut count = 0usize;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let doc = parse_line(line_no, line)?;
        let kind = require_str(&doc, "type", line_no)?;
        require_str(&doc, "name", line_no)?;
        require_str(&doc, "cat", line_no)?;
        require_num(&doc, "track", line_no)?;
        if !doc.get("args").is_some_and(Json::is_obj) {
            return Err(err(line_no, "missing object field `args`"));
        }
        match kind {
            "span" => {
                let t0 = require_num(&doc, "t0_s", line_no)?;
                let t1 = require_num(&doc, "t1_s", line_no)?;
                if t1 < t0 {
                    return Err(err(
                        line_no,
                        format!("span ends before it starts ({t1} < {t0})"),
                    ));
                }
            }
            "instant" => {
                require_num(&doc, "at_s", line_no)?;
            }
            other => return Err(err(line_no, format!("unknown event type `{other}`"))),
        }
        count += 1;
    }
    Ok(count)
}

const KNOWN_RULES: [&str; 6] = [
    "beta_slack",
    "qos_threshold",
    "unknown_remote_first",
    "warmup_default",
    "static",
    "forced",
];

/// Validates a `decisions.jsonl` export. Returns the number of
/// decision records.
///
/// Checks, per record: dense `seq` numbering from zero, a known rule
/// tag, a legal class/mode pair, and that β-slack / QoS decisions carry
/// a numeric margin (the acceptance criterion for the audit trail).
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_jsonl_decisions(text: &str) -> Result<usize, ValidateError> {
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let doc = parse_line(line_no, line)?;
        let seq = require_num(&doc, "seq", line_no)?;
        if seq != count as f64 {
            return Err(err(
                line_no,
                format!("non-dense seq {seq}, expected {count}"),
            ));
        }
        require_num(&doc, "at_s", line_no)?;
        require_num(&doc, "deployment_id", line_no)?;
        require_str(&doc, "app", line_no)?;
        require_str(&doc, "policy", line_no)?;
        let class = require_str(&doc, "class", line_no)?;
        if !["BE", "LC", "iBench"].contains(&class) {
            return Err(err(line_no, format!("unknown class `{class}`")));
        }
        let chosen = require_str(&doc, "chosen", line_no)?;
        if !["local", "remote"].contains(&chosen) {
            return Err(err(line_no, format!("unknown mode `{chosen}`")));
        }
        let rule = require_str(&doc, "rule", line_no)?;
        if !KNOWN_RULES.contains(&rule) {
            return Err(err(line_no, format!("unknown rule `{rule}`")));
        }
        require_num(&doc, "window_rows", line_no)?;
        if !doc.get("window_mean").is_some_and(Json::is_obj) {
            return Err(err(line_no, "missing object field `window_mean`"));
        }
        if doc.get("near_flip").and_then(Json::as_bool).is_none() {
            return Err(err(line_no, "missing boolean field `near_flip`"));
        }
        let margin = doc
            .get("margin")
            .ok_or_else(|| err(line_no, "missing field `margin`"))?;
        let margin_is_num = margin.as_num().is_some();
        if !margin_is_num && *margin != Json::Null {
            return Err(err(line_no, "`margin` must be a number or null"));
        }
        if ["beta_slack", "qos_threshold"].contains(&rule) && !margin_is_num {
            return Err(err(
                line_no,
                format!("rule `{rule}` requires a numeric margin"),
            ));
        }
        count += 1;
    }
    Ok(count)
}

/// Validates an `adaptation.jsonl` export. Returns the number of
/// records.
///
/// Checks, per record: a known kind (`capture` / `drift` / `swap`), a
/// known skip reason (or `null`) on captures, a sane residency window,
/// a known verdict on swaps, and that rejections carry at least one
/// reason.
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_jsonl_adaptation(text: &str) -> Result<usize, ValidateError> {
    let known_skips: Vec<&str> = crate::adapt::CaptureSkip::ALL
        .iter()
        .map(|s| s.tag())
        .collect();
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let doc = parse_line(line_no, line)?;
        match require_str(&doc, "type", line_no)? {
            "capture" => {
                require_str(&doc, "app", line_no)?;
                let arrived = require_num(&doc, "arrived_s", line_no)?;
                let finished = require_num(&doc, "finished_s", line_no)?;
                if finished < arrived {
                    return Err(err(
                        line_no,
                        format!("residency ends before it starts ({finished} < {arrived})"),
                    ));
                }
                let rows = require_num(&doc, "rows", line_no)?;
                require_num(&doc, "co_runners", line_no)?;
                let skip = doc
                    .get("skip")
                    .ok_or_else(|| err(line_no, "missing field `skip`"))?;
                match skip {
                    Json::Null => {
                        if rows < 1.0 {
                            return Err(err(line_no, "successful capture with zero rows"));
                        }
                    }
                    Json::Str(reason) => {
                        if !known_skips.contains(&reason.as_str()) {
                            return Err(err(line_no, format!("unknown skip reason `{reason}`")));
                        }
                    }
                    _ => return Err(err(line_no, "`skip` must be a string or null")),
                }
            }
            "drift" => {
                require_num(&doc, "at_s", line_no)?;
                require_str(&doc, "stream", line_no)?;
                let samples = require_num(&doc, "samples", line_no)?;
                if samples < 1.0 {
                    return Err(err(line_no, "drift event with no samples"));
                }
                require_num(&doc, "mean", line_no)?;
                let stat = require_num(&doc, "stat", line_no)?;
                let threshold = require_num(&doc, "threshold", line_no)?;
                if stat <= threshold {
                    return Err(err(
                        line_no,
                        format!("drift stat {stat} did not cross threshold {threshold}"),
                    ));
                }
            }
            "swap" => {
                require_num(&doc, "at_s", line_no)?;
                require_str(&doc, "target", line_no)?;
                for key in [
                    "incumbent_version",
                    "candidate_version",
                    "incumbent_mae",
                    "candidate_mae",
                    "incumbent_r2",
                    "candidate_r2",
                    "gate_margin",
                ] {
                    require_num(&doc, key, line_no)?;
                }
                let reasons = doc
                    .get("reasons")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err(line_no, "missing array field `reasons`"))?;
                match require_str(&doc, "verdict", line_no)? {
                    "swapped" => {}
                    "rejected" => {
                        if reasons.is_empty() {
                            return Err(err(line_no, "rejection without reasons"));
                        }
                    }
                    other => return Err(err(line_no, format!("unknown verdict `{other}`"))),
                }
            }
            other => return Err(err(line_no, format!("unknown adaptation type `{other}`"))),
        }
        count += 1;
    }
    Ok(count)
}

/// Validates a `metrics.jsonl` export. Returns the number of metric
/// lines.
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_jsonl_metrics(text: &str) -> Result<usize, ValidateError> {
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let doc = parse_line(line_no, line)?;
        require_str(&doc, "name", line_no)?;
        match require_str(&doc, "type", line_no)? {
            "counter" | "gauge" => {
                require_num(&doc, "value", line_no)?;
            }
            "histogram" => {
                let n = require_num(&doc, "count", line_no)?;
                if n < 1.0 {
                    return Err(err(line_no, "histogram with no observations exported"));
                }
                for key in ["mean", "std", "min", "max", "p50", "p95", "p99"] {
                    require_num(&doc, key, line_no)?;
                }
            }
            "sketch" => {
                let n = require_num(&doc, "count", line_no)?;
                if n < 1.0 {
                    return Err(err(line_no, "sketch with no samples exported"));
                }
                for key in ["zero", "min", "max", "buckets"] {
                    require_num(&doc, key, line_no)?;
                }
                let p50 = require_num(&doc, "p50", line_no)?;
                let p95 = require_num(&doc, "p95", line_no)?;
                let p99 = require_num(&doc, "p99", line_no)?;
                if p50 > p95 || p95 > p99 {
                    return Err(err(
                        line_no,
                        format!("sketch quantiles not monotone ({p50}, {p95}, {p99})"),
                    ));
                }
            }
            other => return Err(err(line_no, format!("unknown metric type `{other}`"))),
        }
        count += 1;
    }
    Ok(count)
}

const KNOWN_LANES: [&str; 4] = ["fast", "slow", "direct", "forced"];

/// Validates a `spans.jsonl` export. Returns the number of span lines
/// (excluding the meta header).
///
/// Checks the meta header, and per span: a known phase, the
/// id-derivation contract (`id = deployment_id * 4 + phase_offset`),
/// parent links (`null` on the root, the root id on children), interval
/// sanity (`t0_s <= t1_s`), and the phase-specific payload (app/class/
/// mode/drained on `lifecycle`, a known rule and lane on `decision`, a
/// sample count on `resident`).
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_jsonl_spans(text: &str) -> Result<usize, ValidateError> {
    let mut lines = text.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or_else(|| err(0, "empty spans export"))?;
    let meta = parse_line(1, meta_line)?;
    if require_str(&meta, "type", 1)? != "meta" {
        return Err(err(1, "first line must be the meta record"));
    }
    let capacity = require_num(&meta, "capacity", 1)?;
    let open = require_num(&meta, "open", 1)?;
    let dropped = require_num(&meta, "dropped", 1)?;
    if capacity < 1.0 || open < 0.0 || dropped < 0.0 {
        return Err(err(1, "meta capacity/open/dropped out of range"));
    }

    let mut count = 0usize;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let doc = parse_line(line_no, line)?;
        if require_str(&doc, "type", line_no)? != "span" {
            return Err(err(line_no, "span lines must have type `span`"));
        }
        let id = require_num(&doc, "id", line_no)?;
        let deployment = require_num(&doc, "deployment_id", line_no)?;
        let t0 = require_num(&doc, "t0_s", line_no)?;
        let t1 = require_num(&doc, "t1_s", line_no)?;
        if t1 < t0 {
            return Err(err(
                line_no,
                format!("span ends before it starts ({t1} < {t0})"),
            ));
        }
        let phase = require_str(&doc, "phase", line_no)?;
        let offset = match phase {
            "lifecycle" => 0.0,
            "queue" => 1.0,
            "decision" => 2.0,
            "resident" => 3.0,
            other => return Err(err(line_no, format!("unknown phase `{other}`"))),
        };
        if id != deployment * 4.0 + offset {
            return Err(err(
                line_no,
                format!("id {id} violates the derivation contract for phase `{phase}`"),
            ));
        }
        let parent = doc
            .get("parent")
            .ok_or_else(|| err(line_no, "missing field `parent`"))?;
        if phase == "lifecycle" {
            if *parent != Json::Null {
                return Err(err(line_no, "lifecycle root must have a null parent"));
            }
            require_str(&doc, "app", line_no)?;
            require_str(&doc, "class", line_no)?;
            require_str(&doc, "mode", line_no)?;
            if doc.get("drained").and_then(Json::as_bool).is_none() {
                return Err(err(line_no, "missing boolean field `drained`"));
            }
        } else if parent.as_num() != Some(deployment * 4.0) {
            return Err(err(line_no, "child span must point at its lifecycle root"));
        }
        if phase == "decision" {
            let rule = require_str(&doc, "rule", line_no)?;
            if !KNOWN_RULES.contains(&rule) {
                return Err(err(line_no, format!("unknown rule `{rule}`")));
            }
            let lane = require_str(&doc, "lane", line_no)?;
            if !KNOWN_LANES.contains(&lane) {
                return Err(err(line_no, format!("unknown lane `{lane}`")));
            }
        }
        if phase == "resident" && require_num(&doc, "samples", line_no)? < 0.0 {
            return Err(err(line_no, "negative sample count"));
        }
        count += 1;
    }
    Ok(count)
}

/// Validates a Chrome `trace_event` JSON document. Returns the number
/// of trace events.
///
/// Besides per-event field checks, the duration-begin/end stream
/// (`ph: "B"` / `"E"`) is checked for proper nesting: per `tid`, every
/// `E` must close the most recent open `B` by name, timestamps within
/// the B/E stream must be non-decreasing per `tid`, and no begin may be
/// left open at the end of the document.
///
/// # Errors
///
/// Returns the first schema violation found.
pub fn validate_chrome_trace(text: &str) -> Result<usize, ValidateError> {
    let doc = json::parse(text).map_err(|e| err(0, e.to_string()))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| err(0, "missing `traceEvents` array"))?;
    // Per-tid open-begin stacks and last-seen B/E timestamp. Keyed by
    // the tid's bit pattern so non-integral tids still hash stably.
    let mut stacks: std::collections::BTreeMap<u64, Vec<(String, f64)>> =
        std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        if !e.is_obj() {
            return Err(err(0, format!("{what} is not an object")));
        }
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| err(0, format!("{what} missing `ph`")))?;
        for key in ["name", "cat"] {
            if e.get(key).and_then(Json::as_str).is_none() {
                return Err(err(0, format!("{what} missing string `{key}`")));
            }
        }
        for key in ["ts", "pid", "tid"] {
            if e.get(key).and_then(Json::as_num).is_none() {
                return Err(err(0, format!("{what} missing numeric `{key}`")));
            }
        }
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| err(0, format!("{what} missing numeric `dur`")))?;
                if dur < 0.0 {
                    return Err(err(0, format!("{what} has negative duration")));
                }
            }
            "i" => {
                if e.get("s").and_then(Json::as_str).is_none() {
                    return Err(err(0, format!("{what} instant missing scope `s`")));
                }
            }
            "B" | "E" => {
                let name = e.get("name").and_then(Json::as_str).unwrap();
                let ts = e.get("ts").and_then(Json::as_num).unwrap();
                let tid = e.get("tid").and_then(Json::as_num).unwrap().to_bits();
                if let Some(&prev) = last_ts.get(&tid) {
                    if ts < prev {
                        return Err(err(
                            0,
                            format!("{what} timestamp {ts} rewinds its track (last {prev})"),
                        ));
                    }
                }
                last_ts.insert(tid, ts);
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    stack.push((name.to_owned(), ts));
                } else {
                    let Some((open_name, open_ts)) = stack.pop() else {
                        return Err(err(0, format!("{what} ends `{name}` with no open begin")));
                    };
                    if open_name != name {
                        return Err(err(
                            0,
                            format!("{what} ends `{name}` but `{open_name}` is open"),
                        ));
                    }
                    if ts < open_ts {
                        return Err(err(
                            0,
                            format!("{what} ends `{name}` before it began ({ts} < {open_ts})"),
                        ));
                    }
                }
            }
            other => return Err(err(0, format!("{what} has unsupported phase `{other}`"))),
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(err(
                0,
                format!(
                    "unclosed begin `{name}` on tid {} at end of trace",
                    f64::from_bits(*tid)
                ),
            ));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{DecisionInput, DecisionRule, WindowSummary};
    use crate::export;
    use crate::observer::Observer;
    use adrias_workloads::{MemoryMode, WorkloadClass};

    fn observer() -> Observer {
        let mut obs = Observer::default();
        obs.tracer.span("engine.run", "engine", 0.0, 5.0, 0, vec![]);
        obs.registry.counter_add("sim.steps", 5);
        obs.registry.observe("sim.slowdown", 1.2);
        obs.record_decision(DecisionInput {
            at_s: 1.0,
            deployment_id: 0,
            app: "gmm",
            class: WorkloadClass::BestEffort,
            window: WindowSummary::empty(),
            pred_local: Some(10.0),
            pred_remote: Some(12.0),
            rule: DecisionRule::BetaSlack { beta: 1.0 },
            chosen: MemoryMode::Local,
            policy: "adrias",
        });
        obs
    }

    #[test]
    fn real_exports_validate() {
        let obs = observer();
        assert_eq!(
            validate_jsonl_events(&export::to_jsonl_events(&obs)).unwrap(),
            2
        );
        assert_eq!(
            validate_jsonl_decisions(&export::to_jsonl_decisions(&obs)).unwrap(),
            1
        );
        assert!(validate_jsonl_metrics(&export::to_jsonl_metrics(&obs)).unwrap() >= 5);
        assert_eq!(
            validate_chrome_trace(&export::to_chrome_trace(&obs)).unwrap(),
            2
        );
    }

    #[test]
    fn adaptation_export_validates_and_rejects_bad_records() {
        use crate::adapt::{CaptureRecord, CaptureSkip, DriftEvent, ModelSwapRecord, SwapVerdict};
        let mut obs = observer();
        obs.record_capture(CaptureRecord {
            app: "pca",
            arrived_s: 10.0,
            finished_s: 90.0,
            rows: 80,
            co_runners: 2,
            skip: None,
        });
        obs.record_capture(CaptureRecord {
            app: "sort",
            arrived_s: 300.0,
            finished_s: 301.0,
            rows: 0,
            co_runners: 0,
            skip: Some(CaptureSkip::EmptyResidency),
        });
        obs.record_drift(DriftEvent {
            at_s: 95.0,
            stream: "be.rel_err",
            samples: 10,
            mean: 0.7,
            stat: 1.3,
            threshold: 1.0,
        });
        obs.record_swap(ModelSwapRecord {
            at_s: 96.0,
            target: "be",
            verdict: SwapVerdict::Rejected,
            incumbent_version: 2,
            candidate_version: 3,
            incumbent_mae: 4.0,
            candidate_mae: 4.1,
            incumbent_r2: 0.9,
            candidate_r2: 0.89,
            gate_margin: -0.025,
            reasons: vec!["held-out MAE regressed".into()],
        });
        let text = export::to_jsonl_adaptation(&obs);
        assert_eq!(validate_jsonl_adaptation(&text).unwrap(), 4);

        let bad_skip = r#"{"type":"capture","app":"x","arrived_s":0,"finished_s":1,"rows":0,"co_runners":0,"skip":"because"}"#;
        assert!(validate_jsonl_adaptation(bad_skip)
            .unwrap_err()
            .reason
            .contains("unknown skip reason"));

        let empty_success = r#"{"type":"capture","app":"x","arrived_s":0,"finished_s":1,"rows":0,"co_runners":0,"skip":null}"#;
        assert!(validate_jsonl_adaptation(empty_success)
            .unwrap_err()
            .reason
            .contains("zero rows"));

        let weak_drift = r#"{"type":"drift","at_s":1,"stream":"be.rel_err","samples":9,"mean":0.2,"stat":0.5,"threshold":1}"#;
        assert!(validate_jsonl_adaptation(weak_drift)
            .unwrap_err()
            .reason
            .contains("did not cross"));

        let silent_rejection = r#"{"type":"swap","at_s":1,"target":"be","verdict":"rejected","incumbent_version":0,"candidate_version":1,"incumbent_mae":1,"candidate_mae":2,"incumbent_r2":0.9,"candidate_r2":0.5,"gate_margin":-1,"reasons":[]}"#;
        assert!(validate_jsonl_adaptation(silent_rejection)
            .unwrap_err()
            .reason
            .contains("without reasons"));
    }

    #[test]
    fn missing_meta_line_is_rejected() {
        let text = r#"{"type":"instant","name":"x","cat":"t","at_s":1,"track":0,"args":{}}"#;
        let e = validate_jsonl_events(text).unwrap_err();
        assert!(e.to_string().contains("meta"));
    }

    #[test]
    fn backwards_span_is_rejected() {
        let text = concat!(
            "{\"type\":\"meta\",\"capacity\":8,\"dropped\":0}\n",
            "{\"type\":\"span\",\"name\":\"x\",\"cat\":\"t\",\"t0_s\":5,\"t1_s\":1,\"track\":0,\"args\":{}}"
        );
        assert!(validate_jsonl_events(text)
            .unwrap_err()
            .reason
            .contains("ends before"));
    }

    #[test]
    fn non_dense_seq_is_rejected() {
        let mut obs = observer();
        obs.record_decision(DecisionInput {
            at_s: 2.0,
            deployment_id: 1,
            app: "kmeans",
            class: WorkloadClass::BestEffort,
            window: WindowSummary::empty(),
            pred_local: None,
            pred_remote: None,
            rule: DecisionRule::Static,
            chosen: MemoryMode::Remote,
            policy: "all-remote",
        });
        let text = export::to_jsonl_decisions(&obs);
        let tampered: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(validate_jsonl_decisions(&tampered)
            .unwrap_err()
            .reason
            .contains("non-dense"));
    }

    #[test]
    fn rule_margin_contract_is_enforced() {
        let line = r#"{"seq":0,"at_s":1,"deployment_id":0,"app":"a","policy":"p","class":"BE","chosen":"local","rule":"beta_slack","rule_param":1,"window_rows":0,"window_mean":{},"pred_local":null,"pred_remote":null,"margin":null,"near_flip":false}"#;
        assert!(validate_jsonl_decisions(line)
            .unwrap_err()
            .reason
            .contains("requires a numeric margin"));
    }

    #[test]
    fn chrome_trace_rejects_missing_fields() {
        assert!(validate_chrome_trace("{}").is_err());
        let no_dur = r#"{"traceEvents":[{"name":"x","cat":"t","ph":"X","ts":0,"pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(no_dur)
            .unwrap_err()
            .reason
            .contains("dur"));
    }

    fn be(ph: &str, name: &str, ts: f64, tid: u64) -> String {
        format!(
            r#"{{"name":"{name}","cat":"lifecycle","ph":"{ph}","ts":{ts},"pid":1,"tid":{tid},"args":{{}}}}"#
        )
    }

    fn trace_of(events: &[String]) -> String {
        format!(r#"{{"traceEvents":[{}]}}"#, events.join(","))
    }

    #[test]
    fn chrome_trace_accepts_properly_nested_begin_end_pairs() {
        let good = trace_of(&[
            be("B", "outer", 0.0, 1),
            be("B", "inner", 1.0, 1),
            be("E", "inner", 2.0, 1),
            // Other tracks interleave freely.
            be("B", "other", 0.5, 2),
            be("E", "other", 3.0, 2),
            be("E", "outer", 4.0, 1),
        ]);
        assert_eq!(validate_chrome_trace(&good).unwrap(), 6);
    }

    #[test]
    fn chrome_trace_golden_failing_inputs_are_rejected() {
        // Crossed pairs: E names the outer span while the inner is open.
        let crossed = trace_of(&[
            be("B", "outer", 0.0, 1),
            be("B", "inner", 1.0, 1),
            be("E", "outer", 2.0, 1),
            be("E", "inner", 3.0, 1),
        ]);
        assert!(validate_chrome_trace(&crossed)
            .unwrap_err()
            .reason
            .contains("`inner` is open"));

        // An end with nothing open on its track.
        let orphan = trace_of(&[be("E", "ghost", 1.0, 1)]);
        assert!(validate_chrome_trace(&orphan)
            .unwrap_err()
            .reason
            .contains("no open begin"));

        // A begin never closed before the document ends.
        let unclosed = trace_of(&[be("B", "forever", 0.0, 1)]);
        assert!(validate_chrome_trace(&unclosed)
            .unwrap_err()
            .reason
            .contains("unclosed begin"));

        // A timestamp that rewinds its own track.
        let rewind = trace_of(&[
            be("B", "a", 5.0, 1),
            be("E", "a", 7.0, 1),
            be("B", "b", 6.0, 1),
            be("E", "b", 8.0, 1),
        ]);
        assert!(validate_chrome_trace(&rewind)
            .unwrap_err()
            .reason
            .contains("rewinds"));
    }

    #[test]
    fn real_span_export_validates() {
        let mut obs = observer();
        obs.spans.open(crate::spans::LifecycleSpan {
            deployment_id: 0,
            app: "gmm",
            class: "be",
            mode: "local",
            rule: "beta_slack",
            lane: "fast",
            arrived_s: 0.5,
            decided_s: 1.0,
            opened_tick: 1,
            finished_s: 0.0,
            samples: 0,
            drained: false,
        });
        obs.spans.close(0, 5.0, 5, false);
        let text = export::to_jsonl_spans(&obs);
        assert_eq!(validate_jsonl_spans(&text).unwrap(), 4);
        // And the nested Chrome rendering passes the pairing checks:
        // 1 engine span + 1 decision instant + 8 lifecycle B/E events.
        assert_eq!(
            validate_chrome_trace(&export::to_chrome_trace(&obs)).unwrap(),
            10
        );
    }

    #[test]
    fn span_validator_rejects_contract_violations() {
        let meta = r#"{"type":"meta","capacity":8,"open":0,"dropped":0}"#;

        let bad_id = format!(
            "{meta}\n{}",
            r#"{"type":"span","phase":"queue","id":3,"parent":0,"deployment_id":0,"t0_s":0,"t1_s":1}"#
        );
        assert!(validate_jsonl_spans(&bad_id)
            .unwrap_err()
            .reason
            .contains("derivation contract"));

        let bad_parent = format!(
            "{meta}\n{}",
            r#"{"type":"span","phase":"queue","id":5,"parent":0,"deployment_id":1,"t0_s":0,"t1_s":1}"#
        );
        assert!(validate_jsonl_spans(&bad_parent)
            .unwrap_err()
            .reason
            .contains("lifecycle root"));

        let bad_lane = format!(
            "{meta}\n{}",
            r#"{"type":"span","phase":"decision","id":2,"parent":0,"deployment_id":0,"t0_s":1,"t1_s":1,"rule":"static","lane":"warp"}"#
        );
        assert!(validate_jsonl_spans(&bad_lane)
            .unwrap_err()
            .reason
            .contains("unknown lane"));

        let backwards = format!(
            "{meta}\n{}",
            r#"{"type":"span","phase":"lifecycle","id":0,"parent":null,"deployment_id":0,"t0_s":5,"t1_s":1,"app":"a","class":"be","mode":"local","drained":false}"#
        );
        assert!(validate_jsonl_spans(&backwards)
            .unwrap_err()
            .reason
            .contains("ends before"));

        assert!(validate_jsonl_spans("")
            .unwrap_err()
            .reason
            .contains("empty"));
    }

    #[test]
    fn metrics_validator_accepts_sketches_and_rejects_bad_ones() {
        let mut obs = observer();
        obs.registry.sketch_observe("orchestrator.slowdown", 1.4);
        let n = validate_jsonl_metrics(&export::to_jsonl_metrics(&obs)).unwrap();
        assert!(n >= 6, "expected sketch line to count, got {n}");

        let empty_sketch = r#"{"type":"sketch","name":"s","count":0,"zero":0,"min":0,"max":0,"p50":0,"p95":0,"p99":0,"buckets":0}"#;
        assert!(validate_jsonl_metrics(empty_sketch)
            .unwrap_err()
            .reason
            .contains("no samples"));

        let inverted = r#"{"type":"sketch","name":"s","count":3,"zero":0,"min":1,"max":9,"p50":5,"p95":4,"p99":9,"buckets":2}"#;
        assert!(validate_jsonl_metrics(inverted)
            .unwrap_err()
            .reason
            .contains("not monotone"));
    }
}
