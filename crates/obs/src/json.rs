//! Minimal JSON machinery: deterministic rendering helpers and a tiny
//! recursive-descent parser used by the in-tree schema validators.
//!
//! The workspace is zero-dependency by policy, so no `serde`. Rendering
//! uses Rust's shortest-round-trip float formatting, which is fully
//! deterministic, and the parser accepts exactly the subset the
//! exporters emit (standard JSON without exponent-free corner cases it
//! would anyway handle).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as written.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Error produced when parsing malformed JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseJsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected.
    pub expected: &'static str,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for ParseJsonError {}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns [`ParseJsonError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Json, ParseJsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseJsonError {
            at: pos,
            expected: "end of input",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(
    bytes: &[u8],
    pos: &mut usize,
    b: u8,
    what: &'static str,
) -> Result<(), ParseJsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseJsonError {
            at: *pos,
            expected: what,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseJsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_num(bytes, pos),
        _ => Err(ParseJsonError {
            at: *pos,
            expected: "a JSON value",
        }),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, ParseJsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseJsonError {
            at: *pos,
            expected: "a literal (true/false/null)",
        })
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseJsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or(ParseJsonError {
            at: start,
            expected: "a finite number",
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseJsonError> {
    expect_byte(bytes, pos, b'"', "opening quote")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseJsonError {
                    at: *pos,
                    expected: "closing quote",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseJsonError {
                                at: *pos,
                                expected: "4 hex digits",
                            })?;
                        // Surrogate pairs are not emitted by our exporters;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseJsonError {
                            at: *pos,
                            expected: "a valid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(ParseJsonError {
                    at: *pos,
                    expected: "no raw control characters",
                })
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap_or("\u{fffd}"));
                *pos += ch_len;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseJsonError> {
    expect_byte(bytes, pos, b'[', "'['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(ParseJsonError {
                    at: *pos,
                    expected: "',' or ']'",
                })
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseJsonError> {
    expect_byte(bytes, pos, b'{', "'{'")?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':', "':'")?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => {
                return Err(ParseJsonError {
                    at: *pos,
                    expected: "',' or '}'",
                })
            }
        }
    }
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float deterministically for JSON: shortest round-trip
/// representation; non-finite values become `null`.
pub fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders an `f32` deterministically for JSON (see [`num_f64`]).
pub fn num_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -3.5e2 ").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "x"}, false], "c": null}"#).unwrap();
        assert!(doc.is_obj());
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "line\nquote\" back\\slash\ttab\u{1}";
        let parsed = parse(&escape(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn unicode_escape_is_decoded() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn num_rendering_round_trips() {
        for v in [0.0f64, 1.5, -2.25e-3, 123456789.0] {
            let text = num_f64(v);
            assert_eq!(parse(&text).unwrap().as_num(), Some(v));
        }
        assert_eq!(num_f64(f64::NAN), "null");
        assert_eq!(num_f32(f32::INFINITY), "null");
    }

    #[test]
    fn multibyte_utf8_passes_through() {
        let s = "métrica 📈";
        assert_eq!(parse(&escape(s)).unwrap().as_str(), Some(s));
    }
}
