//! The orchestration decision audit trail.
//!
//! Every placement decision the engine makes — Adrias' β-slack rule for
//! best-effort apps, the QoS-threshold rule for latency-critical ones,
//! warmup defaults, static baselines — is captured as one
//! [`DecisionRecord`]: what arrived, what the Watcher window looked
//! like, what the predictor forecast for each [`MemoryMode`], the
//! normalised margin of the rule, and whether that margin was inside a
//! configurable *near-flip* band. Near-flip decisions are the ones a
//! slightly different model (or a slightly different β) would reverse;
//! surfacing them is the point of the audit.

use std::fmt;

use adrias_telemetry::{Metric, MetricVec, StateWindow};
use adrias_workloads::{MemoryMode, WorkloadClass};

/// The rule that produced a decision, with its tunable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionRule {
    /// Best-effort rule: local iff `t̂_local < β · t̂_remote`.
    BetaSlack {
        /// The slack factor β.
        beta: f32,
    },
    /// Latency-critical rule: remote iff `p̂99_remote ≤ QoS`.
    QosThreshold {
        /// The QoS target on tail latency, milliseconds.
        qos_p99_ms: f32,
    },
    /// Workload unknown to the policy — placed remote-first.
    UnknownRemoteFirst,
    /// Not enough history to predict — warmup default placement.
    WarmupDefault,
    /// A static baseline policy (all-local, all-remote, random...).
    Static,
    /// Placement forced by the schedule (e.g. interference injectors).
    Forced,
}

impl DecisionRule {
    /// Stable lowercase tag used in exports.
    pub fn tag(&self) -> &'static str {
        match self {
            DecisionRule::BetaSlack { .. } => "beta_slack",
            DecisionRule::QosThreshold { .. } => "qos_threshold",
            DecisionRule::UnknownRemoteFirst => "unknown_remote_first",
            DecisionRule::WarmupDefault => "warmup_default",
            DecisionRule::Static => "static",
            DecisionRule::Forced => "forced",
        }
    }

    /// The rule's tunable parameter (β or the QoS target), if any.
    pub fn parameter(&self) -> Option<f32> {
        match self {
            DecisionRule::BetaSlack { beta } => Some(*beta),
            DecisionRule::QosThreshold { qos_p99_ms } => Some(*qos_p99_ms),
            _ => None,
        }
    }
}

impl fmt::Display for DecisionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionRule::BetaSlack { beta } => write!(f, "beta_slack(beta={beta})"),
            DecisionRule::QosThreshold { qos_p99_ms } => {
                write!(f, "qos_threshold(qos_p99_ms={qos_p99_ms})")
            }
            other => f.write_str(other.tag()),
        }
    }
}

/// Compact summary of the Watcher history the policy saw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// Number of 1 Hz rows in the window.
    pub rows: usize,
    /// Column means over the window (zero vector when empty).
    pub mean: MetricVec,
}

impl WindowSummary {
    /// Summarises a [`StateWindow`].
    pub fn of(window: &StateWindow) -> Self {
        Self {
            rows: window.len(),
            mean: window.mean_vec(),
        }
    }

    /// Summarises raw history rows as handed to the policy. Computes
    /// the same f64-accumulated column means as [`StateWindow`] without
    /// cloning the window (this runs on every orchestrator decision).
    pub fn of_rows(rows: &[MetricVec]) -> Self {
        if rows.is_empty() {
            return Self::empty();
        }
        let mut acc = [0.0f64; Metric::ALL.len()];
        for row in rows {
            for (a, &v) in acc.iter_mut().zip(row.as_array()) {
                *a += f64::from(v);
            }
        }
        let mut mean = MetricVec::zero();
        for m in Metric::ALL {
            mean.set(m, (acc[m.index()] / rows.len() as f64) as f32);
        }
        Self {
            rows: rows.len(),
            mean,
        }
    }

    /// An empty summary (no history available).
    pub fn empty() -> Self {
        Self {
            rows: 0,
            mean: MetricVec::zero(),
        }
    }

    /// `(short_name, mean)` pairs in canonical metric order.
    pub fn named_means(&self) -> impl Iterator<Item = (&'static str, f32)> + '_ {
        Metric::ALL
            .into_iter()
            .map(|m| (m.short_name(), self.mean.get(m)))
    }
}

/// Everything the engine knows at the moment a decision is taken.
///
/// This is the observer-facing input; [`AuditTrail::record`] turns it
/// into a numbered [`DecisionRecord`] with the margin analysis applied.
#[derive(Debug, Clone)]
pub struct DecisionInput {
    /// Simulation time of the arrival, seconds.
    pub at_s: f64,
    /// Deployment id assigned by the testbed.
    pub deployment_id: u64,
    /// Workload name (e.g. `in-memory-analytics`), interned via
    /// [`crate::intern::intern`] so per-decision recording stays
    /// allocation-free after the first sighting of a name.
    pub app: &'static str,
    /// Workload class.
    pub class: WorkloadClass,
    /// Summary of the Watcher history handed to the policy.
    pub window: WindowSummary,
    /// Predicted execution time (BE) or p99 (LC) under local placement,
    /// if the policy produced one.
    pub pred_local: Option<f32>,
    /// Predicted execution time (BE) or p99 (LC) under remote placement,
    /// if the policy produced one.
    pub pred_remote: Option<f32>,
    /// The rule that fired.
    pub rule: DecisionRule,
    /// The chosen placement.
    pub chosen: MemoryMode,
    /// The policy that decided (e.g. `adrias`, `all-local`), interned
    /// like [`DecisionInput::app`].
    pub policy: &'static str,
}

/// One audited decision, as exported to JSONL.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    /// Zero-based decision sequence number within the run.
    pub seq: u64,
    /// The decision input, verbatim.
    pub input: DecisionInput,
    /// Normalised signed margin of the rule, when computable:
    /// positive means the chosen side won with room to spare, values
    /// near zero mean the decision nearly flipped.
    ///
    /// - β-slack: `(β·t̂_remote − t̂_local) / (β·t̂_remote)`
    /// - QoS: `(QoS − p̂99_remote) / QoS`
    pub margin: Option<f32>,
    /// Whether `|margin|` fell within the trail's near-flip band.
    pub near_flip: bool,
}

/// Collects [`DecisionRecord`]s for one engine run.
///
/// # Examples
///
/// ```
/// use adrias_obs::audit::{AuditTrail, DecisionInput, DecisionRule, WindowSummary};
/// use adrias_workloads::{MemoryMode, WorkloadClass};
///
/// let mut trail = AuditTrail::new(0.1);
/// trail.record(DecisionInput {
///     at_s: 3.0,
///     deployment_id: 0,
///     app: "gmm".into(),
///     class: WorkloadClass::BestEffort,
///     window: WindowSummary::empty(),
///     pred_local: Some(100.0),
///     pred_remote: Some(104.0),
///     rule: DecisionRule::BetaSlack { beta: 1.0 },
///     chosen: MemoryMode::Local,
///     policy: "adrias".into(),
/// });
/// let rec = &trail.records()[0];
/// assert!(rec.near_flip); // 100 vs 104: ~3.8% margin, inside the 10% band
/// ```
#[derive(Debug, Clone)]
pub struct AuditTrail {
    near_flip_band: f32,
    records: Vec<DecisionRecord>,
}

impl AuditTrail {
    /// Creates a trail flagging decisions whose absolute normalised
    /// margin is `≤ near_flip_band` (e.g. `0.05` for 5%).
    ///
    /// # Panics
    ///
    /// Panics if `near_flip_band` is negative or not finite.
    pub fn new(near_flip_band: f32) -> Self {
        assert!(
            near_flip_band.is_finite() && near_flip_band >= 0.0,
            "near-flip band must be a finite non-negative fraction"
        );
        Self {
            near_flip_band,
            records: Vec::new(),
        }
    }

    /// The configured near-flip band.
    pub fn near_flip_band(&self) -> f32 {
        self.near_flip_band
    }

    /// Computes the margin for `input` and appends a record.
    pub fn record(&mut self, input: DecisionInput) {
        let margin = margin_of(&input);
        let near_flip = margin.is_some_and(|m| m.abs() <= self.near_flip_band);
        self.records.push(DecisionRecord {
            seq: self.records.len() as u64,
            input,
            margin,
            near_flip,
        });
    }

    /// All records in decision order.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no decisions were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records flagged as near-flip, in decision order.
    pub fn near_flips(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter().filter(|r| r.near_flip)
    }
}

/// Normalised signed margin for a decision, when the rule admits one.
fn margin_of(input: &DecisionInput) -> Option<f32> {
    match input.rule {
        DecisionRule::BetaSlack { beta } => {
            let (local, remote) = (input.pred_local?, input.pred_remote?);
            let denom = beta * remote;
            if denom == 0.0 {
                return None;
            }
            Some((denom - local) / denom)
        }
        DecisionRule::QosThreshold { qos_p99_ms } => {
            let remote = input.pred_remote?;
            if qos_p99_ms == 0.0 {
                return None;
            }
            Some((qos_p99_ms - remote) / qos_p99_ms)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_rows_matches_state_window_summary() {
        let rows: Vec<MetricVec> = (0..120)
            .map(|t| {
                let mut v = MetricVec::zero();
                for m in Metric::ALL {
                    v.set(m, 1e8 + t as f32 * 31.0 + m.index() as f32);
                }
                v
            })
            .collect();
        let direct = WindowSummary::of_rows(&rows);
        let via_window = WindowSummary::of(&StateWindow::new(rows.clone()));
        assert_eq!(direct.rows, via_window.rows);
        for m in Metric::ALL {
            assert_eq!(
                direct.mean.get(m).to_bits(),
                via_window.mean.get(m).to_bits()
            );
        }
        assert_eq!(WindowSummary::of_rows(&[]), WindowSummary::empty());
    }

    fn input(rule: DecisionRule, local: Option<f32>, remote: Option<f32>) -> DecisionInput {
        DecisionInput {
            at_s: 1.0,
            deployment_id: 7,
            app: "gmm",
            class: WorkloadClass::BestEffort,
            window: WindowSummary::empty(),
            pred_local: local,
            pred_remote: remote,
            rule,
            chosen: MemoryMode::Local,
            policy: "adrias",
        }
    }

    #[test]
    fn beta_slack_margin_is_normalised_and_signed() {
        let mut trail = AuditTrail::new(0.05);
        // local clearly wins: margin (1.2·100 − 60) / 120 = 0.5
        trail.record(input(
            DecisionRule::BetaSlack { beta: 1.2 },
            Some(60.0),
            Some(100.0),
        ));
        // local barely loses: margin (100 − 101) / 100 = −0.01 → near flip
        trail.record(input(
            DecisionRule::BetaSlack { beta: 1.0 },
            Some(101.0),
            Some(100.0),
        ));
        let recs = trail.records();
        assert!((recs[0].margin.unwrap() - 0.5).abs() < 1e-6);
        assert!(!recs[0].near_flip);
        assert!((recs[1].margin.unwrap() + 0.01).abs() < 1e-6);
        assert!(recs[1].near_flip);
        assert_eq!(trail.near_flips().count(), 1);
    }

    #[test]
    fn qos_margin_uses_remote_prediction_only() {
        let mut trail = AuditTrail::new(0.05);
        trail.record(input(
            DecisionRule::QosThreshold { qos_p99_ms: 200.0 },
            None,
            Some(150.0),
        ));
        assert!((trail.records()[0].margin.unwrap() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn rules_without_predictions_have_no_margin() {
        let mut trail = AuditTrail::new(0.05);
        for rule in [
            DecisionRule::UnknownRemoteFirst,
            DecisionRule::WarmupDefault,
            DecisionRule::Static,
            DecisionRule::Forced,
        ] {
            trail.record(input(rule, None, None));
        }
        assert!(trail
            .records()
            .iter()
            .all(|r| r.margin.is_none() && !r.near_flip));
        assert_eq!(trail.len(), 4);
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let mut trail = AuditTrail::new(0.0);
        for _ in 0..3 {
            trail.record(input(DecisionRule::Static, None, None));
        }
        let seqs: Vec<u64> = trail.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn rule_tags_and_parameters() {
        assert_eq!(DecisionRule::BetaSlack { beta: 1.1 }.tag(), "beta_slack");
        assert_eq!(DecisionRule::BetaSlack { beta: 1.1 }.parameter(), Some(1.1));
        assert_eq!(DecisionRule::Forced.parameter(), None);
        assert_eq!(
            DecisionRule::QosThreshold { qos_p99_ms: 5.0 }.to_string(),
            "qos_threshold(qos_p99_ms=5)"
        );
    }
}
