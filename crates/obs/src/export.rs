//! Exporters: JSONL for machine consumption, Chrome `trace_event` JSON
//! for timeline viewers (`chrome://tracing`, Perfetto).
//!
//! Every exporter is a pure function of the [`Observer`] state, and the
//! observer state is a pure function of the run's seeds — so same-seed
//! runs export **byte-identical** files. The only sources of
//! nondeterminism that could creep in are ruled out by construction:
//! floats render via Rust's shortest-round-trip `Display`, map iteration
//! is `BTreeMap` order, and wall-clock measurements never reach these
//! exporters.

use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::adapt::{CaptureRecord, DriftEvent, ModelSwapRecord};
use crate::audit::DecisionRecord;
use crate::json::{escape, num_f32, num_f64};
use crate::observer::Observer;
use crate::spans::{phase, LifecycleSpan};
use crate::trace::{ArgValue, TraceEvent, TraceKind};

/// Error from [`write_all`]: which file failed and why.
#[derive(Debug)]
pub struct ExportError {
    /// The file being written.
    pub path: PathBuf,
    /// The underlying I/O failure.
    pub source: std::io::Error,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Paths produced by [`write_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportPaths {
    /// Trace events, one JSON object per line (first line is metadata).
    pub events: PathBuf,
    /// Decision audit trail, one JSON object per line.
    pub decisions: PathBuf,
    /// Metrics registry dump, one JSON object per line.
    pub metrics: PathBuf,
    /// Chrome `trace_event` JSON for timeline viewers.
    pub trace: PathBuf,
    /// Online-adaptation audit log, one JSON object per line.
    pub adaptation: PathBuf,
    /// Per-deployment lifecycle span trees, one JSON object per line.
    pub spans: PathBuf,
}

fn render_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:", escape(k));
        match v {
            ArgValue::Num(n) => out.push_str(&num_f64(*n)),
            ArgValue::Str(s) => out.push_str(&escape(s)),
        }
    }
    out.push('}');
}

fn render_event_line(out: &mut String, e: &TraceEvent) {
    match e.kind {
        TraceKind::Span { t0_s, t1_s } => {
            let _ = write!(
                out,
                r#"{{"type":"span","name":{},"cat":{},"t0_s":{},"t1_s":{},"track":{},"args":"#,
                escape(e.name),
                escape(e.cat),
                num_f64(t0_s),
                num_f64(t1_s),
                e.track
            );
        }
        TraceKind::Instant { at_s } => {
            let _ = write!(
                out,
                r#"{{"type":"instant","name":{},"cat":{},"at_s":{},"track":{},"args":"#,
                escape(e.name),
                escape(e.cat),
                num_f64(at_s),
                e.track
            );
        }
    }
    render_args(out, &e.args);
    out.push_str("}\n");
}

/// Renders the event trace as JSONL. The first line is a metadata
/// object carrying the ring capacity and the overflow count, so a
/// truncated trace is always identifiable.
pub fn to_jsonl_events(obs: &Observer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"type":"meta","capacity":{},"dropped":{}}}"#,
        obs.tracer.capacity(),
        obs.tracer.dropped()
    );
    for e in obs.tracer.events() {
        render_event_line(&mut out, e);
    }
    out
}

fn render_span_lines(out: &mut String, r: &LifecycleSpan) {
    let root = r.root_id();
    let _ = writeln!(
        out,
        r#"{{"type":"span","phase":"lifecycle","id":{},"parent":null,"deployment_id":{},"t0_s":{},"t1_s":{},"app":{},"class":{},"mode":{},"drained":{}}}"#,
        root,
        r.deployment_id,
        num_f64(r.arrived_s),
        num_f64(r.finished_s),
        escape(r.app),
        escape(r.class),
        escape(r.mode),
        r.drained,
    );
    let _ = writeln!(
        out,
        r#"{{"type":"span","phase":"queue","id":{},"parent":{},"deployment_id":{},"t0_s":{},"t1_s":{}}}"#,
        r.deployment_id * 4 + phase::QUEUE,
        root,
        r.deployment_id,
        num_f64(r.arrived_s),
        num_f64(r.decided_s),
    );
    let _ = writeln!(
        out,
        r#"{{"type":"span","phase":"decision","id":{},"parent":{},"deployment_id":{},"t0_s":{},"t1_s":{},"rule":{},"lane":{}}}"#,
        r.deployment_id * 4 + phase::DECISION,
        root,
        r.deployment_id,
        num_f64(r.decided_s),
        num_f64(r.decided_s),
        escape(r.rule),
        escape(r.lane),
    );
    let _ = writeln!(
        out,
        r#"{{"type":"span","phase":"resident","id":{},"parent":{},"deployment_id":{},"t0_s":{},"t1_s":{},"samples":{}}}"#,
        r.deployment_id * 4 + phase::RESIDENT,
        root,
        r.deployment_id,
        num_f64(r.decided_s),
        num_f64(r.finished_s),
        r.samples,
    );
}

/// Renders the lifecycle span store as JSONL: a metadata line (ring
/// capacity, still-open count, drop count) followed by four lines per
/// closed deployment — the `lifecycle` root and its `queue`, `decision`
/// and `resident` children, linked by `id`/`parent`. Span ids derive
/// from the deployment id alone, so the file is byte-identical across
/// same-seed runs, worker counts and engine cores.
pub fn to_jsonl_spans(obs: &Observer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"type":"meta","capacity":{},"open":{},"dropped":{}}}"#,
        obs.spans.capacity(),
        obs.spans.open_count(),
        obs.spans.dropped()
    );
    for r in obs.spans.records() {
        render_span_lines(&mut out, r);
    }
    out
}

/// Renders the flight-recorder ring as JSONL: a metadata line (ring
/// capacity, total events ever recorded, drop count) followed by one
/// line per retained entry, oldest first.
pub fn to_jsonl_flight(obs: &Observer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"type":"meta","capacity":{},"recorded":{},"dropped":{}}}"#,
        obs.flight.capacity(),
        obs.flight.recorded(),
        obs.flight.dropped()
    );
    for e in obs.flight.entries() {
        let _ = writeln!(
            out,
            r#"{{"type":"flight","seq":{},"kind":{},"at_s":{},"deployment_id":{}}}"#,
            e.seq,
            escape(e.kind),
            num_f64(e.at_s),
            match e.deployment_id {
                Some(id) => id.to_string(),
                None => "null".to_owned(),
            },
        );
    }
    out
}

fn opt_f32(v: Option<f32>) -> String {
    match v {
        Some(x) => num_f32(x),
        None => "null".to_owned(),
    }
}

fn render_decision_line(out: &mut String, r: &DecisionRecord) {
    let i = &r.input;
    let _ = write!(
        out,
        r#"{{"seq":{},"at_s":{},"deployment_id":{},"app":{},"class":{},"policy":{},"rule":{},"rule_param":{},"window_rows":{},"window_mean":{{"#,
        r.seq,
        num_f64(i.at_s),
        i.deployment_id,
        escape(i.app),
        escape(&i.class.to_string()),
        escape(i.policy),
        escape(i.rule.tag()),
        opt_f32(i.rule.parameter()),
        i.window.rows,
    );
    for (k, (name, mean)) in i.window.named_means().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", escape(name), num_f32(mean));
    }
    let _ = write!(
        out,
        r#"}},"pred_local":{},"pred_remote":{},"chosen":{},"margin":{},"near_flip":{}}}"#,
        opt_f32(i.pred_local),
        opt_f32(i.pred_remote),
        escape(&i.chosen.to_string()),
        opt_f32(r.margin),
        r.near_flip
    );
    out.push('\n');
}

/// Renders the decision audit trail as JSONL, one record per line in
/// decision order.
pub fn to_jsonl_decisions(obs: &Observer) -> String {
    let mut out = String::new();
    for r in obs.audit.records() {
        render_decision_line(&mut out, r);
    }
    out
}

/// Renders counterexample evidence for a failed QoS oracle: every
/// audited decision that offloaded a latency-critical deployment whose
/// own predicted remote p99 violates `qos_p99_ms` (missing or
/// non-finite predictions count as violations). Each line uses the
/// same schema as [`to_jsonl_decisions`] but keeps the original `seq`
/// numbers, so every piece of evidence points back into the full audit
/// trail; a fuzzer can attach this to a shrunk failing case. Empty when
/// the oracle holds.
pub fn to_jsonl_qos_counterexamples(obs: &Observer, qos_p99_ms: f32) -> String {
    let mut out = String::new();
    for r in obs.audit.records() {
        let i = &r.input;
        let offloaded_lc =
            i.rule.tag() == "qos_threshold" && i.chosen == adrias_workloads::MemoryMode::Remote;
        let violates = match i.pred_remote {
            Some(p) => !p.is_finite() || p > qos_p99_ms,
            None => true,
        };
        if offloaded_lc && violates {
            render_decision_line(&mut out, r);
        }
    }
    out
}

fn render_capture_line(out: &mut String, r: &CaptureRecord) {
    let _ = writeln!(
        out,
        r#"{{"type":"capture","app":{},"arrived_s":{},"finished_s":{},"rows":{},"co_runners":{},"skip":{}}}"#,
        escape(r.app),
        num_f64(r.arrived_s),
        num_f64(r.finished_s),
        r.rows,
        r.co_runners,
        match r.skip {
            Some(skip) => escape(skip.tag()),
            None => "null".to_owned(),
        },
    );
}

fn render_drift_line(out: &mut String, e: &DriftEvent) {
    let _ = writeln!(
        out,
        r#"{{"type":"drift","at_s":{},"stream":{},"samples":{},"mean":{},"stat":{},"threshold":{}}}"#,
        num_f64(e.at_s),
        escape(e.stream),
        e.samples,
        num_f64(e.mean),
        num_f64(e.stat),
        num_f64(e.threshold),
    );
}

fn render_swap_line(out: &mut String, r: &ModelSwapRecord) {
    let _ = write!(
        out,
        r#"{{"type":"swap","at_s":{},"target":{},"verdict":{},"incumbent_version":{},"candidate_version":{},"incumbent_mae":{},"candidate_mae":{},"incumbent_r2":{},"candidate_r2":{},"gate_margin":{},"reasons":["#,
        num_f64(r.at_s),
        escape(r.target),
        escape(r.verdict.tag()),
        r.incumbent_version,
        r.candidate_version,
        num_f32(r.incumbent_mae),
        num_f32(r.candidate_mae),
        num_f32(r.incumbent_r2),
        num_f32(r.candidate_r2),
        num_f32(r.gate_margin),
    );
    for (i, reason) in r.reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(reason));
    }
    out.push_str("]}\n");
}

/// Renders the adaptation log as JSONL: capture records, drift events
/// and swap verdicts, each kind in insertion (sim-time) order.
pub fn to_jsonl_adaptation(obs: &Observer) -> String {
    let mut out = String::new();
    for r in obs.adapt.captures() {
        render_capture_line(&mut out, r);
    }
    for e in obs.adapt.drifts() {
        render_drift_line(&mut out, e);
    }
    for r in obs.adapt.swaps() {
        render_swap_line(&mut out, r);
    }
    out
}

/// Renders the metrics registry as JSONL: counters, then gauges, then
/// histogram summaries, then quantile-sketch summaries, each in name
/// order.
pub fn to_jsonl_metrics(obs: &Observer) -> String {
    let mut out = String::new();
    for (name, v) in obs.registry.counters() {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":{},"value":{}}}"#,
            escape(name),
            v
        );
    }
    for (name, v) in obs.registry.gauges() {
        let _ = writeln!(
            out,
            r#"{{"type":"gauge","name":{},"value":{}}}"#,
            escape(name),
            num_f64(v)
        );
    }
    for (name, h) in obs.registry.histograms() {
        let _ = writeln!(
            out,
            r#"{{"type":"histogram","name":{},"count":{},"mean":{},"std":{},"min":{},"max":{},"p50":{},"p95":{},"p99":{}}}"#,
            escape(name),
            h.count(),
            num_f32(h.mean()),
            num_f32(h.std_dev()),
            num_f64(h.min()),
            num_f64(h.max()),
            num_f64(h.quantile(0.5)),
            num_f64(h.quantile(0.95)),
            num_f64(h.quantile(0.99)),
        );
    }
    for (name, s) in obs.registry.sketches() {
        let _ = writeln!(
            out,
            r#"{{"type":"sketch","name":{},"count":{},"zero":{},"min":{},"max":{},"p50":{},"p95":{},"p99":{},"buckets":{}}}"#,
            escape(name),
            s.count(),
            s.zero_count(),
            num_f64(s.min()),
            num_f64(s.max()),
            num_f64(s.quantile(0.5)),
            num_f64(s.quantile(0.95)),
            num_f64(s.quantile(0.99)),
            s.occupied_buckets(),
        );
    }
    out
}

/// Renders the event trace as Chrome `trace_event` JSON.
///
/// Spans become complete events (`ph: "X"`), instants become
/// thread-scoped instant events (`ph: "i"`), and closed lifecycle
/// span trees become *nested* begin/end pairs (`ph: "B"`/`"E"`): the
/// deployment's lifecycle opens, its queue / decision / resident
/// children open and close inside it, and the lifecycle closes — so
/// Perfetto renders each deployment as a proper call stack. Sim
/// seconds map to trace microseconds (the format's native unit), and
/// each track becomes a `tid` under a single `pid`.
pub fn to_chrome_trace(obs: &Observer) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for e in obs.tracer.events() {
        sep(&mut out);
        match e.kind {
            TraceKind::Span { t0_s, t1_s } => {
                let _ = write!(
                    out,
                    r#"{{"name":{},"cat":{},"ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":"#,
                    escape(e.name),
                    escape(e.cat),
                    num_f64(t0_s * 1e6),
                    num_f64((t1_s - t0_s).max(0.0) * 1e6),
                    e.track
                );
            }
            TraceKind::Instant { at_s } => {
                let _ = write!(
                    out,
                    r#"{{"name":{},"cat":{},"ph":"i","s":"t","ts":{},"pid":1,"tid":{},"args":"#,
                    escape(e.name),
                    escape(e.cat),
                    num_f64(at_s * 1e6),
                    e.track
                );
            }
        }
        render_args(&mut out, &e.args);
        out.push('}');
    }
    for r in obs.spans.records() {
        // Decision lanes are deliberately left out of the args: the
        // Chrome trace is part of the byte-compared export set, which
        // must not vary between the fast and slow decision paths.
        let tid = r.deployment_id + 1;
        let begin = |out: &mut String, name: &str, ts_s: f64| {
            let _ = write!(
                out,
                r#"{{"name":{},"cat":"lifecycle","ph":"B","ts":{},"pid":1,"tid":{},"args":"#,
                escape(name),
                num_f64(ts_s * 1e6),
                tid
            );
        };
        let end = |out: &mut String, name: &str, ts_s: f64| {
            let _ = write!(
                out,
                r#"{{"name":{},"cat":"lifecycle","ph":"E","ts":{},"pid":1,"tid":{},"args":{{}}}}"#,
                escape(name),
                num_f64(ts_s * 1e6),
                tid
            );
        };
        let root = format!("lifecycle:{}", r.app);
        let end_s = r.finished_s.max(r.decided_s);
        sep(&mut out);
        begin(&mut out, &root, r.arrived_s);
        render_args(
            &mut out,
            &[
                ("app", ArgValue::Str(r.app.to_owned())),
                ("class", ArgValue::Str(r.class.to_owned())),
                ("mode", ArgValue::Str(r.mode.to_owned())),
                ("drained", ArgValue::Num(f64::from(u8::from(r.drained)))),
            ],
        );
        out.push('}');
        sep(&mut out);
        begin(&mut out, "queue", r.arrived_s);
        out.push_str("{}}");
        sep(&mut out);
        end(&mut out, "queue", r.decided_s);
        sep(&mut out);
        begin(&mut out, "decision", r.decided_s);
        render_args(&mut out, &[("rule", ArgValue::Str(r.rule.to_owned()))]);
        out.push('}');
        sep(&mut out);
        end(&mut out, "decision", r.decided_s);
        sep(&mut out);
        begin(&mut out, "resident", r.decided_s);
        render_args(&mut out, &[("samples", ArgValue::Num(r.samples as f64))]);
        out.push('}');
        sep(&mut out);
        end(&mut out, "resident", end_s);
        sep(&mut out);
        end(&mut out, &root, end_s);
    }
    let _ = write!(
        out,
        r#"],"displayTimeUnit":"ms","otherData":{{"clock":"sim","dropped_events":{}}}}}"#,
        obs.tracer.dropped()
    );
    out
}

/// Renders the wall-clock self-profile in collapsed-stack ("folded")
/// format: one `label microseconds` line per profiled engine phase,
/// stack frames separated by `;` (e.g. `engine;heap;pop 1234`), ready
/// for `flamegraph.pl` or speedscope. Host-dependent by construction —
/// this file is **excluded** from the byte-compared export set. Empty
/// unless the observer was created with `record_wall`.
pub fn render_flamegraph(obs: &Observer) -> String {
    let mut out = String::new();
    for (label, ms) in obs.tracer.wall_totals() {
        let micros = (ms * 1e3).round().max(0.0) as u64;
        let _ = writeln!(out, "{label} {micros}");
    }
    out
}

/// Writes the collapsed-stack flamegraph file as `flame.folded` in
/// `dir` (created if missing) and returns its path.
///
/// # Errors
///
/// Returns [`ExportError`] naming the file that could not be written.
pub fn write_flamegraph(obs: &Observer, dir: &Path) -> Result<PathBuf, ExportError> {
    std::fs::create_dir_all(dir).map_err(|source| ExportError {
        path: dir.to_path_buf(),
        source,
    })?;
    let path = dir.join("flame.folded");
    std::fs::write(&path, render_flamegraph(obs)).map_err(|source| ExportError {
        path: path.clone(),
        source,
    })?;
    Ok(path)
}

/// Writes a post-mortem bundle into `dir` (created if missing): the
/// flight-recorder ring (`flight.jsonl`), the QoS counterexample
/// evidence against `qos_p99_ms` (`qos_counterexamples.jsonl`), the
/// registry snapshot (`metrics.jsonl`) and the lifecycle spans
/// (`spans.jsonl`). Called by the fuzzer when an oracle fails, so the
/// failing case ships with the engine's recent history attached.
///
/// # Errors
///
/// Returns [`ExportError`] naming the file that could not be written.
pub fn write_post_mortem(obs: &Observer, dir: &Path, qos_p99_ms: f32) -> Result<(), ExportError> {
    std::fs::create_dir_all(dir).map_err(|source| ExportError {
        path: dir.to_path_buf(),
        source,
    })?;
    let write = |name: &str, contents: String| -> Result<(), ExportError> {
        let path = dir.join(name);
        std::fs::write(&path, contents).map_err(|source| ExportError { path, source })
    };
    write("flight.jsonl", to_jsonl_flight(obs))?;
    write(
        "qos_counterexamples.jsonl",
        to_jsonl_qos_counterexamples(obs, qos_p99_ms),
    )?;
    write("metrics.jsonl", to_jsonl_metrics(obs))?;
    write("spans.jsonl", to_jsonl_spans(obs))?;
    Ok(())
}

/// Writes all six exports into `dir` (created if missing):
/// `events.jsonl`, `decisions.jsonl`, `metrics.jsonl`, `trace.json`,
/// `adaptation.jsonl`, `spans.jsonl`.
///
/// # Errors
///
/// Returns [`ExportError`] naming the file that could not be written.
pub fn write_all(obs: &Observer, dir: &Path) -> Result<ExportPaths, ExportError> {
    std::fs::create_dir_all(dir).map_err(|source| ExportError {
        path: dir.to_path_buf(),
        source,
    })?;
    let write = |name: &str, contents: String| -> Result<PathBuf, ExportError> {
        let path = dir.join(name);
        std::fs::write(&path, contents).map_err(|source| ExportError {
            path: path.clone(),
            source,
        })?;
        Ok(path)
    };
    Ok(ExportPaths {
        events: write("events.jsonl", to_jsonl_events(obs))?,
        decisions: write("decisions.jsonl", to_jsonl_decisions(obs))?,
        metrics: write("metrics.jsonl", to_jsonl_metrics(obs))?,
        trace: write("trace.json", to_chrome_trace(obs))?,
        adaptation: write("adaptation.jsonl", to_jsonl_adaptation(obs))?,
        spans: write("spans.jsonl", to_jsonl_spans(obs))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{DecisionInput, DecisionRule, WindowSummary};
    use crate::json;
    use crate::observer::ObsConfig;
    use adrias_workloads::{MemoryMode, WorkloadClass};

    fn sample_observer() -> Observer {
        let mut obs = Observer::new(ObsConfig::default());
        obs.tracer.span(
            "engine.run",
            "engine",
            0.0,
            12.0,
            0,
            vec![("arrivals", 2.0.into())],
        );
        obs.tracer
            .instant("deploy", "engine", 3.0, 1, vec![("app", "gmm".into())]);
        obs.registry.counter_add("sim.steps", 12);
        obs.registry.gauge_set("engine.end_time_s", 12.0);
        obs.registry.observe("sim.slowdown", 1.5);
        obs.record_decision(DecisionInput {
            at_s: 3.0,
            deployment_id: 0,
            app: "gmm",
            class: WorkloadClass::BestEffort,
            window: WindowSummary::empty(),
            pred_local: Some(90.0),
            pred_remote: Some(100.0),
            rule: DecisionRule::BetaSlack { beta: 1.0 },
            chosen: MemoryMode::Local,
            policy: "adrias",
        });
        obs
    }

    #[test]
    fn every_jsonl_line_parses_as_object() {
        let obs = sample_observer();
        for text in [
            to_jsonl_events(&obs),
            to_jsonl_decisions(&obs),
            to_jsonl_metrics(&obs),
        ] {
            assert!(!text.is_empty());
            for line in text.lines() {
                assert!(json::parse(line).unwrap().is_obj(), "bad line: {line}");
            }
        }
    }

    #[test]
    fn events_meta_line_reports_overflow() {
        let mut obs = Observer::new(ObsConfig {
            trace_capacity: 1,
            ..ObsConfig::default()
        });
        obs.tracer.instant("a", "t", 0.0, 0, vec![]);
        obs.tracer.instant("b", "t", 1.0, 0, vec![]);
        let text = to_jsonl_events(&obs);
        let meta = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(meta.get("dropped").unwrap().as_num(), Some(1.0));
        assert_eq!(text.lines().count(), 2); // meta + one retained event
    }

    #[test]
    fn decision_line_carries_margin_and_rule() {
        let obs = sample_observer();
        let line = to_jsonl_decisions(&obs);
        let doc = json::parse(line.trim_end()).unwrap();
        assert_eq!(doc.get("rule").unwrap().as_str(), Some("beta_slack"));
        assert_eq!(doc.get("chosen").unwrap().as_str(), Some("local"));
        let margin = doc.get("margin").unwrap().as_num().unwrap();
        assert!((margin - 0.1).abs() < 1e-6);
        assert_eq!(doc.get("near_flip").unwrap().as_bool(), Some(false));
        assert!(doc.get("window_mean").unwrap().is_obj());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_and_instant() {
        let obs = sample_observer();
        let doc = json::parse(&to_chrome_trace(&obs)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3); // span + deploy instant + decision instant
        let span = &events[0];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("dur").unwrap().as_num(), Some(12e6));
        let inst = &events[1];
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(inst.get("tid").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn qos_counterexamples_select_only_violating_offloads() {
        let mut obs = Observer::new(ObsConfig::default());
        let record = |obs: &mut Observer, pred_remote: Option<f32>, chosen: MemoryMode| {
            obs.record_decision(DecisionInput {
                at_s: 1.0,
                deployment_id: 0,
                app: "redis",
                class: WorkloadClass::LatencyCritical,
                window: WindowSummary::empty(),
                pred_local: None,
                pred_remote,
                rule: DecisionRule::QosThreshold { qos_p99_ms: 5.0 },
                chosen,
                policy: "adrias",
            });
        };
        record(&mut obs, Some(4.0), MemoryMode::Remote); // compliant offload
        record(&mut obs, Some(9.0), MemoryMode::Remote); // violation
        record(&mut obs, Some(9.0), MemoryMode::Local); // kept local: fine
        record(&mut obs, None, MemoryMode::Remote); // no prediction: violation
        record(&mut obs, Some(f32::NAN), MemoryMode::Remote); // NaN: violation
        let text = to_jsonl_qos_counterexamples(&obs, 5.0);
        assert_eq!(text.lines().count(), 3);
        // Evidence keeps the original audit `seq` numbers and the full
        // decision schema.
        let docs: Vec<_> = text
            .lines()
            .map(|l| json::parse(l).expect("evidence line parses"))
            .collect();
        let seqs: Vec<f64> = docs
            .iter()
            .map(|d| d.get("seq").unwrap().as_num().unwrap())
            .collect();
        assert_eq!(seqs, vec![1.0, 3.0, 4.0]);
        for d in &docs {
            assert_eq!(d.get("rule").unwrap().as_str(), Some("qos_threshold"));
            assert_eq!(d.get("chosen").unwrap().as_str(), Some("remote"));
        }
        // A healthy trail yields no evidence at all.
        assert!(to_jsonl_qos_counterexamples(&sample_observer(), 5.0).is_empty());
    }

    #[test]
    fn exports_are_deterministic_across_identical_observers() {
        let a = sample_observer();
        let b = sample_observer();
        assert_eq!(to_jsonl_events(&a), to_jsonl_events(&b));
        assert_eq!(to_jsonl_decisions(&a), to_jsonl_decisions(&b));
        assert_eq!(to_jsonl_metrics(&a), to_jsonl_metrics(&b));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }

    #[test]
    fn write_all_creates_the_six_files() {
        let dir = std::env::temp_dir().join("adrias_obs_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let obs = sample_observer();
        let paths = write_all(&obs, &dir).unwrap();
        for p in [
            &paths.events,
            &paths.decisions,
            &paths.metrics,
            &paths.trace,
            &paths.adaptation,
            &paths.spans,
        ] {
            assert!(p.exists(), "{} missing", p.display());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn closed_span_observer() -> Observer {
        let mut obs = sample_observer();
        obs.spans.open(crate::spans::LifecycleSpan {
            deployment_id: 2,
            app: "redis",
            class: "lc",
            mode: "remote",
            rule: "qos_threshold",
            lane: "fast",
            arrived_s: 1.5,
            decided_s: 2.0,
            opened_tick: 2,
            finished_s: 0.0,
            samples: 0,
            drained: false,
        });
        obs.spans.close(2, 9.0, 9, false);
        obs
    }

    #[test]
    fn spans_jsonl_renders_a_linked_four_node_tree() {
        let obs = closed_span_observer();
        let text = to_jsonl_spans(&obs);
        let docs: Vec<_> = text
            .lines()
            .map(|l| json::parse(l).expect("span line parses"))
            .collect();
        assert_eq!(docs.len(), 5); // meta + 4 phases
        assert_eq!(docs[0].get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(docs[0].get("dropped").unwrap().as_num(), Some(0.0));
        let root_id = docs[1].get("id").unwrap().as_num().unwrap();
        assert_eq!(root_id, 8.0); // deployment 2 * 4 + LIFECYCLE
        assert_eq!(docs[1].get("parent"), Some(&json::Json::Null));
        assert_eq!(docs[1].get("phase").unwrap().as_str(), Some("lifecycle"));
        assert_eq!(docs[1].get("app").unwrap().as_str(), Some("redis"));
        for (doc, phase, id) in [
            (&docs[2], "queue", 9.0),
            (&docs[3], "decision", 10.0),
            (&docs[4], "resident", 11.0),
        ] {
            assert_eq!(doc.get("phase").unwrap().as_str(), Some(phase));
            assert_eq!(doc.get("id").unwrap().as_num(), Some(id));
            assert_eq!(doc.get("parent").unwrap().as_num(), Some(root_id));
        }
        assert_eq!(docs[3].get("lane").unwrap().as_str(), Some("fast"));
        assert_eq!(docs[4].get("samples").unwrap().as_num(), Some(7.0));
        // Queue waits from raw arrival to the admission tick.
        assert_eq!(docs[2].get("t0_s").unwrap().as_num(), Some(1.5));
        assert_eq!(docs[2].get("t1_s").unwrap().as_num(), Some(2.0));
    }

    #[test]
    fn sketch_lines_follow_histograms_in_metrics_jsonl() {
        let mut obs = sample_observer();
        obs.registry
            .sketch_observe("orchestrator.queue_wait_s", 0.5);
        obs.registry
            .sketch_observe("orchestrator.queue_wait_s", 1.5);
        let text = to_jsonl_metrics(&obs);
        let kinds: Vec<String> = text
            .lines()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("type")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_owned()
            })
            .collect();
        let first_sketch = kinds.iter().position(|k| k == "sketch").unwrap();
        assert!(kinds[..first_sketch].iter().all(|k| k != "sketch"));
        assert!(kinds[..first_sketch].iter().any(|k| k == "histogram"));
        let sketch_line = text.lines().nth(first_sketch).unwrap();
        let doc = json::parse(sketch_line).unwrap();
        assert_eq!(doc.get("count").unwrap().as_num(), Some(2.0));
        assert_eq!(doc.get("zero").unwrap().as_num(), Some(0.0));
        assert!(doc.get("p99").unwrap().as_num().unwrap() <= 1.5);
    }

    #[test]
    fn chrome_trace_nests_lifecycle_begin_end_pairs() {
        let obs = closed_span_observer();
        let doc = json::parse(&to_chrome_trace(&obs)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 tracer events + 8 lifecycle B/E events.
        assert_eq!(events.len(), 11);
        let be: Vec<_> = events
            .iter()
            .filter(|e| {
                let ph = e.get("ph").unwrap().as_str().unwrap();
                ph == "B" || ph == "E"
            })
            .collect();
        assert_eq!(be.len(), 8);
        // Proper nesting: B lifecycle, B queue, E queue, B decision,
        // E decision, B resident, E resident, E lifecycle.
        let shape: Vec<(String, String)> = be
            .iter()
            .map(|e| {
                (
                    e.get("ph").unwrap().as_str().unwrap().to_owned(),
                    e.get("name").unwrap().as_str().unwrap().to_owned(),
                )
            })
            .collect();
        assert_eq!(shape[0], ("B".into(), "lifecycle:redis".into()));
        assert_eq!(shape[1], ("B".into(), "queue".into()));
        assert_eq!(shape[2], ("E".into(), "queue".into()));
        assert_eq!(shape[7], ("E".into(), "lifecycle:redis".into()));
        // Timestamps are monotone within the pair stream.
        let ts: Vec<f64> = be
            .iter()
            .map(|e| e.get("ts").unwrap().as_num().unwrap())
            .collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "ts not monotone: {ts:?}"
        );
        // All eight share the deployment's tid and never leak the lane.
        for e in &be {
            assert_eq!(e.get("tid").unwrap().as_num(), Some(3.0));
            assert!(e.get("args").unwrap().get("lane").is_none());
        }
    }

    #[test]
    fn flamegraph_renders_folded_stacks_only_when_wall_enabled() {
        let mut obs = sample_observer();
        assert!(render_flamegraph(&obs).is_empty());
        obs.tracer = obs.tracer.clone().with_wall_clock();
        obs.tracer.add_wall_ns("engine;heap;pop", 1_500_000);
        obs.tracer.add_wall_ns("engine;decide;fast", 250_000);
        let folded = render_flamegraph(&obs);
        let lines: Vec<&str> = folded.lines().collect();
        // BTreeMap order, "<stack> <micros>" per line.
        assert_eq!(
            lines,
            vec!["engine;decide;fast 250", "engine;heap;pop 1500"]
        );
    }

    #[test]
    fn post_mortem_bundle_contains_flight_and_evidence() {
        let dir = std::env::temp_dir().join("adrias_obs_postmortem_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut obs = closed_span_observer();
        obs.flight.record("arrival", 1.5, Some(2));
        obs.flight.record("finish", 9.0, Some(2));
        obs.record_decision(DecisionInput {
            at_s: 2.0,
            deployment_id: 2,
            app: "redis",
            class: WorkloadClass::LatencyCritical,
            window: WindowSummary::empty(),
            pred_local: Some(4.0),
            pred_remote: Some(9.0),
            rule: DecisionRule::QosThreshold { qos_p99_ms: 5.0 },
            chosen: MemoryMode::Remote,
            policy: "adrias",
        });
        write_post_mortem(&obs, &dir, 5.0).unwrap();
        let flight = std::fs::read_to_string(dir.join("flight.jsonl")).unwrap();
        assert!(flight.lines().count() >= 3, "meta + 2 entries");
        let evidence = std::fs::read_to_string(dir.join("qos_counterexamples.jsonl")).unwrap();
        assert_eq!(evidence.lines().count(), 1, "the injected violation");
        assert!(dir.join("metrics.jsonl").exists());
        assert!(dir.join("spans.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptation_lines_parse_and_carry_their_kind() {
        use crate::adapt::{CaptureRecord, CaptureSkip, DriftEvent, ModelSwapRecord, SwapVerdict};
        let mut obs = sample_observer();
        obs.record_capture(CaptureRecord {
            app: "pca",
            arrived_s: 10.0,
            finished_s: 95.5,
            rows: 85,
            co_runners: 3,
            skip: None,
        });
        obs.record_capture(CaptureRecord {
            app: "sort",
            arrived_s: 700.0,
            finished_s: 701.0,
            rows: 0,
            co_runners: 0,
            skip: Some(CaptureSkip::EmptyResidency),
        });
        obs.record_drift(DriftEvent {
            at_s: 120.0,
            stream: "be.rel_err",
            samples: 11,
            mean: 0.8,
            stat: 1.7,
            threshold: 1.0,
        });
        obs.record_swap(ModelSwapRecord {
            at_s: 130.0,
            target: "be",
            verdict: SwapVerdict::Swapped,
            incumbent_version: 0,
            candidate_version: 1,
            incumbent_mae: 9.0,
            candidate_mae: 4.5,
            incumbent_r2: 0.5,
            candidate_r2: 0.8,
            gate_margin: 0.5,
            reasons: vec![],
        });
        let text = to_jsonl_adaptation(&obs);
        assert_eq!(text.lines().count(), 4);
        let docs: Vec<_> = text
            .lines()
            .map(|l| json::parse(l).expect("parses"))
            .collect();
        assert_eq!(docs[0].get("type").unwrap().as_str(), Some("capture"));
        assert_eq!(docs[0].get("skip"), Some(&json::Json::Null));
        assert_eq!(
            docs[1].get("skip").unwrap().as_str(),
            Some("empty_residency")
        );
        assert_eq!(docs[2].get("stream").unwrap().as_str(), Some("be.rel_err"));
        assert_eq!(docs[3].get("verdict").unwrap().as_str(), Some("swapped"));
        assert_eq!(docs[3].get("gate_margin").unwrap().as_num(), Some(0.5));
        // The recording helpers also bumped counters + trace events.
        assert_eq!(obs.registry.counter("adapt.captures"), 1);
        assert_eq!(
            obs.registry.counter("adapt.capture_skip.empty_residency"),
            1
        );
        assert_eq!(obs.registry.counter("adapt.drift_events"), 1);
        assert_eq!(obs.registry.counter("adapt.swaps.swapped"), 1);
    }
}
