//! Exporters: JSONL for machine consumption, Chrome `trace_event` JSON
//! for timeline viewers (`chrome://tracing`, Perfetto).
//!
//! Every exporter is a pure function of the [`Observer`] state, and the
//! observer state is a pure function of the run's seeds — so same-seed
//! runs export **byte-identical** files. The only sources of
//! nondeterminism that could creep in are ruled out by construction:
//! floats render via Rust's shortest-round-trip `Display`, map iteration
//! is `BTreeMap` order, and wall-clock measurements never reach these
//! exporters.

use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::adapt::{CaptureRecord, DriftEvent, ModelSwapRecord};
use crate::audit::DecisionRecord;
use crate::json::{escape, num_f32, num_f64};
use crate::observer::Observer;
use crate::trace::{ArgValue, TraceEvent, TraceKind};

/// Error from [`write_all`]: which file failed and why.
#[derive(Debug)]
pub struct ExportError {
    /// The file being written.
    pub path: PathBuf,
    /// The underlying I/O failure.
    pub source: std::io::Error,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Paths produced by [`write_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportPaths {
    /// Trace events, one JSON object per line (first line is metadata).
    pub events: PathBuf,
    /// Decision audit trail, one JSON object per line.
    pub decisions: PathBuf,
    /// Metrics registry dump, one JSON object per line.
    pub metrics: PathBuf,
    /// Chrome `trace_event` JSON for timeline viewers.
    pub trace: PathBuf,
    /// Online-adaptation audit log, one JSON object per line.
    pub adaptation: PathBuf,
}

fn render_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:", escape(k));
        match v {
            ArgValue::Num(n) => out.push_str(&num_f64(*n)),
            ArgValue::Str(s) => out.push_str(&escape(s)),
        }
    }
    out.push('}');
}

fn render_event_line(out: &mut String, e: &TraceEvent) {
    match e.kind {
        TraceKind::Span { t0_s, t1_s } => {
            let _ = write!(
                out,
                r#"{{"type":"span","name":{},"cat":{},"t0_s":{},"t1_s":{},"track":{},"args":"#,
                escape(e.name),
                escape(e.cat),
                num_f64(t0_s),
                num_f64(t1_s),
                e.track
            );
        }
        TraceKind::Instant { at_s } => {
            let _ = write!(
                out,
                r#"{{"type":"instant","name":{},"cat":{},"at_s":{},"track":{},"args":"#,
                escape(e.name),
                escape(e.cat),
                num_f64(at_s),
                e.track
            );
        }
    }
    render_args(out, &e.args);
    out.push_str("}\n");
}

/// Renders the event trace as JSONL. The first line is a metadata
/// object carrying the ring capacity and the overflow count, so a
/// truncated trace is always identifiable.
pub fn to_jsonl_events(obs: &Observer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"type":"meta","capacity":{},"dropped":{}}}"#,
        obs.tracer.capacity(),
        obs.tracer.dropped()
    );
    for e in obs.tracer.events() {
        render_event_line(&mut out, e);
    }
    out
}

fn opt_f32(v: Option<f32>) -> String {
    match v {
        Some(x) => num_f32(x),
        None => "null".to_owned(),
    }
}

fn render_decision_line(out: &mut String, r: &DecisionRecord) {
    let i = &r.input;
    let _ = write!(
        out,
        r#"{{"seq":{},"at_s":{},"deployment_id":{},"app":{},"class":{},"policy":{},"rule":{},"rule_param":{},"window_rows":{},"window_mean":{{"#,
        r.seq,
        num_f64(i.at_s),
        i.deployment_id,
        escape(i.app),
        escape(&i.class.to_string()),
        escape(i.policy),
        escape(i.rule.tag()),
        opt_f32(i.rule.parameter()),
        i.window.rows,
    );
    for (k, (name, mean)) in i.window.named_means().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", escape(name), num_f32(mean));
    }
    let _ = write!(
        out,
        r#"}},"pred_local":{},"pred_remote":{},"chosen":{},"margin":{},"near_flip":{}}}"#,
        opt_f32(i.pred_local),
        opt_f32(i.pred_remote),
        escape(&i.chosen.to_string()),
        opt_f32(r.margin),
        r.near_flip
    );
    out.push('\n');
}

/// Renders the decision audit trail as JSONL, one record per line in
/// decision order.
pub fn to_jsonl_decisions(obs: &Observer) -> String {
    let mut out = String::new();
    for r in obs.audit.records() {
        render_decision_line(&mut out, r);
    }
    out
}

/// Renders counterexample evidence for a failed QoS oracle: every
/// audited decision that offloaded a latency-critical deployment whose
/// own predicted remote p99 violates `qos_p99_ms` (missing or
/// non-finite predictions count as violations). Each line uses the
/// same schema as [`to_jsonl_decisions`] but keeps the original `seq`
/// numbers, so every piece of evidence points back into the full audit
/// trail; a fuzzer can attach this to a shrunk failing case. Empty when
/// the oracle holds.
pub fn to_jsonl_qos_counterexamples(obs: &Observer, qos_p99_ms: f32) -> String {
    let mut out = String::new();
    for r in obs.audit.records() {
        let i = &r.input;
        let offloaded_lc =
            i.rule.tag() == "qos_threshold" && i.chosen == adrias_workloads::MemoryMode::Remote;
        let violates = match i.pred_remote {
            Some(p) => !p.is_finite() || p > qos_p99_ms,
            None => true,
        };
        if offloaded_lc && violates {
            render_decision_line(&mut out, r);
        }
    }
    out
}

fn render_capture_line(out: &mut String, r: &CaptureRecord) {
    let _ = writeln!(
        out,
        r#"{{"type":"capture","app":{},"arrived_s":{},"finished_s":{},"rows":{},"co_runners":{},"skip":{}}}"#,
        escape(r.app),
        num_f64(r.arrived_s),
        num_f64(r.finished_s),
        r.rows,
        r.co_runners,
        match r.skip {
            Some(skip) => escape(skip.tag()),
            None => "null".to_owned(),
        },
    );
}

fn render_drift_line(out: &mut String, e: &DriftEvent) {
    let _ = writeln!(
        out,
        r#"{{"type":"drift","at_s":{},"stream":{},"samples":{},"mean":{},"stat":{},"threshold":{}}}"#,
        num_f64(e.at_s),
        escape(e.stream),
        e.samples,
        num_f64(e.mean),
        num_f64(e.stat),
        num_f64(e.threshold),
    );
}

fn render_swap_line(out: &mut String, r: &ModelSwapRecord) {
    let _ = write!(
        out,
        r#"{{"type":"swap","at_s":{},"target":{},"verdict":{},"incumbent_version":{},"candidate_version":{},"incumbent_mae":{},"candidate_mae":{},"incumbent_r2":{},"candidate_r2":{},"gate_margin":{},"reasons":["#,
        num_f64(r.at_s),
        escape(r.target),
        escape(r.verdict.tag()),
        r.incumbent_version,
        r.candidate_version,
        num_f32(r.incumbent_mae),
        num_f32(r.candidate_mae),
        num_f32(r.incumbent_r2),
        num_f32(r.candidate_r2),
        num_f32(r.gate_margin),
    );
    for (i, reason) in r.reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(reason));
    }
    out.push_str("]}\n");
}

/// Renders the adaptation log as JSONL: capture records, drift events
/// and swap verdicts, each kind in insertion (sim-time) order.
pub fn to_jsonl_adaptation(obs: &Observer) -> String {
    let mut out = String::new();
    for r in obs.adapt.captures() {
        render_capture_line(&mut out, r);
    }
    for e in obs.adapt.drifts() {
        render_drift_line(&mut out, e);
    }
    for r in obs.adapt.swaps() {
        render_swap_line(&mut out, r);
    }
    out
}

/// Renders the metrics registry as JSONL: counters, then gauges, then
/// histogram summaries, each in name order.
pub fn to_jsonl_metrics(obs: &Observer) -> String {
    let mut out = String::new();
    for (name, v) in obs.registry.counters() {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":{},"value":{}}}"#,
            escape(name),
            v
        );
    }
    for (name, v) in obs.registry.gauges() {
        let _ = writeln!(
            out,
            r#"{{"type":"gauge","name":{},"value":{}}}"#,
            escape(name),
            num_f64(v)
        );
    }
    for (name, h) in obs.registry.histograms() {
        let _ = writeln!(
            out,
            r#"{{"type":"histogram","name":{},"count":{},"mean":{},"std":{},"min":{},"max":{},"p50":{},"p95":{},"p99":{}}}"#,
            escape(name),
            h.count(),
            num_f32(h.mean()),
            num_f32(h.std_dev()),
            num_f64(h.min()),
            num_f64(h.max()),
            num_f64(h.quantile(0.5)),
            num_f64(h.quantile(0.95)),
            num_f64(h.quantile(0.99)),
        );
    }
    out
}

/// Renders the event trace as Chrome `trace_event` JSON.
///
/// Spans become complete events (`ph: "X"`), instants become
/// thread-scoped instant events (`ph: "i"`). Sim seconds map to trace
/// microseconds (the format's native unit), and each track becomes a
/// `tid` under a single `pid`, so deployments appear as parallel rows
/// in Perfetto.
pub fn to_chrome_trace(obs: &Observer) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for e in obs.tracer.events() {
        if !first {
            out.push(',');
        }
        first = false;
        match e.kind {
            TraceKind::Span { t0_s, t1_s } => {
                let _ = write!(
                    out,
                    r#"{{"name":{},"cat":{},"ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":"#,
                    escape(e.name),
                    escape(e.cat),
                    num_f64(t0_s * 1e6),
                    num_f64((t1_s - t0_s).max(0.0) * 1e6),
                    e.track
                );
            }
            TraceKind::Instant { at_s } => {
                let _ = write!(
                    out,
                    r#"{{"name":{},"cat":{},"ph":"i","s":"t","ts":{},"pid":1,"tid":{},"args":"#,
                    escape(e.name),
                    escape(e.cat),
                    num_f64(at_s * 1e6),
                    e.track
                );
            }
        }
        render_args(&mut out, &e.args);
        out.push('}');
    }
    let _ = write!(
        out,
        r#"],"displayTimeUnit":"ms","otherData":{{"clock":"sim","dropped_events":{}}}}}"#,
        obs.tracer.dropped()
    );
    out
}

/// Writes all five exports into `dir` (created if missing):
/// `events.jsonl`, `decisions.jsonl`, `metrics.jsonl`, `trace.json`,
/// `adaptation.jsonl`.
///
/// # Errors
///
/// Returns [`ExportError`] naming the file that could not be written.
pub fn write_all(obs: &Observer, dir: &Path) -> Result<ExportPaths, ExportError> {
    std::fs::create_dir_all(dir).map_err(|source| ExportError {
        path: dir.to_path_buf(),
        source,
    })?;
    let write = |name: &str, contents: String| -> Result<PathBuf, ExportError> {
        let path = dir.join(name);
        std::fs::write(&path, contents).map_err(|source| ExportError {
            path: path.clone(),
            source,
        })?;
        Ok(path)
    };
    Ok(ExportPaths {
        events: write("events.jsonl", to_jsonl_events(obs))?,
        decisions: write("decisions.jsonl", to_jsonl_decisions(obs))?,
        metrics: write("metrics.jsonl", to_jsonl_metrics(obs))?,
        trace: write("trace.json", to_chrome_trace(obs))?,
        adaptation: write("adaptation.jsonl", to_jsonl_adaptation(obs))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{DecisionInput, DecisionRule, WindowSummary};
    use crate::json;
    use crate::observer::ObsConfig;
    use adrias_workloads::{MemoryMode, WorkloadClass};

    fn sample_observer() -> Observer {
        let mut obs = Observer::new(ObsConfig::default());
        obs.tracer.span(
            "engine.run",
            "engine",
            0.0,
            12.0,
            0,
            vec![("arrivals", 2.0.into())],
        );
        obs.tracer
            .instant("deploy", "engine", 3.0, 1, vec![("app", "gmm".into())]);
        obs.registry.counter_add("sim.steps", 12);
        obs.registry.gauge_set("engine.end_time_s", 12.0);
        obs.registry.observe("sim.slowdown", 1.5);
        obs.record_decision(DecisionInput {
            at_s: 3.0,
            deployment_id: 0,
            app: "gmm",
            class: WorkloadClass::BestEffort,
            window: WindowSummary::empty(),
            pred_local: Some(90.0),
            pred_remote: Some(100.0),
            rule: DecisionRule::BetaSlack { beta: 1.0 },
            chosen: MemoryMode::Local,
            policy: "adrias",
        });
        obs
    }

    #[test]
    fn every_jsonl_line_parses_as_object() {
        let obs = sample_observer();
        for text in [
            to_jsonl_events(&obs),
            to_jsonl_decisions(&obs),
            to_jsonl_metrics(&obs),
        ] {
            assert!(!text.is_empty());
            for line in text.lines() {
                assert!(json::parse(line).unwrap().is_obj(), "bad line: {line}");
            }
        }
    }

    #[test]
    fn events_meta_line_reports_overflow() {
        let mut obs = Observer::new(ObsConfig {
            trace_capacity: 1,
            ..ObsConfig::default()
        });
        obs.tracer.instant("a", "t", 0.0, 0, vec![]);
        obs.tracer.instant("b", "t", 1.0, 0, vec![]);
        let text = to_jsonl_events(&obs);
        let meta = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(meta.get("dropped").unwrap().as_num(), Some(1.0));
        assert_eq!(text.lines().count(), 2); // meta + one retained event
    }

    #[test]
    fn decision_line_carries_margin_and_rule() {
        let obs = sample_observer();
        let line = to_jsonl_decisions(&obs);
        let doc = json::parse(line.trim_end()).unwrap();
        assert_eq!(doc.get("rule").unwrap().as_str(), Some("beta_slack"));
        assert_eq!(doc.get("chosen").unwrap().as_str(), Some("local"));
        let margin = doc.get("margin").unwrap().as_num().unwrap();
        assert!((margin - 0.1).abs() < 1e-6);
        assert_eq!(doc.get("near_flip").unwrap().as_bool(), Some(false));
        assert!(doc.get("window_mean").unwrap().is_obj());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_and_instant() {
        let obs = sample_observer();
        let doc = json::parse(&to_chrome_trace(&obs)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3); // span + deploy instant + decision instant
        let span = &events[0];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("dur").unwrap().as_num(), Some(12e6));
        let inst = &events[1];
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(inst.get("tid").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn qos_counterexamples_select_only_violating_offloads() {
        let mut obs = Observer::new(ObsConfig::default());
        let record = |obs: &mut Observer, pred_remote: Option<f32>, chosen: MemoryMode| {
            obs.record_decision(DecisionInput {
                at_s: 1.0,
                deployment_id: 0,
                app: "redis",
                class: WorkloadClass::LatencyCritical,
                window: WindowSummary::empty(),
                pred_local: None,
                pred_remote,
                rule: DecisionRule::QosThreshold { qos_p99_ms: 5.0 },
                chosen,
                policy: "adrias",
            });
        };
        record(&mut obs, Some(4.0), MemoryMode::Remote); // compliant offload
        record(&mut obs, Some(9.0), MemoryMode::Remote); // violation
        record(&mut obs, Some(9.0), MemoryMode::Local); // kept local: fine
        record(&mut obs, None, MemoryMode::Remote); // no prediction: violation
        record(&mut obs, Some(f32::NAN), MemoryMode::Remote); // NaN: violation
        let text = to_jsonl_qos_counterexamples(&obs, 5.0);
        assert_eq!(text.lines().count(), 3);
        // Evidence keeps the original audit `seq` numbers and the full
        // decision schema.
        let docs: Vec<_> = text
            .lines()
            .map(|l| json::parse(l).expect("evidence line parses"))
            .collect();
        let seqs: Vec<f64> = docs
            .iter()
            .map(|d| d.get("seq").unwrap().as_num().unwrap())
            .collect();
        assert_eq!(seqs, vec![1.0, 3.0, 4.0]);
        for d in &docs {
            assert_eq!(d.get("rule").unwrap().as_str(), Some("qos_threshold"));
            assert_eq!(d.get("chosen").unwrap().as_str(), Some("remote"));
        }
        // A healthy trail yields no evidence at all.
        assert!(to_jsonl_qos_counterexamples(&sample_observer(), 5.0).is_empty());
    }

    #[test]
    fn exports_are_deterministic_across_identical_observers() {
        let a = sample_observer();
        let b = sample_observer();
        assert_eq!(to_jsonl_events(&a), to_jsonl_events(&b));
        assert_eq!(to_jsonl_decisions(&a), to_jsonl_decisions(&b));
        assert_eq!(to_jsonl_metrics(&a), to_jsonl_metrics(&b));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }

    #[test]
    fn write_all_creates_the_five_files() {
        let dir = std::env::temp_dir().join("adrias_obs_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let obs = sample_observer();
        let paths = write_all(&obs, &dir).unwrap();
        for p in [
            &paths.events,
            &paths.decisions,
            &paths.metrics,
            &paths.trace,
            &paths.adaptation,
        ] {
            assert!(p.exists(), "{} missing", p.display());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptation_lines_parse_and_carry_their_kind() {
        use crate::adapt::{CaptureRecord, CaptureSkip, DriftEvent, ModelSwapRecord, SwapVerdict};
        let mut obs = sample_observer();
        obs.record_capture(CaptureRecord {
            app: "pca",
            arrived_s: 10.0,
            finished_s: 95.5,
            rows: 85,
            co_runners: 3,
            skip: None,
        });
        obs.record_capture(CaptureRecord {
            app: "sort",
            arrived_s: 700.0,
            finished_s: 701.0,
            rows: 0,
            co_runners: 0,
            skip: Some(CaptureSkip::EmptyResidency),
        });
        obs.record_drift(DriftEvent {
            at_s: 120.0,
            stream: "be.rel_err",
            samples: 11,
            mean: 0.8,
            stat: 1.7,
            threshold: 1.0,
        });
        obs.record_swap(ModelSwapRecord {
            at_s: 130.0,
            target: "be",
            verdict: SwapVerdict::Swapped,
            incumbent_version: 0,
            candidate_version: 1,
            incumbent_mae: 9.0,
            candidate_mae: 4.5,
            incumbent_r2: 0.5,
            candidate_r2: 0.8,
            gate_margin: 0.5,
            reasons: vec![],
        });
        let text = to_jsonl_adaptation(&obs);
        assert_eq!(text.lines().count(), 4);
        let docs: Vec<_> = text
            .lines()
            .map(|l| json::parse(l).expect("parses"))
            .collect();
        assert_eq!(docs[0].get("type").unwrap().as_str(), Some("capture"));
        assert_eq!(docs[0].get("skip"), Some(&json::Json::Null));
        assert_eq!(
            docs[1].get("skip").unwrap().as_str(),
            Some("empty_residency")
        );
        assert_eq!(docs[2].get("stream").unwrap().as_str(), Some("be.rel_err"));
        assert_eq!(docs[3].get("verdict").unwrap().as_str(), Some("swapped"));
        assert_eq!(docs[3].get("gate_margin").unwrap().as_num(), Some(0.5));
        // The recording helpers also bumped counters + trace events.
        assert_eq!(obs.registry.counter("adapt.captures"), 1);
        assert_eq!(
            obs.registry.counter("adapt.capture_skip.empty_residency"),
            1
        );
        assert_eq!(obs.registry.counter("adapt.drift_events"), 1);
        assert_eq!(obs.registry.counter("adapt.swaps.swapped"), 1);
    }
}
