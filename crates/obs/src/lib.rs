//! Observability subsystem for the Adrias reproduction.
//!
//! Adrias' claim is that placement decisions follow from observed
//! low-level system state; this crate makes that chain inspectable.
//! Three pillars, all zero-dependency and deterministic:
//!
//! * [`trace`] — structured spans and instants stamped with the **sim
//!   clock** (never the wall clock), held in a bounded ring with an
//!   explicit overflow counter. Two same-seed runs produce
//!   byte-identical traces at any worker count.
//! * [`registry`] — named counters, gauges, and fixed-bucket
//!   histograms registered by the sim (testbed steps, contention
//!   slowdowns, interconnect traffic), the orchestrator (decisions per
//!   policy, drain time) and the predictor/nn layers (epoch loss,
//!   minibatch throughput, gradient-chunk counts).
//! * [`audit`] — one [`DecisionRecord`] per orchestration decision:
//!   the Watcher window the policy saw, the predicted local/remote
//!   performance, the β-slack or QoS margin, and whether the decision
//!   was within a configurable *near-flip* band.
//!
//! [`export`] renders all three as JSONL and as Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` or Perfetto), [`validate`]
//! re-checks exported files against the schema (used by CI), and
//! [`report`] renders a human-readable run summary.
//!
//! # Examples
//!
//! ```
//! use adrias_obs::{export, Observer, ObsConfig};
//!
//! let mut obs = Observer::new(ObsConfig::default());
//! obs.tracer.span("engine.run", "engine", 0.0, 120.0, 0, vec![]);
//! obs.registry.counter_add("sim.steps", 120);
//! let jsonl = export::to_jsonl_events(&obs);
//! assert!(jsonl.starts_with("{\"type\":\"meta\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod audit;
pub mod burn;
pub mod export;
pub mod flight;
pub mod intern;
pub mod json;
pub mod observer;
pub mod registry;
pub mod report;
pub mod sketch;
pub mod spans;
pub mod trace;
pub mod validate;

pub use adapt::{
    AdaptationLog, CaptureRecord, CaptureSkip, DriftConfig, DriftEvent, ModelSwapRecord,
    PageHinkley, PageHinkleyState, SwapVerdict,
};
pub use audit::{AuditTrail, DecisionInput, DecisionRecord, DecisionRule, WindowSummary};
pub use burn::{BurnConfig, BurnEvent, SloBurnMonitor};
pub use export::{
    to_jsonl_qos_counterexamples, write_all, write_flamegraph, write_post_mortem, ExportError,
    ExportPaths,
};
pub use flight::{FlightEntry, FlightRecorder};
pub use intern::intern;
pub use observer::{ObsConfig, Observer};
pub use registry::{Histogram, Registry};
pub use report::render_report;
pub use sketch::Sketch;
pub use spans::{LifecycleSpan, SpanStore};
pub use trace::{ArgValue, TraceEvent, TraceKind, Tracer};
pub use validate::{
    validate_chrome_trace, validate_jsonl_adaptation, validate_jsonl_decisions,
    validate_jsonl_events, validate_jsonl_metrics, validate_jsonl_spans, ValidateError,
};
