//! A tiny global string arena for hot-path names.
//!
//! Trace-event names and audit-trail app/policy names come from a small
//! closed set (workload names, policy names, a handful of event labels)
//! but used to be stored as owned `String`s — one heap allocation per
//! [`crate::trace::TraceEvent`] and two per
//! [`crate::audit::DecisionRecord`], on the per-decision path the
//! orchestrator tries to keep allocation-free. [`intern`] maps each
//! distinct name to one leaked `&'static str`: the first sighting pays
//! one allocation, every later sighting is a read-only set lookup.
//!
//! The arena leaks by design. Entries are never removed, which is the
//! right trade for a process-lifetime name set measured in dozens; it
//! would be the wrong tool for unbounded user input.

use std::collections::BTreeSet;
use std::sync::Mutex;

static ARENA: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Returns the canonical `&'static str` for `s`, interning it on first
/// sight. Two calls with equal strings return pointers into the same
/// leaked allocation.
///
/// # Examples
///
/// ```
/// use adrias_obs::intern::intern;
///
/// let a = intern("gmm");
/// let b = intern(&String::from("gmm"));
/// assert!(std::ptr::eq(a, b));
/// ```
pub fn intern(s: &str) -> &'static str {
    let mut arena = ARENA.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&hit) = arena.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    arena.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("adrias-test-name");
        let b = intern("adrias-test-name");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "adrias-test-name");
        let other = intern("adrias-other-name");
        assert_ne!(a, other);
    }

    #[test]
    fn interning_survives_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| intern("adrias-threaded-name").as_ptr() as usize))
            .collect();
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
    }
}
