//! Human-readable run report rendered from an [`Observer`].
//!
//! This is the one output allowed to show wall-clock numbers (clearly
//! marked host-dependent); everything else it prints is derived from
//! the same deterministic state as the JSONL exports.

use std::fmt::Write as _;

use crate::observer::Observer;

/// Histogram-name prefix under which the sim observer records per-app
/// contention slowdowns; the report ranks these as "top slowdown
/// sources".
pub const SLOWDOWN_PREFIX: &str = "sim.slowdown.app.";

/// Renders the report.
pub fn render_report(obs: &Observer) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Adrias observability report ===");
    let _ = writeln!(
        out,
        "trace: {} events retained ({} dropped, capacity {})",
        obs.tracer.len(),
        obs.tracer.dropped(),
        obs.tracer.capacity()
    );
    if obs.tracer.dropped() > 0 {
        let _ = writeln!(
            out,
            "  WARNING: trace ring overflowed, {} oldest events lost — raise \
             ObsConfig::trace_capacity for a complete trace",
            obs.tracer.dropped()
        );
    }
    if obs.spans.enabled() {
        let _ = writeln!(
            out,
            "spans: {} lifecycle records closed ({} open, {} dropped, capacity {})",
            obs.spans.len(),
            obs.spans.open_count(),
            obs.spans.dropped(),
            obs.spans.capacity()
        );
        if obs.spans.dropped() > 0 {
            let _ = writeln!(
                out,
                "  WARNING: span ring overflowed, {} oldest lifecycles lost",
                obs.spans.dropped()
            );
        }
    }
    let _ = writeln!(
        out,
        "audit: {} decisions, near-flip band {:.1}%",
        obs.audit.len(),
        f64::from(obs.audit.near_flip_band()) * 100.0
    );

    render_decision_distribution(&mut out, obs);
    render_near_flips(&mut out, obs);
    render_burn(&mut out, obs);
    render_adaptation(&mut out, obs);
    render_slowdown_sources(&mut out, obs);
    render_metrics(&mut out, obs);
    render_wall_clock(&mut out, obs);
    out
}

fn render_burn(out: &mut String, obs: &Observer) {
    if obs.burn.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n-- SLO burn alerts: {} --", obs.burn.len());
    for e in obs.burn.iter().take(10) {
        let _ = writeln!(
            out,
            "  t={:>7.1}s window {:>5.0}s rate {:.0}% ({}/{} violations)",
            e.at_s,
            e.window_s,
            e.rate * 100.0,
            e.violations,
            e.total
        );
    }
    if obs.burn.len() > 10 {
        let _ = writeln!(out, "  ... and {} more", obs.burn.len() - 10);
    }
}

fn render_adaptation(out: &mut String, obs: &Observer) {
    let log = &obs.adapt;
    if log.is_empty() {
        return;
    }
    let captured = log.captures().iter().filter(|c| c.skip.is_none()).count();
    let skipped = log.captures().len() - captured;
    let _ = writeln!(out, "\n-- online adaptation --");
    let _ = writeln!(
        out,
        "  captures: {captured} stored, {skipped} skipped (of {} attempts)",
        log.captures().len()
    );
    for skip in crate::adapt::CaptureSkip::ALL {
        let n = log
            .captures()
            .iter()
            .filter(|c| c.skip == Some(skip))
            .count();
        if n > 0 {
            let _ = writeln!(out, "    skip {:<20} {n:>5}", skip.tag());
        }
    }
    let _ = writeln!(out, "  drift events: {}", log.drifts().len());
    for e in log.drifts().iter().take(10) {
        let _ = writeln!(
            out,
            "    t={:>7.1}s {:<18} stat {:.3} > λ={:.3} (mean {:.3} over {} samples)",
            e.at_s, e.stream, e.stat, e.threshold, e.mean, e.samples
        );
    }
    let _ = writeln!(out, "  model swaps: {}", log.swaps().len());
    for s in log.swaps().iter().take(10) {
        let _ = writeln!(
            out,
            "    t={:>7.1}s {:<3} v{} -> v{} {:<8} mae {:.4} -> {:.4} (margin {:+.3})",
            s.at_s,
            s.target,
            s.incumbent_version,
            s.candidate_version,
            s.verdict.tag(),
            s.incumbent_mae,
            s.candidate_mae,
            s.gate_margin
        );
        for reason in &s.reasons {
            let _ = writeln!(out, "      reason: {reason}");
        }
    }
}

fn render_decision_distribution(out: &mut String, obs: &Observer) {
    if obs.audit.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n-- decision distribution --");
    let total = obs.registry.counter("orchestrator.decisions").max(1);
    for (name, v) in obs.registry.counters() {
        if let Some(suffix) = name.strip_prefix("orchestrator.decisions.") {
            let _ = writeln!(
                out,
                "  {:<8} {:>6}  ({:.1}%)",
                suffix,
                v,
                v as f64 / total as f64 * 100.0
            );
        }
    }
    let _ = writeln!(out, "  by rule:");
    for (name, v) in obs.registry.counters() {
        if let Some(rule) = name.strip_prefix("orchestrator.rule.") {
            let _ = writeln!(out, "    {rule:<22} {v:>6}");
        }
    }
}

fn render_near_flips(out: &mut String, obs: &Observer) {
    let flips: Vec<_> = obs.audit.near_flips().collect();
    let _ = writeln!(out, "\n-- near-flip decisions: {} --", flips.len());
    for r in flips.iter().take(10) {
        let margin = r.margin.unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  #{:<4} t={:>7.1}s {:<24} {:<3} -> {:<6} margin {:+.3}",
            r.seq, r.input.at_s, r.input.app, r.input.class, r.input.chosen, margin
        );
    }
    if flips.len() > 10 {
        let _ = writeln!(out, "  ... and {} more", flips.len() - 10);
    }
}

fn render_slowdown_sources(out: &mut String, obs: &Observer) {
    let mut sources: Vec<(&str, f32, u64)> = obs
        .registry
        .histograms()
        .filter_map(|(name, h)| {
            name.strip_prefix(SLOWDOWN_PREFIX)
                .map(|app| (app, h.mean(), h.count()))
        })
        .collect();
    if sources.is_empty() {
        return;
    }
    sources.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    let _ = writeln!(
        out,
        "\n-- top slowdown sources (mean contention slowdown) --"
    );
    for (app, mean, n) in sources.iter().take(8) {
        let _ = writeln!(out, "  {app:<24} x{mean:<6.3} over {n} app-seconds");
    }
}

fn render_metrics(out: &mut String, obs: &Observer) {
    if obs.registry.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n-- metrics --");
    for (name, v) in obs.registry.counters() {
        let _ = writeln!(out, "  counter {name:<38} {v}");
    }
    for (name, v) in obs.registry.gauges() {
        let _ = writeln!(out, "  gauge   {name:<38} {v}");
    }
    for (name, h) in obs.registry.histograms() {
        let _ = writeln!(
            out,
            "  hist    {name:<38} n={} mean={:.4} p95={:.4}",
            h.count(),
            h.mean(),
            h.quantile(0.95)
        );
    }
    for (name, s) in obs.registry.sketches() {
        let _ = writeln!(
            out,
            "  sketch  {name:<38} n={} p50={:.4} p99={:.4}",
            s.count(),
            s.quantile(0.5),
            s.quantile(0.99)
        );
    }
}

fn render_wall_clock(out: &mut String, obs: &Observer) {
    let totals = obs.tracer.wall_totals();
    if totals.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n-- wall clock (host-dependent, not exported) --");
    for (label, ms) in totals {
        let _ = writeln!(out, "  {label:<38} {ms:.1} ms");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{DecisionInput, DecisionRule, WindowSummary};
    use adrias_workloads::{MemoryMode, WorkloadClass};

    #[test]
    fn report_mentions_all_sections() {
        let mut obs = Observer::default();
        obs.record_decision(DecisionInput {
            at_s: 1.0,
            deployment_id: 0,
            app: "gmm",
            class: WorkloadClass::BestEffort,
            window: WindowSummary::empty(),
            pred_local: Some(99.0),
            pred_remote: Some(100.0),
            rule: DecisionRule::BetaSlack { beta: 1.0 },
            chosen: MemoryMode::Local,
            policy: "adrias",
        });
        obs.registry
            .observe(&format!("{SLOWDOWN_PREFIX}in-memory-analytics"), 1.8);
        let text = render_report(&obs);
        assert!(text.contains("decision distribution"));
        assert!(text.contains("near-flip decisions: 1"));
        assert!(text.contains("top slowdown sources"));
        assert!(text.contains("in-memory-analytics"));
        assert!(!text.contains("wall clock"), "no wall data was recorded");
    }

    #[test]
    fn adaptation_section_appears_only_when_recorded() {
        use crate::adapt::{CaptureRecord, CaptureSkip, DriftEvent};
        let mut obs = Observer::default();
        assert!(!render_report(&obs).contains("online adaptation"));
        obs.record_capture(CaptureRecord {
            app: "pca",
            arrived_s: 0.0,
            finished_s: 1.0,
            rows: 0,
            co_runners: 0,
            skip: Some(CaptureSkip::EmptyResidency),
        });
        obs.record_drift(DriftEvent {
            at_s: 50.0,
            stream: "be.rel_err",
            samples: 9,
            mean: 0.5,
            stat: 1.2,
            threshold: 1.0,
        });
        let text = render_report(&obs);
        assert!(text.contains("online adaptation"));
        assert!(text.contains("empty_residency"));
        assert!(text.contains("drift events: 1"));
    }

    #[test]
    fn forced_trace_drops_surface_a_warning() {
        let mut obs = Observer::new(crate::ObsConfig {
            trace_capacity: 2,
            ..crate::ObsConfig::default()
        });
        for t in 0..5 {
            obs.tracer.instant("e", "t", f64::from(t), 0, vec![]);
        }
        let text = render_report(&obs);
        assert!(text.contains("(3 dropped, capacity 2)"));
        assert!(text.contains("WARNING: trace ring overflowed, 3 oldest events lost"));
        // A drop-free run stays warning-free.
        assert!(!render_report(&Observer::default()).contains("WARNING"));
    }

    #[test]
    fn burn_and_sketch_sections_render() {
        let mut obs = Observer::default();
        obs.record_burn(crate::burn::BurnEvent {
            at_s: 30.0,
            window_s: 60.0,
            rate: 0.6,
            violations: 3,
            total: 5,
        });
        obs.registry
            .sketch_observe("orchestrator.queue_wait_s", 0.25);
        let text = render_report(&obs);
        assert!(text.contains("SLO burn alerts: 1"));
        assert!(text.contains("window    60s rate 60%"));
        assert!(text.contains("sketch  orchestrator.queue_wait_s"));
    }

    #[test]
    fn wall_clock_section_appears_only_when_recorded() {
        let mut obs = Observer::new(crate::ObsConfig {
            record_wall: true,
            ..crate::ObsConfig::default()
        });
        obs.tracer
            .time_wall("train", || std::hint::black_box(1 + 1));
        assert!(render_report(&obs).contains("wall clock"));
    }
}
