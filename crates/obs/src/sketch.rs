//! Deterministic mergeable log-bucket quantile sketch.
//!
//! The registry's Welford [`crate::registry::Histogram`] answers
//! percentile queries against a *fixed* bucket grid chosen at
//! registration time; queries outside the grid's sweet spot degrade to
//! bucket-width error. The sketch complements it with a layout that is
//! global and value-independent: every positive `f64` maps to a bucket
//! index derived from its bit pattern (sign, exponent and the top
//! [`MANTISSA_BITS`] mantissa bits), so two sketches built on different
//! workers — or merged in any order — always agree bucket-for-bucket.
//! That makes the merge exact: merging is per-index counter addition,
//! and the quantile read on a merged sketch is byte-identical to the
//! read on a sketch built from the concatenated stream.
//!
//! Bucket width is relative: with 7 mantissa bits each bucket spans a
//! `1 + 2⁻⁷ ≈ 0.8 %` ratio, so p50/p95/p99 reads carry sub-percent
//! relative error at any magnitude from `1e-300` to `1e300` without
//! configuration. All arithmetic is integer or exact `f64` bit
//! manipulation — no transcendental calls — so reads are bitwise
//! deterministic across platforms.

use std::collections::BTreeMap;

/// Mantissa bits kept in the bucket index: the log-bucket resolution.
pub const MANTISSA_BITS: u32 = 7;

const SHIFT: u32 = 52 - MANTISSA_BITS;

/// A deterministic mergeable quantile sketch over non-negative samples.
///
/// Values `<= 0` (and exact zeros) land in a dedicated zero bucket;
/// non-finite values are ignored. The bucket layout is a pure function
/// of the value bits, identical for every sketch instance, which is
/// what makes [`Sketch::merge`] worker-count invariant.
///
/// # Examples
///
/// ```
/// use adrias_obs::sketch::Sketch;
///
/// let mut a = Sketch::new();
/// let mut b = Sketch::new();
/// for v in [1.0, 2.0, 3.0] {
///     a.observe(v);
/// }
/// for v in [4.0, 5.0] {
///     b.observe(v);
/// }
/// a.merge(&b);
/// assert_eq!(a.count(), 5);
/// let p50 = a.quantile(0.5);
/// assert!((p50 - 3.0).abs() / 3.0 < 0.01, "p50 {p50}");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sketch {
    buckets: BTreeMap<u32, u64>,
    zero: u64,
    count: u64,
    min: f64,
    max: f64,
}

/// The bucket index of a strictly positive finite value: the top bits
/// of its IEEE-754 representation. Monotone in the value, so bucket
/// order equals value order.
fn bucket_index(v: f64) -> u32 {
    (v.to_bits() >> SHIFT) as u32
}

/// Lower edge of bucket `idx` (the smallest value mapping to it).
fn bucket_lo(idx: u32) -> f64 {
    f64::from_bits(u64::from(idx) << SHIFT)
}

/// Upper edge of bucket `idx` (exclusive).
fn bucket_hi(idx: u32) -> f64 {
    f64::from_bits(u64::from(idx + 1) << SHIFT)
}

impl Sketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self {
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Values `<= 0` count into the zero bucket;
    /// NaN and infinities are ignored.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(v.max(0.0));
        self.max = self.max.max(v.max(0.0));
        if v <= 0.0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that landed in the zero bucket (`v <= 0`).
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// Number of occupied log buckets (the zero bucket excluded).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Smallest recorded sample (clamped at 0), or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (clamped at 0), or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`: per-index counter addition. The
    /// layout is global, so the merge is exact and order-independent —
    /// a merged sketch answers quantiles byte-identically to one built
    /// from the concatenated sample stream.
    pub fn merge(&mut self, other: &Sketch) {
        if other.count == 0 {
            return;
        }
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) with linear interpolation
    /// inside the hit bucket, clamped to the observed `[min, max]`.
    /// Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * (self.count - 1) as f64;
        let mut seen = 0.0f64;
        if self.zero > 0 {
            let c = self.zero as f64;
            if rank < c {
                return 0.0;
            }
            seen = c;
        }
        for (&idx, &count) in &self.buckets {
            let c = count as f64;
            if rank < seen + c {
                let frac = ((rank - seen + 0.5) / c).clamp(0.0, 1.0);
                let lo = bucket_lo(idx);
                let hi = bucket_hi(idx);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reads_zero() {
        let s = Sketch::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn bucket_index_is_monotone_in_the_value() {
        let values = [1e-9, 0.003, 0.5, 1.0, 1.001, 2.0, 99.7, 1e6, 1e12];
        for w in values.windows(2) {
            assert!(
                bucket_index(w[0]) <= bucket_index(w[1]),
                "index order inverted between {} and {}",
                w[0],
                w[1]
            );
        }
        for v in values {
            let idx = bucket_index(v);
            assert!(
                bucket_lo(idx) <= v && v < bucket_hi(idx),
                "{v} outside its bucket"
            );
        }
    }

    #[test]
    fn quantiles_carry_subpercent_relative_error() {
        let mut s = Sketch::new();
        for i in 1..=10_000u64 {
            s.observe(i as f64 * 0.01);
        }
        for (q, exact) in [(0.5, 50.0), (0.95, 95.0), (0.99, 99.0)] {
            let got = s.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.01, "q{q}: {got} vs {exact} (rel {rel:.4})");
        }
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let samples: Vec<f64> = (0..500).map(|i| 0.1 + (i as f64) * 0.37).collect();
        let mut whole = Sketch::new();
        for &v in &samples {
            whole.observe(v);
        }
        // Split across three "workers", merged in two different orders.
        let parts: Vec<Sketch> = samples
            .chunks(167)
            .map(|chunk| {
                let mut s = Sketch::new();
                for &v in chunk {
                    s.observe(v);
                }
                s
            })
            .collect();
        let mut fwd = Sketch::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Sketch::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(fwd.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
    }

    #[test]
    fn zero_and_negative_samples_land_in_the_zero_bucket() {
        let mut s = Sketch::new();
        for v in [0.0, -3.5, 0.0, 4.0] {
            s.observe(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.zero_count(), 3);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut s = Sketch::new();
        s.observe(f64::NAN);
        s.observe(f64::INFINITY);
        s.observe(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.quantile(0.5), 2.0);
    }

    #[test]
    fn single_sample_quantiles_return_that_sample() {
        let mut s = Sketch::new();
        s.observe(7.25);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 7.25, "q{q}");
        }
    }

    #[test]
    fn merge_into_empty_equals_clone() {
        let mut src = Sketch::new();
        for v in [1.0, 10.0, 100.0] {
            src.observe(v);
        }
        let mut dst = Sketch::new();
        dst.merge(&src);
        assert_eq!(dst, src);
        // Merging an empty sketch is a no-op.
        dst.merge(&Sketch::new());
        assert_eq!(dst, src);
    }
}
