//! Online-adaptation observability: capture audits, forecast-residual
//! drift detection, and audited model hot-swaps (§V-C).
//!
//! The online loop — remote-first capture of unknown applications,
//! residual tracking against the live workload, drift-triggered
//! fine-tuning — was previously invisible: skipped captures vanished in
//! a `continue` and a model could silently go stale. This module gives
//! every step a typed record:
//!
//! * [`CaptureRecord`] — one per completed application considered for
//!   signature capture, successful or skipped (with a [`CaptureSkip`]
//!   reason);
//! * [`DriftEvent`] — emitted by the deterministic [`PageHinkley`]
//!   detector when a residual stream's mean shifts upward;
//! * [`ModelSwapRecord`] — the verdict of the swap gate: candidate vs
//!   incumbent held-out accuracy, version ids, gate margin, and the
//!   reasons for a rejection.
//!
//! Everything here is a pure function of the (deterministic) simulation
//! stream, so the `adaptation.jsonl` export inherits the byte-identity
//! guarantees of the other exports.

/// Why a completed application was *not* captured as a new signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureSkip {
    /// iBench interference pods are never captured.
    Interference,
    /// The application did not run in remote mode, so its counters are
    /// not a remote-mode signature.
    NotRemote,
    /// A signature for this application is already stored.
    AlreadyKnown,
    /// An earlier completion in the same run already captured this
    /// application.
    DuplicateInRun,
    /// The residency window clips to zero Watcher rows (the application
    /// arrived after the last recorded sample) — previously a silent
    /// drop.
    EmptyResidency,
}

impl CaptureSkip {
    /// Stable lowercase tag used by the exports.
    pub fn tag(self) -> &'static str {
        match self {
            CaptureSkip::Interference => "interference",
            CaptureSkip::NotRemote => "not_remote",
            CaptureSkip::AlreadyKnown => "already_known",
            CaptureSkip::DuplicateInRun => "duplicate_in_run",
            CaptureSkip::EmptyResidency => "empty_residency",
        }
    }

    /// All skip reasons, in export-tag order (used by the validator).
    pub const ALL: [CaptureSkip; 5] = [
        CaptureSkip::Interference,
        CaptureSkip::NotRemote,
        CaptureSkip::AlreadyKnown,
        CaptureSkip::DuplicateInRun,
        CaptureSkip::EmptyResidency,
    ];
}

/// One signature-capture attempt: the residency window the capture saw,
/// how many Watcher rows it yielded, how many other applications were
/// co-resident (captured signatures are contaminated by co-runners),
/// and the skip reason if nothing was captured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureRecord {
    /// Application name (interned).
    pub app: &'static str,
    /// Residency window start, sim seconds.
    pub arrived_s: f64,
    /// Residency window end, sim seconds.
    pub finished_s: f64,
    /// Watcher rows captured into the signature (0 when skipped).
    pub rows: usize,
    /// Other applications whose residency overlapped this window.
    pub co_runners: usize,
    /// `None` for a successful capture, the reason otherwise.
    pub skip: Option<CaptureSkip>,
}

/// A drift detection on one residual stream: the Page–Hinkley statistic
/// crossed its threshold, i.e. the stream's running mean shifted upward
/// relative to its own history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// Sim time at which the detector fired.
    pub at_s: f64,
    /// Residual stream tag (e.g. `be.rel_err`, `lc.rel_err`,
    /// `sys.forecast_err`).
    pub stream: &'static str,
    /// Samples the detector had consumed when it fired.
    pub samples: u64,
    /// Running mean of the stream at the firing point.
    pub mean: f64,
    /// The Page–Hinkley statistic `m_t − min m_t` at the firing point.
    pub stat: f64,
    /// The configured threshold `λ` it crossed.
    pub threshold: f64,
}

/// The swap gate's verdict on a candidate model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapVerdict {
    /// The candidate replaced the incumbent.
    Swapped,
    /// The incumbent survived; see [`ModelSwapRecord::reasons`].
    Rejected,
}

impl SwapVerdict {
    /// Stable lowercase tag used by the exports.
    pub fn tag(self) -> &'static str {
        match self {
            SwapVerdict::Swapped => "swapped",
            SwapVerdict::Rejected => "rejected",
        }
    }
}

/// The audited outcome of one gated model-swap attempt: candidate vs
/// incumbent accuracy on the held-out slice, their version ids, the
/// gate margin, and the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSwapRecord {
    /// Sim time of the gate evaluation.
    pub at_s: f64,
    /// Which model was challenged (`be` or `lc`).
    pub target: &'static str,
    /// The gate's decision.
    pub verdict: SwapVerdict,
    /// Version id of the incumbent model.
    pub incumbent_version: u64,
    /// Version id of the candidate model.
    pub candidate_version: u64,
    /// Incumbent mean absolute error on the held-out slice.
    pub incumbent_mae: f32,
    /// Candidate mean absolute error on the held-out slice.
    pub candidate_mae: f32,
    /// Incumbent R² on the held-out slice.
    pub incumbent_r2: f32,
    /// Candidate R² on the held-out slice.
    pub candidate_r2: f32,
    /// Relative held-out MAE improvement of the candidate,
    /// `(incumbent − candidate) / incumbent`.
    pub gate_margin: f32,
    /// Human-readable reasons for the verdict (non-empty on rejection).
    pub reasons: Vec<String>,
}

/// Page–Hinkley detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Minimum samples before the detector may fire (the running mean
    /// needs a baseline).
    pub min_samples: u64,
    /// Magnitude tolerance `δ`: per-sample slack subtracted from the
    /// deviation, so small fluctuations never accumulate.
    pub delta: f64,
    /// Detection threshold `λ` on the statistic `m_t − min m_t`.
    pub lambda: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            min_samples: 8,
            delta: 0.05,
            lambda: 1.0,
        }
    }
}

/// A deterministic Page–Hinkley mean-shift detector over one residual
/// stream.
///
/// Maintains `m_t = Σ_i (x_i − x̄_i − δ)` and its running minimum
/// `M_t`; drift is declared when `m_t − M_t > λ` (after
/// [`DriftConfig::min_samples`]). The state is a pure fold over the
/// observed values, so two identical streams produce identical events —
/// no randomness, no wall clock. After firing, the detector resets and
/// starts accumulating a fresh baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PageHinkley {
    cfg: DriftConfig,
    stream: &'static str,
    samples: u64,
    mean: f64,
    m: f64,
    m_min: f64,
}

impl PageHinkley {
    /// Creates a detector for the residual stream named `stream`.
    pub fn new(stream: &'static str, cfg: DriftConfig) -> Self {
        Self {
            cfg,
            stream,
            samples: 0,
            mean: 0.0,
            m: 0.0,
            m_min: 0.0,
        }
    }

    /// The stream tag this detector watches.
    pub fn stream(&self) -> &'static str {
        self.stream
    }

    /// Samples consumed since construction or the last firing.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Running mean of the current window.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current value of the statistic `m_t − min m_t`.
    pub fn stat(&self) -> f64 {
        self.m - self.m_min
    }

    /// Folds one residual into the detector. Returns the typed
    /// [`DriftEvent`] (stamped `at_s`) if the threshold was crossed,
    /// after which the detector resets.
    pub fn observe(&mut self, x: f64, at_s: f64) -> Option<DriftEvent> {
        self.samples += 1;
        self.mean += (x - self.mean) / self.samples as f64;
        self.m += x - self.mean - self.cfg.delta;
        self.m_min = self.m_min.min(self.m);
        if self.samples >= self.cfg.min_samples && self.stat() > self.cfg.lambda {
            let event = DriftEvent {
                at_s,
                stream: self.stream,
                samples: self.samples,
                mean: self.mean,
                stat: self.stat(),
                threshold: self.cfg.lambda,
            };
            self.reset();
            return Some(event);
        }
        None
    }

    /// Clears all accumulated state (fresh baseline).
    pub fn reset(&mut self) {
        self.samples = 0;
        self.mean = 0.0;
        self.m = 0.0;
        self.m_min = 0.0;
    }

    /// Captures the accumulated fold state so a detector can be
    /// persisted (or handed across a flush boundary) and resumed later
    /// with [`PageHinkley::restore`]. The configuration and stream tag
    /// are construction-time identity, not accumulated state, and are
    /// deliberately not part of the snapshot.
    pub fn snapshot(&self) -> PageHinkleyState {
        PageHinkleyState {
            samples: self.samples,
            mean: self.mean,
            m: self.m,
            m_min: self.m_min,
        }
    }

    /// Restores state captured by [`PageHinkley::snapshot`]. A detector
    /// that observes a residual stream, is snapshotted, recreated and
    /// restored mid-stream emits exactly the events the uninterrupted
    /// detector would have — the fold is pure, so the snapshot is the
    /// whole state.
    pub fn restore(&mut self, state: PageHinkleyState) {
        self.samples = state.samples;
        self.mean = state.mean;
        self.m = state.m;
        self.m_min = state.m_min;
    }
}

/// Opaque accumulated state of a [`PageHinkley`] detector, captured by
/// [`PageHinkley::snapshot`] and re-applied with
/// [`PageHinkley::restore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageHinkleyState {
    samples: u64,
    mean: f64,
    m: f64,
    m_min: f64,
}

/// The adaptation audit log: capture attempts, drift events, and model
/// swaps, in insertion (sim-time) order. Exported as
/// `adaptation.jsonl`.
#[derive(Debug, Clone, Default)]
pub struct AdaptationLog {
    captures: Vec<CaptureRecord>,
    drifts: Vec<DriftEvent>,
    swaps: Vec<ModelSwapRecord>,
}

impl AdaptationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one capture attempt.
    pub fn record_capture(&mut self, record: CaptureRecord) {
        self.captures.push(record);
    }

    /// Appends one drift event.
    pub fn record_drift(&mut self, event: DriftEvent) {
        self.drifts.push(event);
    }

    /// Appends one swap-gate verdict.
    pub fn record_swap(&mut self, record: ModelSwapRecord) {
        self.swaps.push(record);
    }

    /// All capture attempts so far.
    pub fn captures(&self) -> &[CaptureRecord] {
        &self.captures
    }

    /// All drift events so far.
    pub fn drifts(&self) -> &[DriftEvent] {
        &self.drifts
    }

    /// All swap-gate verdicts so far.
    pub fn swaps(&self) -> &[ModelSwapRecord] {
        &self.swaps
    }

    /// Total records across the three kinds.
    pub fn len(&self) -> usize {
        self.captures.len() + self.drifts.len() + self.swaps.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_stream_never_fires() {
        let mut ph = PageHinkley::new("be.rel_err", DriftConfig::default());
        for i in 0..200 {
            // Small fluctuation around 0.1, amplitude below delta.
            let x = 0.1 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(ph.observe(x, i as f64), None, "fired at sample {i}");
        }
        assert_eq!(ph.samples(), 200);
    }

    #[test]
    fn mean_shift_fires_once_and_resets() {
        let mut ph = PageHinkley::new("be.rel_err", DriftConfig::default());
        for i in 0..20 {
            assert_eq!(ph.observe(0.1, i as f64), None);
        }
        let mut fired = None;
        for i in 20..40 {
            if let Some(e) = ph.observe(1.2, i as f64) {
                fired = Some(e);
                break;
            }
        }
        let e = fired.expect("a 12x mean shift must fire");
        assert_eq!(e.stream, "be.rel_err");
        assert!(e.stat > e.threshold);
        assert!(e.mean > 0.1, "mean must have moved: {}", e.mean);
        // Post-fire the detector restarted from a clean baseline.
        assert_eq!(ph.samples(), 0);
        assert_eq!(ph.stat(), 0.0);
    }

    #[test]
    fn min_samples_gates_early_firing() {
        let cfg = DriftConfig {
            min_samples: 50,
            ..DriftConfig::default()
        };
        let mut ph = PageHinkley::new("lc.rel_err", cfg);
        for i in 0..49 {
            // Huge residuals, but the baseline window is not over.
            assert_eq!(ph.observe(5.0, i as f64), None);
        }
    }

    #[test]
    fn identical_streams_produce_identical_events() {
        let run = || {
            let mut ph = PageHinkley::new("sys.forecast_err", DriftConfig::default());
            let mut events = Vec::new();
            for i in 0..60 {
                let x = if i < 30 { 0.05 } else { 0.9 };
                if let Some(e) = ph.observe(x, i as f64) {
                    events.push(e);
                }
            }
            events
        };
        assert_eq!(run(), run());
    }

    adrias_core::proptest! {
        #[test]
        fn chunked_feeding_with_snapshot_restore_matches_one_shot(
            raw in adrias_core::prop::collection::vec(0.0f64..2.0, 1..120),
            cuts in adrias_core::prop::collection::vec(0usize..120, 0..4),
        ) {
            // Quantise the residuals so chunking cannot hide behind
            // float noise: the streams must be *identical*, and so must
            // the emitted events.
            let stream: Vec<f64> = raw.iter().map(|x| (x * 8.0).round() / 8.0).collect();

            // One-shot: a single detector folds the whole stream.
            let mut whole = PageHinkley::new("be.rel_err", DriftConfig::default());
            let mut expected = Vec::new();
            for (i, &x) in stream.iter().enumerate() {
                if let Some(e) = whole.observe(x, i as f64) {
                    expected.push(e);
                }
            }

            // Chunked: at every cut point the detector is snapshotted,
            // dropped, and a fresh one restored from the snapshot —
            // the flush/restore path a persisted detector would take.
            let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut chunked = PageHinkley::new("be.rel_err", DriftConfig::default());
            let mut got = Vec::new();
            for (i, &x) in stream.iter().enumerate() {
                if cuts.contains(&i) {
                    let state = chunked.snapshot();
                    chunked = PageHinkley::new("be.rel_err", DriftConfig::default());
                    chunked.restore(state);
                }
                if let Some(e) = chunked.observe(x, i as f64) {
                    got.push(e);
                }
            }

            adrias_core::prop_assert_eq!(got, expected);
            adrias_core::prop_assert_eq!(chunked.snapshot(), whole.snapshot());
        }
    }

    #[test]
    fn snapshot_restore_round_trips_mid_window() {
        let mut ph = PageHinkley::new("lc.rel_err", DriftConfig::default());
        for i in 0..5 {
            assert_eq!(ph.observe(0.2 + 0.1 * i as f64, i as f64), None);
        }
        let state = ph.snapshot();
        let mut resumed = PageHinkley::new("lc.rel_err", DriftConfig::default());
        resumed.restore(state);
        assert_eq!(resumed.samples(), ph.samples());
        assert_eq!(resumed.mean(), ph.mean());
        assert_eq!(resumed.stat(), ph.stat());
        assert_eq!(resumed.snapshot(), state);
    }

    #[test]
    fn tags_are_stable() {
        assert_eq!(CaptureSkip::EmptyResidency.tag(), "empty_residency");
        assert_eq!(CaptureSkip::DuplicateInRun.tag(), "duplicate_in_run");
        assert_eq!(SwapVerdict::Swapped.tag(), "swapped");
        assert_eq!(SwapVerdict::Rejected.tag(), "rejected");
        for skip in CaptureSkip::ALL {
            assert!(!skip.tag().is_empty());
        }
    }

    #[test]
    fn log_counts_all_three_kinds() {
        let mut log = AdaptationLog::new();
        assert!(log.is_empty());
        log.record_capture(CaptureRecord {
            app: "pca",
            arrived_s: 10.0,
            finished_s: 90.0,
            rows: 80,
            co_runners: 2,
            skip: None,
        });
        log.record_drift(DriftEvent {
            at_s: 100.0,
            stream: "be.rel_err",
            samples: 12,
            mean: 0.6,
            stat: 1.4,
            threshold: 1.0,
        });
        log.record_swap(ModelSwapRecord {
            at_s: 101.0,
            target: "be",
            verdict: SwapVerdict::Rejected,
            incumbent_version: 0,
            candidate_version: 1,
            incumbent_mae: 4.0,
            candidate_mae: 4.2,
            incumbent_r2: 0.9,
            candidate_r2: 0.88,
            gate_margin: -0.05,
            reasons: vec!["held-out MAE regressed".into()],
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.captures().len(), 1);
        assert_eq!(log.drifts().len(), 1);
        assert_eq!(log.swaps().len(), 1);
    }
}
