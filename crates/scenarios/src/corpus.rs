//! Versioned on-disk regression corpus for the adversarial fuzzer.
//!
//! Layout: a corpus directory holds one JSON file per case plus a
//! `manifest.json` index. Every file carries
//! [`CORPUS_FORMAT_VERSION`]; loading rejects unknown versions, files
//! missing from the manifest are ignored, and manifest entries whose
//! digest disagrees with the case file are load errors — the manifest
//! is the single source of truth for what CI must replay.
//!
//! Serialization is hand-rendered JSON (the workspace is
//! zero-dependency) parsed back with the in-tree `adrias_obs::json`
//! parser, and rendering is deterministic: same entries in, byte-same
//! files out.

use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use adrias_obs::json::{self, escape, Json};

use crate::fuzz::{AppMix, ArrivalShape, FaultKind, FaultSpec, FuzzCase};

/// On-disk format version; bump on any schema change and teach
/// [`load_corpus`] the migration (or reject).
pub const CORPUS_FORMAT_VERSION: u64 = 1;

/// Why a case is in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusOrigin {
    /// A fuzzed scenario that passed both oracles and was promoted as a
    /// regression anchor: it must keep replaying green, bit-identically.
    Promoted,
    /// A shrunk oracle violation: it documents a bug until the fix
    /// lands, after which it must replay green forever.
    Counterexample,
}

impl CorpusOrigin {
    /// Stable on-disk tag.
    pub fn tag(self) -> &'static str {
        match self {
            CorpusOrigin::Promoted => "promoted",
            CorpusOrigin::Counterexample => "counterexample",
        }
    }

    /// Inverse of [`CorpusOrigin::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "promoted" => Some(CorpusOrigin::Promoted),
            "counterexample" => Some(CorpusOrigin::Counterexample),
            _ => None,
        }
    }
}

/// One corpus case: the scenario plus its replay contract.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Unique id; doubles as the file stem (`<id>.json`).
    pub id: String,
    /// Why the case was persisted.
    pub origin: CorpusOrigin,
    /// Expected [`crate::fuzz::case_digest`] of the differential run;
    /// replay fails if the actual digest drifts by a single bit.
    pub digest: u64,
    /// The scenario itself.
    pub case: FuzzCase,
    /// Free-form provenance note (shrink steps, generating seed, …).
    pub note: String,
}

/// Corpus I/O or schema failure.
#[derive(Debug)]
pub struct CorpusError {
    /// The file (or directory) involved.
    pub path: PathBuf,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.reason)
    }
}

impl std::error::Error for CorpusError {}

fn err(path: &Path, reason: impl Into<String>) -> CorpusError {
    CorpusError {
        path: path.to_path_buf(),
        reason: reason.into(),
    }
}

/// Renders one corpus case as its canonical JSON document.
pub fn render_entry(entry: &CorpusEntry) -> String {
    let c = &entry.case;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"format_version\": {CORPUS_FORMAT_VERSION},\n  \"id\": {},\n  \"origin\": {},\n  \
         \"digest\": \"{:#018x}\",\n  \"note\": {},\n  \"mix\": {},\n  \"arrivals\": {},\n  \
         \"duration_s\": {},\n  \"seed\": \"{:#x}\",\n  \"faults\": [",
        escape(&entry.id),
        escape(entry.origin.tag()),
        entry.digest,
        escape(&entry.note),
        escape(c.mix.tag()),
        escape(c.arrivals.tag()),
        c.duration_s,
        c.seed,
    );
    for (i, f) in c.faults.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"at_pct\": {}, \"kind\": {}}}",
            f.at_pct,
            escape(f.kind.tag())
        );
    }
    if c.faults.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

fn get_str<'a>(doc: &'a Json, key: &str, path: &Path) -> Result<&'a str, CorpusError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err(path, format!("missing or non-string `{key}`")))
}

fn get_num(doc: &Json, key: &str, path: &Path) -> Result<f64, CorpusError> {
    doc.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| err(path, format!("missing or non-numeric `{key}`")))
}

/// Parses a `"0x…"` hex string (u64 values don't round-trip through
/// JSON's f64 numbers, so they're stored as strings).
fn parse_hex(text: &str, key: &str, path: &Path) -> Result<u64, CorpusError> {
    text.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| err(path, format!("`{key}` is not a 0x-hex string: {text:?}")))
}

/// Parses one corpus case document.
pub fn parse_entry(text: &str, path: &Path) -> Result<CorpusEntry, CorpusError> {
    let doc = json::parse(text).map_err(|e| err(path, format!("bad JSON: {e}")))?;
    let version = get_num(&doc, "format_version", path)?;
    if version != CORPUS_FORMAT_VERSION as f64 {
        return Err(err(
            path,
            format!(
                "unsupported corpus format version {version} (expected {CORPUS_FORMAT_VERSION})"
            ),
        ));
    }
    let origin_tag = get_str(&doc, "origin", path)?;
    let origin = CorpusOrigin::from_tag(origin_tag)
        .ok_or_else(|| err(path, format!("unknown origin {origin_tag:?}")))?;
    let mix_tag = get_str(&doc, "mix", path)?;
    let mix =
        AppMix::from_tag(mix_tag).ok_or_else(|| err(path, format!("unknown mix {mix_tag:?}")))?;
    let arrivals_tag = get_str(&doc, "arrivals", path)?;
    let arrivals = ArrivalShape::from_tag(arrivals_tag)
        .ok_or_else(|| err(path, format!("unknown arrivals {arrivals_tag:?}")))?;
    let duration = get_num(&doc, "duration_s", path)?;
    if !(duration.is_finite() && duration > 0.0 && duration.fract() == 0.0) {
        return Err(err(path, format!("bad duration_s {duration}")));
    }
    let mut faults = Vec::new();
    let fault_arr = doc
        .get("faults")
        .and_then(Json::as_arr)
        .ok_or_else(|| err(path, "missing or non-array `faults`"))?;
    for f in fault_arr {
        let at_pct = f
            .get("at_pct")
            .and_then(Json::as_num)
            .filter(|p| (0.0..=100.0).contains(p) && p.fract() == 0.0)
            .ok_or_else(|| err(path, "fault with missing or bad `at_pct`"))?;
        let kind_tag = f
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| err(path, "fault with missing `kind`"))?;
        let kind = FaultKind::from_tag(kind_tag)
            .ok_or_else(|| err(path, format!("unknown fault kind {kind_tag:?}")))?;
        faults.push(FaultSpec {
            at_pct: at_pct as u8,
            kind,
        });
    }
    Ok(CorpusEntry {
        id: get_str(&doc, "id", path)?.to_owned(),
        origin,
        digest: parse_hex(get_str(&doc, "digest", path)?, "digest", path)?,
        note: get_str(&doc, "note", path)?.to_owned(),
        case: FuzzCase {
            mix,
            arrivals,
            duration_s: duration as u32,
            seed: parse_hex(get_str(&doc, "seed", path)?, "seed", path)?,
            faults,
        },
    })
}

fn render_manifest(entries: &[CorpusEntry]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"format_version\": {CORPUS_FORMAT_VERSION},\n  \"cases\": ["
    );
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"file\": {}, \"id\": {}, \"origin\": {}, \"digest\": \"{:#018x}\"}}",
            escape(&format!("{}.json", e.id)),
            escape(&e.id),
            escape(e.origin.tag()),
            e.digest
        );
    }
    if entries.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Writes `entries` as a complete corpus under `dir` (created if
/// missing): one `<id>.json` per case plus `manifest.json`. Rendering
/// is deterministic, so re-saving an unchanged corpus is a no-op diff.
///
/// # Errors
///
/// Returns [`CorpusError`] naming the file that could not be written;
/// duplicate ids are rejected before anything is written.
pub fn save_corpus(dir: &Path, entries: &[CorpusEntry]) -> Result<(), CorpusError> {
    for (i, e) in entries.iter().enumerate() {
        if entries[..i].iter().any(|other| other.id == e.id) {
            return Err(err(dir, format!("duplicate corpus id {:?}", e.id)));
        }
    }
    std::fs::create_dir_all(dir).map_err(|e| err(dir, format!("cannot create: {e}")))?;
    for entry in entries {
        let path = dir.join(format!("{}.json", entry.id));
        std::fs::write(&path, render_entry(entry))
            .map_err(|e| err(&path, format!("cannot write: {e}")))?;
    }
    let manifest = dir.join("manifest.json");
    std::fs::write(&manifest, render_manifest(entries))
        .map_err(|e| err(&manifest, format!("cannot write: {e}")))?;
    Ok(())
}

/// Loads a corpus in manifest order. Every manifest entry must resolve
/// to a parseable case file whose id and digest match the manifest —
/// a mismatch means the corpus was hand-edited inconsistently and
/// replaying it would silently test the wrong contract.
///
/// # Errors
///
/// Returns [`CorpusError`] on a missing/bad manifest, unsupported
/// format version, unreadable case file, or manifest/file mismatch.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, CorpusError> {
    let manifest_path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| err(&manifest_path, format!("cannot read: {e}")))?;
    let doc = json::parse(&text).map_err(|e| err(&manifest_path, format!("bad JSON: {e}")))?;
    let version = get_num(&doc, "format_version", &manifest_path)?;
    if version != CORPUS_FORMAT_VERSION as f64 {
        return Err(err(
            &manifest_path,
            format!(
                "unsupported corpus format version {version} (expected {CORPUS_FORMAT_VERSION})"
            ),
        ));
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or_else(|| err(&manifest_path, "missing or non-array `cases`"))?;
    let mut entries = Vec::with_capacity(cases.len());
    for c in cases {
        let file = c
            .get("file")
            .and_then(Json::as_str)
            .ok_or_else(|| err(&manifest_path, "manifest case without `file`"))?;
        let path = dir.join(file);
        let case_text =
            std::fs::read_to_string(&path).map_err(|e| err(&path, format!("cannot read: {e}")))?;
        let entry = parse_entry(&case_text, &path)?;
        let want_id = c
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| err(&manifest_path, "manifest case without `id`"))?;
        if entry.id != want_id {
            return Err(err(
                &path,
                format!("id {:?} disagrees with manifest {want_id:?}", entry.id),
            ));
        }
        let want_digest = c
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| err(&manifest_path, "manifest case without `digest`"))?;
        let want_digest = parse_hex(want_digest, "digest", &manifest_path)?;
        if entry.digest != want_digest {
            return Err(err(
                &path,
                format!(
                    "digest {:#018x} disagrees with manifest {want_digest:#018x}",
                    entry.digest
                ),
            ));
        }
        entries.push(entry);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<CorpusEntry> {
        vec![
            CorpusEntry {
                id: "promoted-000".into(),
                origin: CorpusOrigin::Promoted,
                digest: 0xDEAD_BEEF_0123_4567,
                case: FuzzCase {
                    mix: AppMix::LcHeavy,
                    arrivals: ArrivalShape::Burst,
                    duration_s: 640,
                    seed: 0x2A,
                    faults: vec![
                        FaultSpec {
                            at_pct: 25,
                            kind: FaultKind::Flap,
                        },
                        FaultSpec {
                            at_pct: 75,
                            kind: FaultKind::LatencySpike,
                        },
                    ],
                },
                note: "fuzzed from base seed 0x0, case 3".into(),
            },
            CorpusEntry {
                id: "promoted-001".into(),
                origin: CorpusOrigin::Counterexample,
                digest: u64::MAX,
                case: FuzzCase {
                    mix: AppMix::Full,
                    arrivals: ArrivalShape::Calm,
                    duration_s: 480,
                    seed: 0,
                    faults: Vec::new(),
                },
                note: String::new(),
            },
        ]
    }

    #[test]
    fn entries_round_trip_through_render_and_parse() {
        for entry in sample_entries() {
            let text = render_entry(&entry);
            let back = parse_entry(&text, Path::new("test.json")).expect("parses");
            assert_eq!(back, entry);
            // Rendering is deterministic.
            assert_eq!(text, render_entry(&back));
        }
    }

    #[test]
    fn save_and_load_round_trip_in_manifest_order() {
        let dir = std::env::temp_dir().join("adrias_corpus_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let entries = sample_entries();
        save_corpus(&dir, &entries).expect("saves");
        let back = load_corpus(&dir).expect("loads");
        assert_eq!(back, entries);
        // A stray file not in the manifest is ignored.
        std::fs::write(dir.join("stray.json"), "{not json").unwrap();
        assert_eq!(load_corpus(&dir).expect("still loads"), entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_version_and_tampered_digest_are_rejected() {
        let dir = std::env::temp_dir().join("adrias_corpus_reject");
        let _ = std::fs::remove_dir_all(&dir);
        let entries = sample_entries();
        save_corpus(&dir, &entries).expect("saves");

        // Future format version in a case file → load error.
        let path = dir.join("promoted-000.json");
        let bumped = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"format_version\": 1", "\"format_version\": 99");
        std::fs::write(&path, bumped).unwrap();
        let e = load_corpus(&dir).expect_err("version must be rejected");
        assert!(e.reason.contains("version"), "{e}");

        // Restore the file but tamper the digest → manifest mismatch.
        save_corpus(&dir, &entries).expect("restores");
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("0xdeadbeef01234567", "0xdeadbeef01234568");
        std::fs::write(&path, tampered).unwrap();
        let e = load_corpus(&dir).expect_err("digest drift must be rejected");
        assert!(e.reason.contains("digest"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_ids_are_rejected_before_writing() {
        let dir = std::env::temp_dir().join("adrias_corpus_dup");
        let _ = std::fs::remove_dir_all(&dir);
        let mut entries = sample_entries();
        entries[1].id = entries[0].id.clone();
        let e = save_corpus(&dir, &entries).expect_err("duplicates rejected");
        assert!(e.reason.contains("duplicate"), "{e}");
        assert!(!dir.exists(), "nothing was written");
    }

    #[test]
    fn malformed_case_documents_name_the_offending_field() {
        let base = render_entry(&sample_entries()[0]);
        for (needle, replacement, expect) in [
            ("\"mix\": \"lc_heavy\"", "\"mix\": \"weird\"", "unknown mix"),
            (
                "\"kind\": \"flap\"",
                "\"kind\": \"meteor\"",
                "unknown fault kind",
            ),
            ("\"seed\": \"0x2a\"", "\"seed\": \"42\"", "seed"),
            (
                "\"arrivals\": \"burst\"",
                "\"arrivals\": \"never\"",
                "unknown arrivals",
            ),
        ] {
            let broken = base.replace(needle, replacement);
            assert_ne!(broken, base, "replacement {needle:?} must apply");
            let e = parse_entry(&broken, Path::new("t.json")).expect_err("must fail");
            assert!(e.reason.contains(expect), "{e}");
        }
    }
}
