//! Scenario generation, trace collection and evaluation runners.
//!
//! The offline phase of Adrias (§V-B1) simulates 72 one-hour scenarios
//! with randomized arrivals (spawn intervals from `{5, 20}` up to
//! `{5, 60}` seconds), random benchmark choice and random local/remote
//! placement, recording both the Watcher metric streams and every
//! application's performance. This crate reproduces that pipeline on the
//! testbed simulator:
//!
//! * [`spec`] — scenario specifications and the 72-scenario corpus;
//! * [`schedule`] — deterministic arrival-schedule generation;
//! * [`traces`] — trace collection and conversion into the predictor's
//!   datasets;
//! * [`signatures`] — application-signature capture (isolated remote
//!   runs);
//! * [`stack`] — one-call training of the full Adrias model stack;
//! * [`runner`] — the orchestration-evaluation loop comparing policies
//!   across scenarios (Figs. 16–17), with parallel execution;
//! * [`drift`] — the drifting-workload runner closing the §V-C online
//!   loop: residual tracking, drift detection and audited hot-swaps;
//! * [`fuzz`] — the adversarial scenario fuzzer: property-driven
//!   generation of app mixes, arrival bursts and link-fault schedules,
//!   gated by differential QoS oracles with shrinking;
//! * [`corpus`] — the versioned on-disk regression corpus the fuzzer's
//!   promoted cases and shrunk counterexamples persist into.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod drift;
pub mod fuzz;
pub mod runner;
pub mod schedule;
pub mod signatures;
pub mod spec;
pub mod stack;
pub mod traces;

pub use corpus::{
    load_corpus, save_corpus, CorpusEntry, CorpusError, CorpusOrigin, CORPUS_FORMAT_VERSION,
};
pub use drift::{
    degraded_testbed, demo_phases, run_drift_phases, DriftPhase, DriftRunConfig, DriftRunResult,
    PhaseOutcome,
};
pub use fuzz::{
    case_strategy, find_qos_counterexample, generate_cases, replay_corpus, run_case, run_suite,
    AppMix, ArrivalShape, CaseOutcome, FaultKind, FaultSpec, FuzzCase, FuzzConfig, ReplayReport,
    SuiteReport, SuiteVerdict,
};
pub use runner::{run_comparison, run_comparison_merged, run_observed, PolicyOutcome};
pub use schedule::build_schedule;
pub use signatures::collect_signatures;
pub use spec::{paper_corpus, scaled_corpus, ScenarioSpec};
pub use stack::{train_stack, StackOptions, TrainLosses, TrainedStack};
pub use traces::{collect_traces, TraceBundle};
