//! Scenario generation, trace collection and evaluation runners.
//!
//! The offline phase of Adrias (§V-B1) simulates 72 one-hour scenarios
//! with randomized arrivals (spawn intervals from `{5, 20}` up to
//! `{5, 60}` seconds), random benchmark choice and random local/remote
//! placement, recording both the Watcher metric streams and every
//! application's performance. This crate reproduces that pipeline on the
//! testbed simulator:
//!
//! * [`spec`] — scenario specifications and the 72-scenario corpus;
//! * [`schedule`] — deterministic arrival-schedule generation;
//! * [`traces`] — trace collection and conversion into the predictor's
//!   datasets;
//! * [`signatures`] — application-signature capture (isolated remote
//!   runs);
//! * [`stack`] — one-call training of the full Adrias model stack;
//! * [`runner`] — the orchestration-evaluation loop comparing policies
//!   across scenarios (Figs. 16–17), with parallel execution;
//! * [`drift`] — the drifting-workload runner closing the §V-C online
//!   loop: residual tracking, drift detection and audited hot-swaps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod runner;
pub mod schedule;
pub mod signatures;
pub mod spec;
pub mod stack;
pub mod traces;

pub use drift::{
    degraded_testbed, demo_phases, run_drift_phases, DriftPhase, DriftRunConfig, DriftRunResult,
    PhaseOutcome,
};
pub use runner::{run_comparison, run_comparison_merged, run_observed, PolicyOutcome};
pub use schedule::build_schedule;
pub use signatures::collect_signatures;
pub use spec::{paper_corpus, scaled_corpus, ScenarioSpec};
pub use stack::{train_stack, StackOptions, TrainLosses, TrainedStack};
pub use traces::{collect_traces, TraceBundle};
