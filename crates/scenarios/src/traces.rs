//! Trace collection: the offline data-acquisition phase (§V-B1).

use adrias_core::thread::map_chunks;
use adrias_orchestrator::engine::{run_schedule, EngineConfig, RunReport};
use adrias_orchestrator::RandomPolicy;
use adrias_predictor::dataset::{PerfRecord, HISTORY_S};
use adrias_sim::TestbedConfig;
use adrias_telemetry::MetricSample;
use adrias_workloads::{TraceSource, WorkloadCatalog, WorkloadClass};

use crate::schedule::{build_schedule, PlacementStyle};
use crate::spec::ScenarioSpec;

/// The collected traces of a scenario corpus.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    reports: Vec<RunReport>,
}

impl TraceBundle {
    /// Builds a bundle from raw engine reports.
    pub fn new(reports: Vec<RunReport>) -> Self {
        Self { reports }
    }

    /// Number of collected scenarios.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether no scenarios were collected.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The underlying engine reports.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// The 1 Hz metric traces, one per scenario (input to
    /// `SystemStateDataset::from_traces`).
    pub fn system_traces(&self) -> Vec<Vec<MetricSample>> {
        self.reports.iter().map(|r| r.samples.clone()).collect()
    }

    /// The arrival instants of every completed application in scenario
    /// `idx`, sorted ascending — outcomes are stored in completion
    /// order, so this re-sorts by arrival.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn arrival_times(&self, idx: usize) -> Vec<f64> {
        let mut times: Vec<f64> = self.reports[idx]
            .outcomes
            .iter()
            .map(|o| o.arrived_s)
            .collect();
        times.sort_by(f64::total_cmp);
        times
    }

    /// Replays scenario `idx`'s observed arrival instants as an
    /// [`adrias_workloads::ArrivalSource`] — the bridge from a
    /// collected trace back into the event engine's generated-traffic
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn trace_source(&self, idx: usize) -> TraceSource {
        TraceSource::new(self.arrival_times(idx))
    }

    /// Extracts performance records for one workload class.
    ///
    /// A record needs a full [`HISTORY_S`]-second window before arrival
    /// and at least one trace sample after it; early arrivals are
    /// dropped. BE performance is the wall-clock runtime; LC performance
    /// the measured p99.
    pub fn perf_records(&self, class: WorkloadClass) -> Vec<PerfRecord> {
        let mut records = Vec::new();
        for report in &self.reports {
            for o in report.outcomes.iter().filter(|o| o.class == class) {
                let Some(history) = report.history_before(o.arrived_s, HISTORY_S) else {
                    continue;
                };
                let Some(future_120) = report.mean_between(o.arrived_s, o.arrived_s + 120.0) else {
                    continue;
                };
                let Some(future_exec) = report.mean_between(o.arrived_s, o.finished_s) else {
                    continue;
                };
                let perf = match class {
                    WorkloadClass::LatencyCritical => match o.p99_ms {
                        Some(p) => p,
                        None => continue,
                    },
                    _ => o.runtime_s as f32,
                };
                records.push(PerfRecord {
                    app: o.name.clone(),
                    mode: o.mode,
                    history,
                    future_120,
                    future_exec,
                    perf,
                });
            }
        }
        records
    }
}

/// Runs every scenario with random placement and collects the traces.
///
/// Scenarios run in parallel across `threads` worker threads (1 for
/// fully sequential).
///
/// # Panics
///
/// Panics if `specs` is empty or `threads` is zero.
pub fn collect_traces(
    testbed_cfg: TestbedConfig,
    catalog: &WorkloadCatalog,
    specs: &[ScenarioSpec],
    threads: usize,
) -> TraceBundle {
    assert!(!specs.is_empty(), "no scenarios to collect");
    assert!(threads > 0, "need at least one worker thread");
    let reports: Vec<RunReport> = map_chunks(specs, threads, |chunk| {
        chunk
            .iter()
            .map(|spec| {
                let schedule = build_schedule(spec, catalog, PlacementStyle::RandomForced);
                let engine = EngineConfig {
                    seed: spec.seed ^ 0xE6E,
                    ..EngineConfig::default()
                };
                let mut policy = RandomPolicy::new(spec.seed);
                run_schedule(testbed_cfg, engine, &schedule, &mut policy)
            })
            .collect()
    });
    TraceBundle::new(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_specs() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::new(5.0, 20.0, 700.0, 1),
            ScenarioSpec::new(5.0, 40.0, 700.0, 2),
        ]
    }

    #[test]
    fn collects_one_report_per_scenario() {
        let bundle = collect_traces(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &small_specs(),
            2,
        );
        assert_eq!(bundle.len(), 2);
        assert!(!bundle.is_empty());
        for trace in bundle.system_traces() {
            assert!(trace.len() >= 700, "trace too short: {}", trace.len());
        }
    }

    #[test]
    fn perf_records_have_full_windows() {
        let bundle = collect_traces(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &small_specs(),
            1,
        );
        let be = bundle.perf_records(WorkloadClass::BestEffort);
        assert!(!be.is_empty(), "no BE records collected");
        for r in &be {
            assert_eq!(r.history.len(), HISTORY_S);
            assert!(r.perf > 0.0);
        }
        // Early arrivals (before 120 s) are dropped.
        let reports = bundle.reports();
        let early = reports[0]
            .outcomes
            .iter()
            .filter(|o| o.arrived_s < HISTORY_S as f64 && o.class == WorkloadClass::BestEffort)
            .count();
        let total = reports[0]
            .outcomes
            .iter()
            .filter(|o| o.class == WorkloadClass::BestEffort)
            .count();
        let first_report_records = bundle
            .perf_records(WorkloadClass::BestEffort)
            .iter()
            .filter(|r| {
                reports[0]
                    .outcomes
                    .iter()
                    .any(|o| o.name == r.app && (o.runtime_s as f32 - r.perf).abs() < 1e-3)
            })
            .count();
        assert!(first_report_records <= total);
        let _ = early;
    }

    #[test]
    fn lc_records_use_p99() {
        let bundle = collect_traces(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &small_specs(),
            2,
        );
        let lc = bundle.perf_records(WorkloadClass::LatencyCritical);
        for r in &lc {
            assert!(r.app == "redis" || r.app == "memcached");
            // p99 in milliseconds — plausible range.
            assert!((0.05..250.0).contains(&r.perf), "{}: {}", r.app, r.perf);
        }
    }

    #[test]
    fn trace_source_replays_sorted_arrivals() {
        use adrias_workloads::ArrivalSource;
        let bundle = collect_traces(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &small_specs(),
            1,
        );
        let times = bundle.arrival_times(0);
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let mut src = bundle.trace_source(0);
        let mut replayed = Vec::new();
        while let Some(t) = src.next_time() {
            replayed.push(t);
        }
        assert_eq!(replayed, times);
        assert!(src.exhausted());
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let specs = small_specs();
        let seq = collect_traces(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &specs,
            1,
        );
        let par = collect_traces(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &specs,
            2,
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.reports().iter().zip(par.reports()) {
            assert_eq!(a.outcomes.len(), b.outcomes.len());
            assert_eq!(a.link_bytes, b.link_bytes);
        }
    }
}
