//! Application-signature capture.
//!
//! A signature is "the sequence of monitored metrics during application's
//! execution in isolation on remote memory mode" (§V-B2). This module
//! captures one per catalog application by running it alone on an empty
//! testbed in remote mode.

use adrias_orchestrator::engine::{run_isolated, EngineConfig};
use adrias_sim::TestbedConfig;
use adrias_workloads::{AppSignature, MemoryMode, WorkloadCatalog, WorkloadClass};

/// How long a latency-critical service is profiled for its signature,
/// seconds (BE apps run to completion instead).
const LC_SIGNATURE_WINDOW_S: f32 = 120.0;

/// Captures signatures for every BE and LC application in `catalog`.
///
/// # Examples
///
/// ```no_run
/// use adrias_scenarios::collect_signatures;
/// use adrias_sim::TestbedConfig;
/// use adrias_workloads::WorkloadCatalog;
///
/// let sigs = collect_signatures(TestbedConfig::paper(), &WorkloadCatalog::paper(), 1);
/// assert_eq!(sigs.len(), 19); // 17 Spark + Redis + Memcached
/// ```
pub fn collect_signatures(
    testbed_cfg: TestbedConfig,
    catalog: &WorkloadCatalog,
    seed: u64,
) -> Vec<AppSignature> {
    catalog
        .entries()
        .iter()
        .filter(|w| w.class() != WorkloadClass::Interference)
        .map(|w| {
            let profile = w.clone();
            // LC services are open-ended; profile a fixed window.
            let engine = EngineConfig {
                seed,
                lc_latency_samples: 1000,
                ..EngineConfig::default()
            };
            if w.class() == WorkloadClass::LatencyCritical {
                // Re-deploy with a bounded duration via a fresh testbed.
                let mut tb = adrias_sim::Testbed::new(testbed_cfg, seed);
                let id = tb.deploy_for(profile.clone(), MemoryMode::Remote, LC_SIGNATURE_WINDOW_S);
                let mut rows = Vec::new();
                loop {
                    let report = tb.step();
                    rows.push(*report.sample.vec());
                    if report.finished.iter().any(|c| c.id == id) {
                        break;
                    }
                }
                AppSignature::new(w.name(), rows)
            } else {
                let (_, trace) = run_isolated(testbed_cfg, engine, profile, MemoryMode::Remote);
                AppSignature::new(w.name(), trace.iter().map(|s| *s.vec()).collect())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_telemetry::Metric;
    use adrias_workloads::spark;

    #[test]
    fn signatures_cover_be_and_lc_apps() {
        let catalog = WorkloadCatalog::from_profiles(vec![
            spark::by_name("gmm").unwrap(),
            adrias_workloads::keyvalue::redis(),
            adrias_workloads::ibench::profile(adrias_workloads::IbenchKind::Cpu),
        ]);
        let sigs = collect_signatures(TestbedConfig::noiseless(), &catalog, 5);
        let names: Vec<&str> = sigs.iter().map(|s| s.app_name()).collect();
        assert_eq!(names, vec!["gmm", "redis"], "iBench excluded");
    }

    #[test]
    fn be_signature_length_tracks_remote_runtime() {
        let catalog = WorkloadCatalog::from_profiles(vec![spark::by_name("nweight").unwrap()]);
        let sigs = collect_signatures(TestbedConfig::noiseless(), &catalog, 5);
        let expected = spark::by_name("nweight").unwrap().base_runtime_s()
            * spark::by_name("nweight").unwrap().remote_penalty();
        let len = sigs[0].len() as f32;
        assert!(
            (len - expected).abs() <= 3.0,
            "signature length {len} vs expected ≈{expected}"
        );
    }

    #[test]
    fn signatures_carry_remote_traffic() {
        let catalog = WorkloadCatalog::from_profiles(vec![spark::by_name("lr").unwrap()]);
        let sigs = collect_signatures(TestbedConfig::noiseless(), &catalog, 5);
        let mean = sigs[0].mean_vec();
        assert!(
            mean.get(Metric::LinkFlitsRx) > 0.0,
            "isolated remote runs must show link traffic"
        );
    }
}
