//! Deterministic arrival-schedule generation.

use adrias_core::rng::Xoshiro256pp;
use adrias_core::rng::{Rng, SeedableRng};

use adrias_orchestrator::ScheduledArrival;
use adrias_workloads::{MemoryMode, WorkloadCatalog, WorkloadClass};

use crate::spec::ScenarioSpec;

/// How memory modes are assigned in a generated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStyle {
    /// Every arrival gets a random forced mode (offline trace
    /// collection, §V-B1).
    RandomForced,
    /// BE/LC arrivals are policy-decided; interference micro-benchmarks
    /// keep a random forced mode (orchestration evaluation, §VI-B).
    PolicyDecided,
}

/// Residency bounds for open-ended iBench stressors, seconds.
const IBENCH_MIN_S: f32 = 120.0;
const IBENCH_MAX_S: f32 = 600.0;

/// Builds the arrival schedule for `spec` over `catalog`.
///
/// The schedule is fully determined by `spec.seed`, so the same scenario
/// can be replayed under different policies: arrival instants, workload
/// choices, iBench durations and every forced mode are identical across
/// replays. Only whether BE/LC modes are forced differs by `style`.
///
/// # Examples
///
/// ```
/// use adrias_scenarios::schedule::{build_schedule, PlacementStyle};
/// use adrias_scenarios::ScenarioSpec;
/// use adrias_workloads::WorkloadCatalog;
///
/// let spec = ScenarioSpec::new(5.0, 20.0, 600.0, 1);
/// let catalog = WorkloadCatalog::paper();
/// let schedule = build_schedule(&spec, &catalog, PlacementStyle::PolicyDecided);
/// assert!(!schedule.is_empty());
/// ```
pub fn build_schedule(
    spec: &ScenarioSpec,
    catalog: &WorkloadCatalog,
    style: PlacementStyle,
) -> Vec<ScheduledArrival> {
    let mut rng = Xoshiro256pp::seed_from_u64(spec.seed);
    let times = spec.arrivals().times_until(spec.duration_s, &mut rng);
    times
        .into_iter()
        .map(|at_s| {
            let profile = catalog.pick(&mut rng).clone();
            // Draw the random quantities unconditionally so the stream of
            // random numbers — and therefore the rest of the schedule —
            // does not depend on the placement style.
            let random_mode = if rng.gen_bool(0.5) {
                MemoryMode::Local
            } else {
                MemoryMode::Remote
            };
            let ibench_duration = rng.gen_range(IBENCH_MIN_S..=IBENCH_MAX_S);
            let mut arrival = ScheduledArrival::new(at_s, profile.clone());
            if profile.class() == WorkloadClass::Interference {
                arrival = arrival.with_duration(ibench_duration);
            }
            let force = match style {
                PlacementStyle::RandomForced => true,
                PlacementStyle::PolicyDecided => profile.class() == WorkloadClass::Interference,
            };
            if force {
                arrival = arrival.with_mode(random_mode);
            }
            arrival
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new(5.0, 25.0, 1200.0, 42)
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let catalog = WorkloadCatalog::paper();
        let a = build_schedule(&spec(), &catalog, PlacementStyle::RandomForced);
        let b = build_schedule(&spec(), &catalog, PlacementStyle::RandomForced);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_s, y.at_s);
            assert_eq!(x.profile.name(), y.profile.name());
            assert_eq!(x.forced_mode, y.forced_mode);
        }
    }

    #[test]
    fn styles_share_arrivals_and_ibench_modes() {
        let catalog = WorkloadCatalog::paper();
        let traced = build_schedule(&spec(), &catalog, PlacementStyle::RandomForced);
        let decided = build_schedule(&spec(), &catalog, PlacementStyle::PolicyDecided);
        assert_eq!(traced.len(), decided.len());
        for (t, d) in traced.iter().zip(&decided) {
            assert_eq!(t.at_s, d.at_s);
            assert_eq!(t.profile.name(), d.profile.name());
            if t.profile.class() == WorkloadClass::Interference {
                assert_eq!(t.forced_mode, d.forced_mode, "iBench modes must match");
            } else {
                assert!(t.forced_mode.is_some());
                assert!(d.forced_mode.is_none(), "BE/LC must be policy-decided");
            }
        }
    }

    #[test]
    fn trace_style_forces_every_mode() {
        let catalog = WorkloadCatalog::paper();
        let schedule = build_schedule(&spec(), &catalog, PlacementStyle::RandomForced);
        assert!(schedule.iter().all(|a| a.forced_mode.is_some()));
        // Both modes appear.
        assert!(schedule
            .iter()
            .any(|a| a.forced_mode == Some(MemoryMode::Local)));
        assert!(schedule
            .iter()
            .any(|a| a.forced_mode == Some(MemoryMode::Remote)));
    }

    #[test]
    fn ibench_arrivals_have_duration_overrides() {
        let catalog = WorkloadCatalog::paper();
        let schedule = build_schedule(&spec(), &catalog, PlacementStyle::RandomForced);
        for a in &schedule {
            if a.profile.class() == WorkloadClass::Interference {
                let d = a.duration_s.expect("iBench gets explicit duration");
                assert!((IBENCH_MIN_S..=IBENCH_MAX_S).contains(&d));
            } else {
                assert!(a.duration_s.is_none());
            }
        }
    }

    #[test]
    fn arrival_count_matches_congestion() {
        let catalog = WorkloadCatalog::paper();
        let heavy = build_schedule(
            &ScenarioSpec::new(5.0, 20.0, 1800.0, 3),
            &catalog,
            PlacementStyle::RandomForced,
        );
        let relaxed = build_schedule(
            &ScenarioSpec::new(5.0, 60.0, 1800.0, 3),
            &catalog,
            PlacementStyle::RandomForced,
        );
        assert!(heavy.len() > relaxed.len());
    }
}
