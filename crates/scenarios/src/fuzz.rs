//! Adversarial scenario fuzzer with differential QoS oracles
//! (ROADMAP item 5).
//!
//! The fuzzer drives the in-tree property engine (`adrias_core::prop`)
//! as a *scenario generator*: each [`FuzzCase`] bundles a random app
//! mix, an arrival shape (calm open arrivals up to closed-loop-like
//! bursts), a scenario seed and a link-degradation fault schedule
//! (latency spikes, throughput collapse, flapping — the classic
//! disaggregation failure modes). Every case is lowered onto the
//! observed engine path and run under the Adrias policy **and** the
//! Random / Round-Robin baselines; two differential oracles gate it:
//!
//! 1. **QoS consistency** — Adrias never *offloads* a latency-critical
//!    deployment whose own predicted remote p99 violates the QoS rule.
//!    Checked over the `adrias-obs` audit trail with
//!    [`adrias_orchestrator::qos::count_violations`]; on failure the
//!    offending [`adrias_obs::DecisionRecord`]s are exported as
//!    evidence via [`adrias_obs::to_jsonl_qos_counterexamples`].
//! 2. **Differential performance** — across a fuzzed suite, Adrias's
//!    median best-effort slowdown must not lose to either
//!    contention-oblivious baseline.
//!
//! Failing cases shrink through the engine's [`prop::falsify_from`]
//! machinery toward a minimal counterexample, ready to persist into
//! the versioned regression corpus (see [`crate::corpus`]). Every case
//! is bitwise reproducible from `(base_seed, case_index)` alone, at any
//! worker count: [`run_suite`] distributes cases over threads but folds
//! results in case order, and [`case_digest`] pins the exact bit
//! patterns of all three policy runs.

use adrias_core::prop::{
    self, collection, sample, Counterexample, PropFail, Strategy, VecStrategy,
};
use adrias_core::rng::Xoshiro256pp;
use adrias_core::thread::map_chunks;
use adrias_obs::{DecisionRule, Observer};
use adrias_orchestrator::engine::{
    run_schedule_observed_faulted, EngineConfig, FaultEvent, RunReport,
};
use adrias_orchestrator::qos::count_violations;
use adrias_orchestrator::{DecisionContext, Policy, RandomPolicy, RoundRobinPolicy};
use adrias_sim::{LinkConfig, TestbedConfig};
use adrias_workloads::{MemoryMode, WorkloadCatalog, WorkloadClass};

use crate::schedule::{build_schedule, PlacementStyle};
use crate::spec::ScenarioSpec;
use crate::stack::TrainedStack;

/// Which slice of the paper catalog a fuzzed scenario deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppMix {
    /// Best-effort analytics plus iBench stressors only — no
    /// latency-critical services (the QoS oracle is vacuous here, which
    /// is exactly why shrinking orders it first: a counterexample that
    /// survives must keep its LC deployments).
    BestEffortOnly,
    /// The full paper catalog.
    Full,
    /// The paper catalog with latency-critical services oversampled
    /// 3×, stressing the QoS path.
    LcHeavy,
}

impl AppMix {
    /// Builds the evaluation catalog for this mix.
    pub fn catalog(self) -> WorkloadCatalog {
        let paper = WorkloadCatalog::paper();
        match self {
            AppMix::Full => paper,
            AppMix::BestEffortOnly => WorkloadCatalog::from_profiles(
                paper
                    .entries()
                    .iter()
                    .filter(|p| p.class() != WorkloadClass::LatencyCritical)
                    .cloned()
                    .collect(),
            ),
            AppMix::LcHeavy => {
                let mut entries = paper.entries().to_vec();
                let lc: Vec<_> = paper.latency_critical().cloned().collect();
                for _ in 0..2 {
                    entries.extend(lc.iter().cloned());
                }
                WorkloadCatalog::from_profiles(entries)
            }
        }
    }

    /// Stable on-disk tag (see [`crate::corpus`]).
    pub fn tag(self) -> &'static str {
        match self {
            AppMix::BestEffortOnly => "be_only",
            AppMix::Full => "full",
            AppMix::LcHeavy => "lc_heavy",
        }
    }

    /// Inverse of [`AppMix::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "be_only" => Some(AppMix::BestEffortOnly),
            "full" => Some(AppMix::Full),
            "lc_heavy" => Some(AppMix::LcHeavy),
            _ => None,
        }
    }
}

/// Arrival-process shape: spawn-interval bounds for the scenario's
/// open-arrival generator, from the paper's relaxed corpus down to
/// back-to-back bursts that approximate a closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalShape {
    /// Relaxed open arrivals, 5–60 s apart (paper's calmest corpus).
    Calm,
    /// The paper's dense corpus, 5–25 s apart.
    Steady,
    /// Near-closed bursts, 1–6 s apart: the testbed rarely drains, so
    /// contention stays saturated.
    Burst,
}

impl ArrivalShape {
    /// `(spawn_min_s, spawn_max_s)` for [`ScenarioSpec::new`].
    pub fn spawn_bounds(self) -> (f64, f64) {
        match self {
            ArrivalShape::Calm => (5.0, 60.0),
            ArrivalShape::Steady => (5.0, 25.0),
            ArrivalShape::Burst => (1.0, 6.0),
        }
    }

    /// Stable on-disk tag.
    pub fn tag(self) -> &'static str {
        match self {
            ArrivalShape::Calm => "calm",
            ArrivalShape::Steady => "steady",
            ArrivalShape::Burst => "burst",
        }
    }

    /// Inverse of [`ArrivalShape::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "calm" => Some(ArrivalShape::Calm),
            "steady" => Some(ArrivalShape::Steady),
            "burst" => Some(ArrivalShape::Burst),
            _ => None,
        }
    }
}

/// A link-degradation failure mode, concretized into [`LinkConfig`]s
/// by [`FuzzCase::fault_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Latency spike: base/saturated cycles and remote latency jump
    /// ~2.5×; capacity is untouched.
    LatencySpike,
    /// Throughput collapse: link capacity drops to a tenth; latencies
    /// are untouched.
    ThroughputCollapse,
    /// Flap: full degradation (collapse + spike) that heals back to the
    /// paper link [`FLAP_HEAL_AFTER_S`] later.
    Flap,
}

impl FaultKind {
    /// Stable on-disk tag.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::LatencySpike => "latency_spike",
            FaultKind::ThroughputCollapse => "throughput_collapse",
            FaultKind::Flap => "flap",
        }
    }

    /// Inverse of [`FaultKind::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "latency_spike" => Some(FaultKind::LatencySpike),
            "throughput_collapse" => Some(FaultKind::ThroughputCollapse),
            "flap" => Some(FaultKind::Flap),
            _ => None,
        }
    }
}

/// Seconds between a [`FaultKind::Flap`] degradation and its heal event.
pub const FLAP_HEAL_AFTER_S: f64 = 45.0;

/// One scheduled link fault: a trigger instant as a percentage of the
/// scenario duration, plus the failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Trigger time, percent of `duration_s` (palette: 10/25/50/75).
    pub at_pct: u8,
    /// Which failure mode fires.
    pub kind: FaultKind,
}

/// A latency-spiked variant of the paper link.
fn spiked_link() -> LinkConfig {
    LinkConfig {
        base_latency_cycles: 850.0,
        saturated_latency_cycles: 1700.0,
        remote_latency_ns: 2400.0,
        ..LinkConfig::paper()
    }
}

/// A throughput-collapsed variant of the paper link.
fn collapsed_link() -> LinkConfig {
    LinkConfig {
        effective_cap_gbps: 0.25,
        ..LinkConfig::paper()
    }
}

/// A fully degraded link: collapse and spike at once (the flap's "down"
/// state).
fn flapped_link() -> LinkConfig {
    LinkConfig {
        effective_cap_gbps: 0.25,
        ..spiked_link()
    }
}

/// One generated adversarial scenario: everything needed to replay it
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Catalog slice deployed.
    pub mix: AppMix,
    /// Arrival-process shape.
    pub arrivals: ArrivalShape,
    /// Scenario duration, seconds (palette: 480/640/800).
    pub duration_s: u32,
    /// Scenario seed (drives arrivals, app choice, forced modes and the
    /// engine's latency RNG via the `seed ^ 0xE6E` convention).
    pub seed: u64,
    /// Link-degradation schedule, unordered; lowered and sorted by
    /// [`FuzzCase::fault_events`].
    pub faults: Vec<FaultSpec>,
}

impl FuzzCase {
    /// The scenario spec this case lowers to.
    pub fn spec(&self) -> ScenarioSpec {
        let (lo, hi) = self.arrivals.spawn_bounds();
        ScenarioSpec::new(lo, hi, f64::from(self.duration_s), self.seed)
    }

    /// Lowers the fault schedule into sorted engine [`FaultEvent`]s.
    /// Each flap contributes a degrade *and* a heal event; when several
    /// events share an instant the engine applies them in order, so the
    /// last one wins.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        let mut events = Vec::with_capacity(self.faults.len() * 2);
        for f in &self.faults {
            let at_s = f64::from(self.duration_s) * f64::from(f.at_pct) / 100.0;
            match f.kind {
                FaultKind::LatencySpike => events.push(FaultEvent {
                    at_s,
                    link: spiked_link(),
                }),
                FaultKind::ThroughputCollapse => events.push(FaultEvent {
                    at_s,
                    link: collapsed_link(),
                }),
                FaultKind::Flap => {
                    events.push(FaultEvent {
                        at_s,
                        link: flapped_link(),
                    });
                    events.push(FaultEvent {
                        at_s: at_s + FLAP_HEAL_AFTER_S,
                        link: LinkConfig::paper(),
                    });
                }
            }
        }
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        events
    }
}

/// The tuple shadow of [`FuzzCase`] that the generic tuple/vec
/// strategies understand.
type CaseTuple = (AppMix, ArrivalShape, u32, u64, Vec<FaultSpec>);

fn case_to_tuple(c: &FuzzCase) -> CaseTuple {
    (c.mix, c.arrivals, c.duration_s, c.seed, c.faults.clone())
}

fn case_from_tuple((mix, arrivals, duration_s, seed, faults): CaseTuple) -> FuzzCase {
    FuzzCase {
        mix,
        arrivals,
        duration_s,
        seed,
        faults,
    }
}

/// Strategy for one [`FaultSpec`], shrinking toward early, boring
/// latency spikes.
#[derive(Debug, Clone)]
pub struct FaultSpecStrategy {
    inner: (sample::Select<u8>, sample::Select<FaultKind>),
}

impl Strategy for FaultSpecStrategy {
    type Value = FaultSpec;

    fn generate(&self, rng: &mut Xoshiro256pp) -> FaultSpec {
        let (at_pct, kind) = self.inner.generate(rng);
        FaultSpec { at_pct, kind }
    }

    fn shrink(&self, value: &FaultSpec) -> Vec<FaultSpec> {
        self.inner
            .shrink(&(value.at_pct, value.kind))
            .into_iter()
            .map(|(at_pct, kind)| FaultSpec { at_pct, kind })
            .collect()
    }
}

/// Strategy over whole [`FuzzCase`]s: every field draws from a
/// simplest-first palette, so shrinking walks toward a BE-only, calm,
/// short, fault-free scenario with seed 0 — any structure that survives
/// shrinking is load-bearing for the failure.
#[derive(Debug, Clone)]
pub struct FuzzCaseStrategy {
    inner: CaseTupleStrategy,
}

/// The field-wise strategy tuple behind [`FuzzCaseStrategy`].
type CaseTupleStrategy = (
    sample::Select<AppMix>,
    sample::Select<ArrivalShape>,
    sample::Select<u32>,
    core::ops::Range<u64>,
    VecStrategy<FaultSpecStrategy>,
);

impl Strategy for FuzzCaseStrategy {
    type Value = FuzzCase;

    fn generate(&self, rng: &mut Xoshiro256pp) -> FuzzCase {
        case_from_tuple(self.inner.generate(rng))
    }

    fn shrink(&self, value: &FuzzCase) -> Vec<FuzzCase> {
        self.inner
            .shrink(&case_to_tuple(value))
            .into_iter()
            .map(case_from_tuple)
            .collect()
    }
}

/// The scenario-space strategy used by the adversarial runner.
pub fn case_strategy() -> FuzzCaseStrategy {
    FuzzCaseStrategy {
        inner: (
            sample::select(vec![AppMix::BestEffortOnly, AppMix::Full, AppMix::LcHeavy]),
            sample::select(vec![
                ArrivalShape::Calm,
                ArrivalShape::Steady,
                ArrivalShape::Burst,
            ]),
            sample::select(vec![480, 640, 800]),
            0u64..4096,
            collection::vec(
                FaultSpecStrategy {
                    inner: (
                        sample::select(vec![10u8, 25, 50, 75]),
                        sample::select(vec![
                            FaultKind::LatencySpike,
                            FaultKind::ThroughputCollapse,
                            FaultKind::Flap,
                        ]),
                    ),
                },
                0..4,
            ),
        ),
    }
}

/// Generates the deterministic case list for `(base_seed, n)`: case `i`
/// regenerates from [`prop::case_seed`]`(base, i)` alone, matching the
/// coordinates [`prop::falsify_from`] reports.
pub fn generate_cases(base_seed: u64, n: u64) -> Vec<FuzzCase> {
    use adrias_core::rng::SeedableRng;
    let strat = case_strategy();
    (0..n)
        .map(|case| {
            let mut rng = Xoshiro256pp::seed_from_u64(prop::case_seed(base_seed, case));
            strat.generate(&mut rng)
        })
        .collect()
}

/// Fixed parameters of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// The testbed model (noiseless by default so oracles are exact).
    pub testbed: TestbedConfig,
    /// β-slack handed to the Adrias policy.
    pub beta: f32,
    /// The QoS constraint both the engine and oracle 1 enforce, ms.
    pub qos_p99_ms: f32,
    /// Test-only: arm the seeded QoS-rule bypass inside the Adrias
    /// policy so the fuzzer's find-and-shrink path can be validated
    /// end to end against a known-bad implementation.
    pub qos_bypass: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            testbed: TestbedConfig::noiseless(),
            beta: 0.7,
            qos_p99_ms: 5.0,
            qos_bypass: false,
        }
    }
}

/// Everything one case produced under the three policies.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case that ran.
    pub case: FuzzCase,
    /// Bit-level digest over all three reports (see [`case_digest`]).
    pub digest: u64,
    /// Oracle 1: QoS-violating offloads in the Adrias audit trail.
    pub qos_violations: usize,
    /// Audit-trail evidence (decision JSONL) when oracle 1 failed;
    /// empty otherwise.
    pub qos_evidence: String,
    /// Policy-decided best-effort mean slowdowns under Adrias.
    pub adrias_slowdowns: Vec<f32>,
    /// …under the Random baseline.
    pub random_slowdowns: Vec<f32>,
    /// …under the Round-Robin baseline.
    pub rr_slowdowns: Vec<f32>,
}

/// FNV-1a over a fingerprint string: stable, dependency-free, and
/// sensitive to every bit the determinism contract pins.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fingerprint_report(out: &mut String, r: &RunReport) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "|{} end={:016x} link={:016x} unfinished={}",
        r.policy,
        r.end_time_s.to_bits(),
        r.link_bytes.to_bits(),
        r.unfinished
    );
    for o in &r.outcomes {
        let _ = write!(
            out,
            ";{}:{}:{:016x}:{:08x}:{:08x}",
            o.name,
            o.mode,
            o.runtime_s.to_bits(),
            o.mean_slowdown.to_bits(),
            o.p99_ms.unwrap_or(0.0).to_bits()
        );
    }
}

/// Digest of one case's differential run: policy names, every outcome's
/// placement and runtime/slowdown/p99 bit patterns, link bytes, end
/// times, and the oracle-1 violation count. Two runs of the same case
/// agree on this digest iff they agree on every pinned bit.
pub fn case_digest(reports: &[&RunReport], qos_violations: usize) -> u64 {
    let mut fp = String::new();
    for r in reports {
        fingerprint_report(&mut fp, r);
    }
    use std::fmt::Write as _;
    let _ = write!(fp, "|violations={qos_violations}");
    fnv1a(fp.as_bytes())
}

/// Wrapper so heterogeneous policies can share the engine call path.
enum AnyPolicy {
    Adrias(Box<adrias_orchestrator::AdriasPolicy>),
    Random(RandomPolicy),
    Rr(RoundRobinPolicy),
}

impl Policy for AnyPolicy {
    fn name(&self) -> &str {
        match self {
            AnyPolicy::Adrias(p) => p.name(),
            AnyPolicy::Random(p) => p.name(),
            AnyPolicy::Rr(p) => p.name(),
        }
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> MemoryMode {
        match self {
            AnyPolicy::Adrias(p) => p.decide(ctx),
            AnyPolicy::Random(p) => p.decide(ctx),
            AnyPolicy::Rr(p) => p.decide(ctx),
        }
    }

    // Must forward: the default impl would erase the decision rule and
    // predictions from the audit trail, blinding the QoS oracle.
    fn decide_explained(
        &mut self,
        ctx: &DecisionContext<'_>,
    ) -> adrias_orchestrator::ExplainedDecision {
        match self {
            AnyPolicy::Adrias(p) => p.decide_explained(ctx),
            AnyPolicy::Random(p) => p.decide_explained(ctx),
            AnyPolicy::Rr(p) => p.decide_explained(ctx),
        }
    }

    // Forwarded so lifecycle spans in post-mortem bundles carry the
    // real fast/slow lane instead of the baseline "direct" default.
    fn lane(&self) -> &'static str {
        match self {
            AnyPolicy::Adrias(p) => p.lane(),
            AnyPolicy::Random(p) => p.lane(),
            AnyPolicy::Rr(p) => p.lane(),
        }
    }

    fn set_wall_profiling(&mut self, enabled: bool) {
        match self {
            AnyPolicy::Adrias(p) => p.set_wall_profiling(enabled),
            AnyPolicy::Random(p) => p.set_wall_profiling(enabled),
            AnyPolicy::Rr(p) => p.set_wall_profiling(enabled),
        }
    }

    fn take_forward_wall_ns(&mut self) -> u64 {
        match self {
            AnyPolicy::Adrias(p) => p.take_forward_wall_ns(),
            AnyPolicy::Random(p) => p.take_forward_wall_ns(),
            AnyPolicy::Rr(p) => p.take_forward_wall_ns(),
        }
    }
}

/// Runs one policy over the case's faulted scenario, observed.
fn run_policy(cfg: &FuzzConfig, case: &FuzzCase, policy: &mut AnyPolicy) -> (RunReport, Observer) {
    let spec = case.spec();
    let catalog = case.mix.catalog();
    let schedule = build_schedule(&spec, &catalog, PlacementStyle::PolicyDecided);
    let faults = case.fault_events();
    let engine = EngineConfig {
        seed: spec.seed ^ 0xE6E,
        qos_p99_ms: Some(cfg.qos_p99_ms),
        ..EngineConfig::default()
    };
    let mut obs = Observer::default();
    let report =
        run_schedule_observed_faulted(cfg.testbed, engine, &schedule, &faults, policy, &mut obs);
    (report, obs)
}

fn be_slowdowns(report: &RunReport) -> Vec<f32> {
    report
        .decided_of_class(WorkloadClass::BestEffort)
        .map(|o| o.mean_slowdown)
        .collect()
}

/// Counts oracle-1 violations in an Adrias audit trail: collect the
/// predicted remote p99 of every audited `qos_threshold` decision that
/// actually offloaded, and run [`count_violations`] against the rule's
/// own threshold. Missing predictions count as violations (rendered as
/// NaN so `count_violations` flags them).
pub fn audit_qos_violations(obs: &Observer, qos_p99_ms: f32) -> usize {
    let offload_preds: Vec<f32> = obs
        .audit
        .records()
        .iter()
        .filter(|r| {
            matches!(r.input.rule, DecisionRule::QosThreshold { .. })
                && r.input.chosen == MemoryMode::Remote
        })
        .map(|r| r.input.pred_remote.unwrap_or(f32::NAN))
        .collect();
    count_violations(&offload_preds, qos_p99_ms)
}

/// Runs one case under Adrias and both baselines and evaluates the
/// per-case oracle. Bitwise deterministic in `(cfg, case)`.
pub fn run_case(stack: &TrainedStack, cfg: &FuzzConfig, case: &FuzzCase) -> CaseOutcome {
    let mut adrias = {
        let mut p = stack.policy(cfg.beta, cfg.qos_p99_ms);
        if cfg.qos_bypass {
            p.set_test_qos_bypass(true);
        }
        AnyPolicy::Adrias(Box::new(p))
    };
    let (adrias_report, adrias_obs) = run_policy(cfg, case, &mut adrias);
    let qos_violations = audit_qos_violations(&adrias_obs, cfg.qos_p99_ms);
    let qos_evidence = if qos_violations > 0 {
        adrias_obs::to_jsonl_qos_counterexamples(&adrias_obs, cfg.qos_p99_ms)
    } else {
        String::new()
    };

    let mut random = AnyPolicy::Random(RandomPolicy::new(case.seed ^ 0xBA5E));
    let (random_report, _) = run_policy(cfg, case, &mut random);
    let mut rr = AnyPolicy::Rr(RoundRobinPolicy::new());
    let (rr_report, _) = run_policy(cfg, case, &mut rr);

    let digest = case_digest(
        &[&adrias_report, &random_report, &rr_report],
        qos_violations,
    );
    CaseOutcome {
        case: case.clone(),
        digest,
        qos_violations,
        qos_evidence,
        adrias_slowdowns: be_slowdowns(&adrias_report),
        random_slowdowns: be_slowdowns(&random_report),
        rr_slowdowns: be_slowdowns(&rr_report),
    }
}

/// Suite-level verdict over a batch of case outcomes.
#[derive(Debug, Clone)]
pub struct SuiteVerdict {
    /// Indices of cases that failed oracle 1 (QoS consistency).
    pub qos_failures: Vec<usize>,
    /// Median policy-decided BE slowdown under Adrias.
    pub adrias_median: f32,
    /// …under the Random baseline.
    pub random_median: f32,
    /// …under the Round-Robin baseline.
    pub rr_median: f32,
    /// Order-sensitive fold of the per-case digests: worker-count
    /// invariant by construction, and any bit drift in any case flips
    /// it.
    pub suite_digest: u64,
}

impl SuiteVerdict {
    /// Oracle 2: the suite-median Adrias slowdown does not lose to
    /// either baseline.
    pub fn differential_ok(&self) -> bool {
        self.adrias_median <= self.random_median && self.adrias_median <= self.rr_median
    }

    /// Both oracles hold.
    pub fn ok(&self) -> bool {
        self.qos_failures.is_empty() && self.differential_ok()
    }
}

/// A full fuzzing (or replay) pass: per-case outcomes in case order
/// plus the suite verdict.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Per-case outcomes, in input order.
    pub outcomes: Vec<CaseOutcome>,
    /// The two-oracle verdict.
    pub verdict: SuiteVerdict,
}

/// Runs every case across `workers` threads and folds outcomes in case
/// order, so the report — digests included — is identical at any
/// worker count.
///
/// # Panics
///
/// Panics if `cases` is empty or `workers` is zero.
pub fn run_suite(
    stack: &TrainedStack,
    cfg: &FuzzConfig,
    cases: &[FuzzCase],
    workers: usize,
) -> SuiteReport {
    assert!(!cases.is_empty(), "no cases to run");
    assert!(workers > 0, "need at least one worker thread");
    let outcomes: Vec<CaseOutcome> = map_chunks(cases, workers, |chunk| {
        chunk
            .iter()
            .map(|case| run_case(stack, cfg, case))
            .collect()
    });

    let qos_failures: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.qos_violations > 0)
        .map(|(i, _)| i)
        .collect();
    let pool = |pick: fn(&CaseOutcome) -> &[f32]| -> Vec<f32> {
        outcomes
            .iter()
            .flat_map(|o| pick(o).iter().copied())
            .collect()
    };
    let adrias_median = crate::runner::median(&pool(|o| &o.adrias_slowdowns));
    let random_median = crate::runner::median(&pool(|o| &o.random_slowdowns));
    let rr_median = crate::runner::median(&pool(|o| &o.rr_slowdowns));

    let mut fp = String::new();
    for o in &outcomes {
        use std::fmt::Write as _;
        let _ = write!(fp, "{:016x};", o.digest);
    }
    let verdict = SuiteVerdict {
        qos_failures,
        adrias_median,
        random_median,
        rr_median,
        suite_digest: fnv1a(fp.as_bytes()),
    };
    SuiteReport { outcomes, verdict }
}

/// One corpus case's replay result.
#[derive(Debug, Clone)]
pub struct ReplayCaseResult {
    /// Corpus id of the case.
    pub id: String,
    /// Digest the manifest promised.
    pub expected_digest: u64,
    /// What the replay actually produced.
    pub outcome: CaseOutcome,
}

impl ReplayCaseResult {
    /// Bitwise reproduction held.
    pub fn digest_ok(&self) -> bool {
        self.outcome.digest == self.expected_digest
    }
}

/// Replay verdict over a whole corpus: the regular two-oracle suite
/// verdict plus the bit-reproduction gate against recorded digests.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-case results, in corpus (manifest) order.
    pub results: Vec<ReplayCaseResult>,
    /// The two-oracle verdict over the replayed suite.
    pub verdict: SuiteVerdict,
}

impl ReplayReport {
    /// Ids of cases whose digest drifted from the manifest.
    pub fn digest_mismatches(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|r| !r.digest_ok())
            .map(|r| r.id.as_str())
            .collect()
    }

    /// The corpus replays green: both oracles hold and every case
    /// reproduced its recorded digest bit for bit.
    pub fn ok(&self) -> bool {
        self.verdict.ok() && self.results.iter().all(ReplayCaseResult::digest_ok)
    }
}

/// Replays a loaded corpus as a regression suite (the CI gate): every
/// case must pass both oracles *and* reproduce the digest recorded at
/// promotion time, at any worker count.
///
/// # Panics
///
/// Panics if `entries` is empty or `workers` is zero.
pub fn replay_corpus(
    stack: &TrainedStack,
    cfg: &FuzzConfig,
    entries: &[crate::corpus::CorpusEntry],
    workers: usize,
) -> ReplayReport {
    let cases: Vec<FuzzCase> = entries.iter().map(|e| e.case.clone()).collect();
    let suite = run_suite(stack, cfg, &cases, workers);
    let results = entries
        .iter()
        .zip(suite.outcomes)
        .map(|(e, outcome)| ReplayCaseResult {
            id: e.id.clone(),
            expected_digest: e.digest,
            outcome,
        })
        .collect();
    ReplayReport {
        results,
        verdict: suite.verdict,
    }
}

/// Replays a case's Adrias leg and dumps the flight recorder's
/// post-mortem bundle into `dir`: the last popped engine events, the
/// QoS counterexample evidence, the metrics/sketch registry snapshot
/// and the lifecycle spans (`flight.jsonl`, `qos_counterexamples.jsonl`,
/// `metrics.jsonl`, `spans.jsonl`). This is the forensic artifact the
/// adversarial runner persists next to each shrunk counterexample, and
/// the seeded-bypass selfcheck asserts it is non-empty.
///
/// Returns the oracle-1 violation count observed during the replay.
///
/// # Errors
///
/// Propagates any filesystem failure from the bundle writer as a
/// rendered message.
pub fn dump_post_mortem(
    stack: &TrainedStack,
    cfg: &FuzzConfig,
    case: &FuzzCase,
    dir: &std::path::Path,
) -> Result<usize, String> {
    let mut adrias = {
        let mut p = stack.policy(cfg.beta, cfg.qos_p99_ms);
        if cfg.qos_bypass {
            p.set_test_qos_bypass(true);
        }
        AnyPolicy::Adrias(Box::new(p))
    };
    let (_, obs) = run_policy(cfg, case, &mut adrias);
    let violations = audit_qos_violations(&obs, cfg.qos_p99_ms);
    adrias_obs::write_post_mortem(&obs, dir, cfg.qos_p99_ms).map_err(|e| e.to_string())?;
    Ok(violations)
}

/// Oracle-1 check in the shape [`prop::falsify_from`] wants: runs only
/// the Adrias leg (the baselines don't participate in the QoS oracle),
/// so shrinking stays cheap.
fn qos_check(stack: &TrainedStack, cfg: &FuzzConfig, case: &FuzzCase) -> Result<(), PropFail> {
    let mut adrias = {
        let mut p = stack.policy(cfg.beta, cfg.qos_p99_ms);
        if cfg.qos_bypass {
            p.set_test_qos_bypass(true);
        }
        AnyPolicy::Adrias(Box::new(p))
    };
    let (_, obs) = run_policy(cfg, case, &mut adrias);
    let violations = audit_qos_violations(&obs, cfg.qos_p99_ms);
    if violations > 0 {
        Err(PropFail::new(
            format!(
                "QoS oracle violated: {violations} offloaded LC deployment(s) with predicted \
                 remote p99 above {} ms",
                cfg.qos_p99_ms
            ),
            file!(),
            line!(),
        ))
    } else {
        Ok(())
    }
}

/// Searches `cases` generated scenarios for an oracle-1 violation and
/// shrinks the first hit to a minimal counterexample. `None` when every
/// case passes. The returned coordinates `(base_seed, case)` replay the
/// original un-shrunk scenario via [`generate_cases`].
pub fn find_qos_counterexample(
    stack: &TrainedStack,
    cfg: &FuzzConfig,
    base_seed: u64,
    cases: u64,
) -> Option<Counterexample<FuzzCase>> {
    prop::falsify_from(base_seed, cases, &case_strategy(), |case| {
        qos_check(stack, cfg, &case)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic_and_seed_indexed() {
        let a = generate_cases(0xAD, 8);
        let b = generate_cases(0xAD, 8);
        assert_eq!(a, b);
        // Case i depends only on (base, i), not on how many cases were
        // asked for.
        let prefix = generate_cases(0xAD, 3);
        assert_eq!(&a[..3], &prefix[..]);
        // Different bases explore different scenarios.
        assert_ne!(a, generate_cases(0xAE, 8));
    }

    #[test]
    fn strategies_cover_the_palettes() {
        let cases = generate_cases(7, 64);
        assert!(cases.iter().any(|c| c.mix == AppMix::LcHeavy));
        assert!(cases.iter().any(|c| c.arrivals == ArrivalShape::Burst));
        assert!(cases.iter().any(|c| !c.faults.is_empty()));
        assert!(cases.iter().any(|c| c.faults.is_empty()));
        for c in &cases {
            assert!([480, 640, 800].contains(&c.duration_s));
            assert!(c.seed < 4096);
            assert!(c.faults.len() < 4);
        }
    }

    #[test]
    fn shrinking_moves_toward_the_simplest_scenario() {
        let strat = case_strategy();
        let case = FuzzCase {
            mix: AppMix::LcHeavy,
            arrivals: ArrivalShape::Burst,
            duration_s: 800,
            seed: 1024,
            faults: vec![
                FaultSpec {
                    at_pct: 75,
                    kind: FaultKind::Flap,
                },
                FaultSpec {
                    at_pct: 50,
                    kind: FaultKind::ThroughputCollapse,
                },
            ],
        };
        let cands = strat.shrink(&case);
        assert!(!cands.is_empty());
        // Field-wise candidates include the simplest mix, shape,
        // duration, seed 0 and a shorter fault list.
        assert!(cands.iter().any(|c| c.mix == AppMix::BestEffortOnly));
        assert!(cands.iter().any(|c| c.arrivals == ArrivalShape::Calm));
        assert!(cands.iter().any(|c| c.duration_s == 480));
        assert!(cands.iter().any(|c| c.seed == 0));
        assert!(cands.iter().any(|c| c.faults.len() < case.faults.len()));
        // The fully shrunk fixed point stops shrinking.
        let minimal = FuzzCase {
            mix: AppMix::BestEffortOnly,
            arrivals: ArrivalShape::Calm,
            duration_s: 480,
            seed: 0,
            faults: Vec::new(),
        };
        assert!(strat.shrink(&minimal).is_empty());
    }

    #[test]
    fn fault_events_are_sorted_and_flaps_heal() {
        let case = FuzzCase {
            mix: AppMix::Full,
            arrivals: ArrivalShape::Steady,
            duration_s: 800,
            seed: 1,
            faults: vec![
                FaultSpec {
                    at_pct: 75,
                    kind: FaultKind::LatencySpike,
                },
                FaultSpec {
                    at_pct: 10,
                    kind: FaultKind::Flap,
                },
            ],
        };
        let events = case.fault_events();
        assert_eq!(events.len(), 3, "flap contributes degrade + heal");
        assert!(events.windows(2).all(|w| w[0].at_s <= w[1].at_s));
        assert_eq!(events[0].at_s, 80.0);
        assert_eq!(events[1].at_s, 80.0 + FLAP_HEAL_AFTER_S);
        assert_eq!(events[1].link, LinkConfig::paper(), "flap heals");
        assert_eq!(events[2].at_s, 600.0);
    }

    #[test]
    fn app_mixes_slice_the_catalog_as_documented() {
        let be_only = AppMix::BestEffortOnly.catalog();
        assert_eq!(be_only.latency_critical().count(), 0);
        assert!(be_only.best_effort().count() > 0);
        let full = AppMix::Full.catalog();
        let heavy = AppMix::LcHeavy.catalog();
        assert_eq!(
            heavy.latency_critical().count(),
            3 * full.latency_critical().count()
        );
        for mix in [AppMix::BestEffortOnly, AppMix::Full, AppMix::LcHeavy] {
            assert_eq!(AppMix::from_tag(mix.tag()), Some(mix));
        }
    }

    #[test]
    fn digest_reacts_to_any_report_change() {
        let report = RunReport {
            policy: "adrias".into(),
            outcomes: Vec::new(),
            samples: Vec::new(),
            link_bytes: 1.5e9,
            end_time_s: 700.0,
            unfinished: 0,
        };
        let base = case_digest(&[&report], 0);
        assert_eq!(base, case_digest(&[&report], 0), "digest is a pure fn");
        let mut nudged = report.clone();
        nudged.link_bytes += 1.0;
        assert_ne!(base, case_digest(&[&nudged], 0));
        assert_ne!(base, case_digest(&[&report], 1), "violations are pinned");
    }
}
