//! The drifting-workload runner: phases of scenario replay with
//! residual tracking, drift detection and audited model hot-swaps.
//!
//! Each phase pairs a testbed configuration with a scenario spec, so a
//! corpus can start on the conditions the stack was trained on and then
//! shift — a congested or degraded interconnect, say — while one
//! persistent [`ResidualTracker`] watches predicted-vs-realised
//! residuals across the whole sequence. When the tracker's
//! Page–Hinkley detectors fire, the runner harvests the live capture
//! buffer, fine-tunes a versioned candidate model and pushes it through
//! the swap gate; the verdict (swap or rejection, with held-out
//! accuracy either way) lands in the observer's adaptation log.
//!
//! The runner reuses the exact schedule construction and engine seeding
//! of [`crate::runner::run_observed`], and the tracker only *reads*
//! engine state — so with adaptation disabled the per-phase reports are
//! bit-identical to plain (un)observed runs.

use adrias_obs::{DriftEvent, Observer, SwapVerdict};
use adrias_orchestrator::engine::{
    run_schedule_hooked, run_schedule_observed, EngineConfig, RunReport,
};
use adrias_orchestrator::{
    absorb_signatures_observed, fine_tune_candidate, gate_swap, harvest_perf_records, AdriasPolicy,
    GateConfig, ModelTarget, ObservedRun, ResidualConfig, ResidualTracker, TrackedRun,
};
use adrias_predictor::dataset::PerfRecord;
use adrias_predictor::PerfDataset;
use adrias_sim::TestbedConfig;
use adrias_workloads::{AppSignature, WorkloadCatalog, WorkloadClass};

use crate::schedule::{build_schedule, PlacementStyle};
use crate::spec::ScenarioSpec;

/// One phase of a drifting corpus: a testbed state and the scenario
/// replayed on it.
#[derive(Debug, Clone)]
pub struct DriftPhase {
    /// Testbed conditions during this phase.
    pub testbed: TestbedConfig,
    /// The arrival scenario.
    pub spec: ScenarioSpec,
}

impl DriftPhase {
    /// Pairs a testbed state with a scenario.
    pub fn new(testbed: TestbedConfig, spec: ScenarioSpec) -> Self {
        Self { testbed, spec }
    }
}

/// How the runner reacts to what the tracker sees.
#[derive(Debug, Clone, Copy)]
pub struct DriftRunConfig {
    /// Residual tracking and drift-detection parameters.
    pub residual: ResidualConfig,
    /// Swap-gate parameters.
    pub gate: GateConfig,
    /// Track residuals at all. When `false` the phases replay exactly
    /// like [`crate::runner::run_observed`] — no tracker hooks, no
    /// drift events, no adaptation; reports are bit-identical to the
    /// unobserved path.
    pub track: bool,
    /// React to drift with capture absorption, fine-tuning and the swap
    /// gate. With `track = true, adapt = false` the loop observes but
    /// never acts (useful for overhead measurement and bit-identity
    /// checks).
    pub adapt: bool,
    /// QoS constraint handed to the engine.
    pub qos_p99_ms: Option<f32>,
}

impl Default for DriftRunConfig {
    fn default() -> Self {
        Self {
            residual: ResidualConfig::default(),
            gate: GateConfig::default(),
            track: true,
            adapt: true,
            qos_p99_ms: None,
        }
    }
}

impl DriftRunConfig {
    /// Observe-only: track residuals and emit drift events but never
    /// fine-tune or swap.
    pub fn observe_only() -> Self {
        Self {
            adapt: false,
            ..Self::default()
        }
    }

    /// Fully disabled: phases replay exactly like plain observed runs.
    pub fn disabled() -> Self {
        Self {
            track: false,
            adapt: false,
            ..Self::default()
        }
    }
}

/// What one phase produced.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// The engine report of the phase.
    pub report: RunReport,
    /// Drift events the tracker flushed at the end of the phase.
    pub drifts: Vec<DriftEvent>,
    /// Signatures captured online and absorbed into the policy.
    pub signatures_absorbed: usize,
    /// Swap-gate verdicts taken in response to this phase's drift.
    pub verdicts: Vec<(ModelTarget, SwapVerdict)>,
}

/// The full drifting-corpus result.
#[derive(Debug, Clone)]
pub struct DriftRunResult {
    /// Per-phase outcomes, in phase order.
    pub phases: Vec<PhaseOutcome>,
}

impl DriftRunResult {
    /// Total drift events across all phases.
    pub fn total_drifts(&self) -> usize {
        self.phases.iter().map(|p| p.drifts.len()).sum()
    }

    /// Total accepted hot-swaps across all phases.
    pub fn total_swaps(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| p.verdicts.iter())
            .filter(|(_, v)| *v == SwapVerdict::Swapped)
            .count()
    }
}

/// Replays `phases` under `policy`, closing the §V-C online loop.
///
/// Per phase: replay the scenario with the tracker riding along, score
/// the system-state forecasts against the realised trace, flush the
/// residual histograms and drift events into `obs`. If drift fired and
/// adaptation is enabled: absorb any online-captured signatures, then
/// for every drifted model target harvest the capture buffer
/// (policy-decided outcomes of all phases so far), fine-tune a
/// versioned candidate on the index-based train split and run it
/// through the swap gate. Every capture, drift and swap lands in
/// `obs`'s adaptation log.
///
/// # Panics
///
/// Panics if `phases` is empty.
pub fn run_drift_phases(
    catalog: &WorkloadCatalog,
    phases: &[DriftPhase],
    policy: &mut AdriasPolicy,
    cfg: &DriftRunConfig,
    obs: &mut Observer,
) -> DriftRunResult {
    assert!(!phases.is_empty(), "no phases to run");
    let mut tracker = ResidualTracker::new(cfg.residual);
    // Scoring clone: `predict_batch` needs `&mut` scratch, and the
    // policy's own forecaster must stay untouched by the check.
    let mut scorer = policy.system_model().clone();
    let mut outcomes: Vec<PhaseOutcome> = Vec::with_capacity(phases.len());
    let mut capture_buffer: Vec<RunReport> = Vec::new();

    for phase in phases {
        let schedule = build_schedule(&phase.spec, catalog, PlacementStyle::PolicyDecided);
        let engine = EngineConfig {
            seed: phase.spec.seed ^ 0xE6E,
            qos_p99_ms: cfg.qos_p99_ms,
            ..EngineConfig::default()
        };
        let report = if cfg.track {
            let mut hooks = TrackedRun::new(&mut tracker, ObservedRun::new(obs));
            run_schedule_hooked(phase.testbed, engine, &schedule, policy, &mut hooks)
        } else {
            run_schedule_observed(phase.testbed, engine, &schedule, policy, obs)
        };

        let (drifts, signatures_absorbed, verdicts) = if cfg.track {
            tracker.score_system_forecasts(&report, &mut scorer);
            let drifts = tracker.flush(obs);
            capture_buffer.push(report.clone());
            if cfg.adapt && !drifts.is_empty() {
                let absorbed = absorb_signatures_observed(policy, &report, obs);
                let verdicts = adapt_to_drift(policy, &drifts, &capture_buffer, cfg, &report, obs);
                (drifts, absorbed, verdicts)
            } else {
                (drifts, 0, Vec::new())
            }
        } else {
            (Vec::new(), 0, Vec::new())
        };

        outcomes.push(PhaseOutcome {
            report,
            drifts,
            signatures_absorbed,
            verdicts,
        });
    }

    DriftRunResult { phases: outcomes }
}

/// Maps drifted residual streams to the model targets they implicate
/// and runs one fine-tune + gate cycle per target. A system-state
/// stream drift implicates the BE model (its Ŝ input shifted); the LC
/// stream implicates the LC model.
fn adapt_to_drift(
    policy: &mut AdriasPolicy,
    drifts: &[DriftEvent],
    capture_buffer: &[RunReport],
    cfg: &DriftRunConfig,
    report: &RunReport,
    obs: &mut Observer,
) -> Vec<(ModelTarget, SwapVerdict)> {
    let mut targets: Vec<ModelTarget> = Vec::new();
    for event in drifts {
        let target = if event.stream == "lc.rel_err" {
            ModelTarget::LatencyCritical
        } else {
            ModelTarget::BestEffort
        };
        if !targets.contains(&target) {
            targets.push(target);
        }
    }
    targets.sort_by_key(|t| t.tag());

    let signatures: Vec<AppSignature> = policy.signatures().into_iter().cloned().collect();
    let mut verdicts = Vec::new();
    for target in targets {
        let class = match target {
            ModelTarget::BestEffort => WorkloadClass::BestEffort,
            ModelTarget::LatencyCritical => WorkloadClass::LatencyCritical,
        };
        let records: Vec<PerfRecord> = capture_buffer
            .iter()
            .flat_map(|r| harvest_perf_records(r, class))
            .collect();
        if records.is_empty() {
            continue;
        }
        let dataset = PerfDataset::new(records, &signatures);
        let Some((train, holdout)) = dataset.split_holdout(cfg.gate.holdout_every) else {
            continue;
        };
        let incumbent = match target {
            ModelTarget::BestEffort => policy.be_model(),
            ModelTarget::LatencyCritical => policy.lc_model(),
        };
        let candidate = fine_tune_candidate(incumbent, &train, cfg.gate.fine_tune_epochs);
        let verdict = gate_swap(
            policy,
            target,
            candidate,
            &holdout,
            report.end_time_s,
            cfg.gate.min_margin,
            obs,
        );
        verdicts.push((target, verdict));
    }
    verdicts
}

/// A degraded interconnect for drift demos: the effective channel
/// throughput collapses to 1 Gbit/s and idle remote latency nearly
/// doubles — remote-mode performance falls well outside the
/// distribution a stack trained on [`TestbedConfig::noiseless`] saw.
pub fn degraded_testbed() -> TestbedConfig {
    let mut cfg = TestbedConfig::noiseless();
    cfg.link.effective_cap_gbps = 1.0;
    cfg.link.base_latency_cycles = 550.0;
    cfg.link.remote_latency_ns = 1600.0;
    cfg
}

/// The canonical drift-demo corpus: two phases on the training-time
/// testbed, then two on the degraded link. Deterministic in `seed`.
pub fn demo_phases(seed: u64) -> Vec<DriftPhase> {
    let stable = TestbedConfig::noiseless();
    let degraded = degraded_testbed();
    vec![
        DriftPhase::new(stable, ScenarioSpec::new(5.0, 25.0, 900.0, seed)),
        DriftPhase::new(stable, ScenarioSpec::new(5.0, 35.0, 900.0, seed ^ 0x1)),
        DriftPhase::new(degraded, ScenarioSpec::new(5.0, 25.0, 900.0, seed ^ 0x2)),
        DriftPhase::new(degraded, ScenarioSpec::new(5.0, 35.0, 900.0, seed ^ 0x3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_observed;
    use crate::stack::{train_stack, StackOptions};
    use adrias_workloads::WorkloadCatalog;
    use std::sync::OnceLock;

    fn quick_stack() -> &'static crate::stack::TrainedStack {
        static STACK: OnceLock<crate::stack::TrainedStack> = OnceLock::new();
        STACK.get_or_init(|| train_stack(&WorkloadCatalog::paper(), &StackOptions::quick()))
    }

    #[test]
    fn disabled_runner_matches_plain_observed_runs_bit_for_bit() {
        let catalog = WorkloadCatalog::paper();
        let stack = quick_stack();
        let phases = vec![
            DriftPhase::new(
                TestbedConfig::noiseless(),
                ScenarioSpec::new(5.0, 25.0, 700.0, 77),
            ),
            DriftPhase::new(degraded_testbed(), ScenarioSpec::new(5.0, 35.0, 700.0, 78)),
        ];

        let mut policy = stack.policy(0.8, 5.0);
        let mut obs = Observer::default();
        let result = run_drift_phases(
            &catalog,
            &phases,
            &mut policy,
            &DriftRunConfig::disabled(),
            &mut obs,
        );
        assert_eq!(result.total_drifts(), 0);
        assert_eq!(result.total_swaps(), 0);
        assert!(obs.adapt.is_empty(), "disabled mode records no adaptation");

        for (phase, outcome) in phases.iter().zip(&result.phases) {
            let mut plain_policy = stack.policy(0.8, 5.0);
            let mut plain_obs = Observer::default();
            let plain = run_observed(
                phase.testbed,
                &catalog,
                &phase.spec,
                Some(5.0),
                &mut plain_policy,
                &mut plain_obs,
            );
            assert_eq!(
                outcome.report.end_time_s.to_bits(),
                plain.end_time_s.to_bits()
            );
            assert_eq!(
                outcome.report.link_bytes.to_bits(),
                plain.link_bytes.to_bits()
            );
        }
    }

    #[test]
    fn observe_only_tracking_never_perturbs_decisions() {
        let catalog = WorkloadCatalog::paper();
        let stack = quick_stack();
        let phases = vec![DriftPhase::new(
            degraded_testbed(),
            ScenarioSpec::new(5.0, 25.0, 700.0, 79),
        )];

        let mut policy = stack.policy(0.8, 5.0);
        let mut obs = Observer::default();
        let tracked = run_drift_phases(
            &catalog,
            &phases,
            &mut policy,
            &DriftRunConfig::observe_only(),
            &mut obs,
        );

        let mut plain_policy = stack.policy(0.8, 5.0);
        let mut plain_obs = Observer::default();
        let plain = run_observed(
            phases[0].testbed,
            &catalog,
            &phases[0].spec,
            None,
            &mut plain_policy,
            &mut plain_obs,
        );
        let tracked_report = &tracked.phases[0].report;
        assert_eq!(
            tracked_report.end_time_s.to_bits(),
            plain.end_time_s.to_bits()
        );
        assert_eq!(
            tracked_report.link_bytes.to_bits(),
            plain.link_bytes.to_bits()
        );
        for (a, b) in tracked_report.outcomes.iter().zip(&plain.outcomes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.mode, b.mode);
            assert_eq!(a.runtime_s.to_bits(), b.runtime_s.to_bits());
        }
        // Observe-only never touches the models.
        assert_eq!(policy.be_model().version(), 0);
        assert!(obs.adapt.swaps().is_empty());
        // But it does track: residual histograms landed in the registry.
        assert!(obs
            .registry
            .histogram("adapt.residual.be.rel_err")
            .is_some());
    }

    #[test]
    fn degraded_link_fires_drift_and_the_loop_reacts() {
        let catalog = WorkloadCatalog::paper();
        let stack = quick_stack();
        let mut policy = stack.policy(0.8, 5.0);
        let mut obs = Observer::default();
        // Re-goldened with the SIMD numeric floor (DESIGN.md §14): the
        // canonical exp/tanh/sigmoid retrained the quick stack onto
        // weights whose stable-link BE residuals sit just above the
        // default Page–Hinkley λ = 1.0, so the stable/degraded contrast
        // this test pins needs the detector a notch less trigger-happy.
        // λ = 2.0 at this seed keeps both halves of the contrast clean.
        let mut cfg = DriftRunConfig::default();
        cfg.residual.drift.lambda = 2.0;
        let result = run_drift_phases(&catalog, &demo_phases(0x0D61), &mut policy, &cfg, &mut obs);
        assert!(
            result.total_drifts() > 0,
            "a collapsed link must fire the drift detector"
        );
        // The BE residual stream is quiet while the link matches the
        // training conditions and fires once it degrades (phases 2+).
        // (The quick stack's LC and system models are rougher, so only
        // the BE stream carries the clean stable/degraded contrast.)
        for stable in &result.phases[..2] {
            assert!(
                stable.drifts.iter().all(|d| d.stream != "be.rel_err"),
                "BE residuals must not drift on the training-time link"
            );
        }
        assert!(
            result.phases[2..]
                .iter()
                .flat_map(|p| p.drifts.iter())
                .any(|d| d.stream == "be.rel_err"),
            "the degraded link must shift the BE residual stream"
        );
        let verdict_count: usize = result.phases.iter().map(|p| p.verdicts.len()).sum();
        assert!(verdict_count > 0, "drift must reach the swap gate");
        assert_eq!(obs.adapt.swaps().len(), verdict_count);
        assert_eq!(obs.adapt.drifts().len(), result.total_drifts());
        // Fine-tuning on the degraded capture buffer produces a
        // genuinely better candidate, so at least one swap lands.
        assert!(result.total_swaps() > 0, "the loop must close with a swap");
    }
}
