//! The orchestration-evaluation runner (Figs. 16–17 of the paper).
//!
//! Replays the same scenario corpus under several policies and
//! aggregates runtimes, placements, tail latencies and link traffic.

use adrias_core::thread::map_chunks;
use adrias_obs::Observer;
use adrias_orchestrator::engine::{run_schedule, run_schedule_observed, EngineConfig, RunReport};
use adrias_orchestrator::Policy;
use adrias_sim::TestbedConfig;
use adrias_workloads::{MemoryMode, WorkloadCatalog, WorkloadClass};

use crate::schedule::{build_schedule, PlacementStyle};
use crate::spec::ScenarioSpec;

/// Aggregated result of one policy over a scenario corpus.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Policy name.
    pub policy: String,
    /// Per-scenario engine reports.
    pub reports: Vec<RunReport>,
}

impl PolicyOutcome {
    /// All policy-decided BE runtimes for one application across the
    /// corpus (the Fig. 16 distributions).
    pub fn be_runtimes(&self, app: &str) -> Vec<f32> {
        self.reports
            .iter()
            .flat_map(|r| r.decided_of_class(WorkloadClass::BestEffort))
            .filter(|o| o.name == app)
            .map(|o| o.runtime_s as f32)
            .collect()
    }

    /// All policy-decided BE runtimes, every application pooled.
    pub fn all_be_runtimes(&self) -> Vec<f32> {
        self.reports
            .iter()
            .flat_map(|r| r.decided_of_class(WorkloadClass::BestEffort))
            .map(|o| o.runtime_s as f32)
            .collect()
    }

    /// `(local, remote)` placement counts for one application.
    pub fn placements(&self, app: &str) -> (usize, usize) {
        let mut local = 0;
        let mut remote = 0;
        for o in self
            .reports
            .iter()
            .flat_map(|r| r.outcomes.iter())
            .filter(|o| o.policy_decided && o.name == app)
        {
            match o.mode {
                MemoryMode::Local => local += 1,
                MemoryMode::Remote => remote += 1,
            }
        }
        (local, remote)
    }

    /// Overall fraction of policy-decided apps placed remote.
    pub fn offload_fraction(&self) -> f32 {
        let (mut local, mut remote) = (0usize, 0usize);
        for r in &self.reports {
            let (l, m) = r.placement_counts();
            local += l;
            remote += m;
        }
        if local + remote == 0 {
            0.0
        } else {
            remote as f32 / (local + remote) as f32
        }
    }

    /// All p99 measurements for one LC application, ms.
    pub fn lc_p99s(&self, app: &str) -> Vec<f32> {
        self.reports
            .iter()
            .flat_map(|r| r.decided_of_class(WorkloadClass::LatencyCritical))
            .filter(|o| o.name == app)
            .filter_map(|o| o.p99_ms)
            .collect()
    }

    /// Number of LC deployments of `app` that violate `qos` and the
    /// number placed remote, `(violations, offloads, total)`.
    pub fn lc_qos_stats(&self, app: &str, qos_p99_ms: f32) -> (usize, usize, usize) {
        let mut violations = 0;
        let mut offloads = 0;
        let mut total = 0;
        for o in self
            .reports
            .iter()
            .flat_map(|r| r.decided_of_class(WorkloadClass::LatencyCritical))
            .filter(|o| o.name == app)
        {
            total += 1;
            if o.mode == MemoryMode::Remote {
                offloads += 1;
            }
            if o.p99_ms.is_some_and(|p| p > qos_p99_ms) {
                violations += 1;
            }
        }
        (violations, offloads, total)
    }

    /// Total bytes moved over the link across the corpus.
    pub fn total_link_bytes(&self) -> f64 {
        self.reports.iter().map(|r| r.link_bytes).sum()
    }
}

/// Replays `specs` under each policy produced by `make_policy`.
///
/// `make_policy(i)` is called once per (policy index, scenario) pair,
/// so every scenario starts from identical policy state and results
/// are independent of `threads`; every policy sees the *identical*
/// arrival schedules (same seeds, same forced iBench modes). Scenarios
/// of one policy run in parallel across `threads` workers.
///
/// # Panics
///
/// Panics if `specs` is empty, `n_policies` is zero or `threads` is zero.
pub fn run_comparison<F, P>(
    testbed_cfg: TestbedConfig,
    catalog: &WorkloadCatalog,
    specs: &[ScenarioSpec],
    n_policies: usize,
    qos_p99_ms: Option<f32>,
    threads: usize,
    make_policy: F,
) -> Vec<PolicyOutcome>
where
    F: Fn(usize) -> P + Sync,
    P: Policy + Send,
{
    assert!(!specs.is_empty(), "no scenarios to run");
    assert!(n_policies > 0, "no policies to compare");
    assert!(threads > 0, "need at least one worker thread");
    (0..n_policies)
        .map(|pi| {
            let reports: Vec<RunReport> = map_chunks(specs, threads, |chunk| {
                chunk
                    .iter()
                    .map(|spec| {
                        // Fresh policy state per scenario: placements
                        // depend only on (policy, spec), never on how
                        // specs were chunked across workers.
                        let mut policy = make_policy(pi);
                        let schedule = build_schedule(spec, catalog, PlacementStyle::PolicyDecided);
                        let engine = EngineConfig {
                            seed: spec.seed ^ 0xE6E,
                            qos_p99_ms,
                            ..EngineConfig::default()
                        };
                        run_schedule(testbed_cfg, engine, &schedule, &mut policy)
                    })
                    .collect()
            });
            let probe = make_policy(pi);
            PolicyOutcome {
                policy: probe.name().to_owned(),
                reports,
            }
        })
        .collect()
}

/// [`run_comparison`] with a merged cross-scenario metrics view: each
/// scenario runs fully observed with its own private
/// [`adrias_obs::Observer`], and the per-scenario registries are folded
/// into one [`adrias_obs::Registry`] per policy with
/// [`adrias_obs::Registry::merge`] — counters sum, histograms merge
/// bucket-wise, gauges are last-scenario-wins.
///
/// Scenarios still run in parallel across `threads` workers, but the
/// fold always happens on the calling thread in **spec order**, so the
/// merged registry (and every report) is bit-identical at any thread
/// count — the same invariance contract `run_comparison` pins for its
/// reports.
///
/// # Panics
///
/// Panics if `specs` is empty, `n_policies` is zero or `threads` is zero.
pub fn run_comparison_merged<F, P>(
    testbed_cfg: TestbedConfig,
    catalog: &WorkloadCatalog,
    specs: &[ScenarioSpec],
    n_policies: usize,
    qos_p99_ms: Option<f32>,
    threads: usize,
    make_policy: F,
) -> Vec<(PolicyOutcome, adrias_obs::Registry)>
where
    F: Fn(usize) -> P + Sync,
    P: Policy + Send,
{
    assert!(!specs.is_empty(), "no scenarios to run");
    assert!(n_policies > 0, "no policies to compare");
    assert!(threads > 0, "need at least one worker thread");
    (0..n_policies)
        .map(|pi| {
            let results: Vec<(RunReport, adrias_obs::Registry)> =
                map_chunks(specs, threads, |chunk| {
                    chunk
                        .iter()
                        .map(|spec| {
                            let mut policy = make_policy(pi);
                            let mut obs = Observer::default();
                            let report = run_observed(
                                testbed_cfg,
                                catalog,
                                spec,
                                qos_p99_ms,
                                &mut policy,
                                &mut obs,
                            );
                            (report, obs.registry)
                        })
                        .collect()
                });
            let mut merged = adrias_obs::Registry::new();
            let mut reports = Vec::with_capacity(results.len());
            for (report, registry) in results {
                merged.merge(&registry);
                reports.push(report);
            }
            let probe = make_policy(pi);
            (
                PolicyOutcome {
                    policy: probe.name().to_owned(),
                    reports,
                },
                merged,
            )
        })
        .collect()
}

/// Replays one scenario under `policy` with full observability: every
/// placement lands in `obs`'s audit trail, every testbed step feeds the
/// metrics registry, and completions become trace spans.
///
/// Uses the same schedule construction and engine seeding as
/// [`run_comparison`], so the returned report is bit-identical to the
/// corresponding unobserved run.
pub fn run_observed<P: Policy>(
    testbed_cfg: TestbedConfig,
    catalog: &WorkloadCatalog,
    spec: &ScenarioSpec,
    qos_p99_ms: Option<f32>,
    policy: &mut P,
    obs: &mut Observer,
) -> RunReport {
    let schedule = build_schedule(spec, catalog, PlacementStyle::PolicyDecided);
    let engine = EngineConfig {
        seed: spec.seed ^ 0xE6E,
        qos_p99_ms,
        ..EngineConfig::default()
    };
    run_schedule_observed(testbed_cfg, engine, &schedule, policy, obs)
}

/// Convenience: the median of a sample set (empty ⇒ 0).
pub fn median(xs: &[f32]) -> f32 {
    adrias_telemetry::stats::median(xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_orchestrator::{AllLocalPolicy, AllRemotePolicy, RandomPolicy, RoundRobinPolicy};

    fn specs() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::new(5.0, 25.0, 700.0, 11),
            ScenarioSpec::new(5.0, 45.0, 700.0, 12),
        ]
    }

    enum AnyPolicy {
        Local(AllLocalPolicy),
        Remote(AllRemotePolicy),
        Random(RandomPolicy),
        Rr(RoundRobinPolicy),
    }

    impl Policy for AnyPolicy {
        fn name(&self) -> &str {
            match self {
                AnyPolicy::Local(p) => p.name(),
                AnyPolicy::Remote(p) => p.name(),
                AnyPolicy::Random(p) => p.name(),
                AnyPolicy::Rr(p) => p.name(),
            }
        }

        fn decide(&mut self, ctx: &adrias_orchestrator::DecisionContext<'_>) -> MemoryMode {
            match self {
                AnyPolicy::Local(p) => p.decide(ctx),
                AnyPolicy::Remote(p) => p.decide(ctx),
                AnyPolicy::Random(p) => p.decide(ctx),
                AnyPolicy::Rr(p) => p.decide(ctx),
            }
        }
    }

    fn make(i: usize) -> AnyPolicy {
        match i {
            0 => AnyPolicy::Local(AllLocalPolicy::new()),
            1 => AnyPolicy::Remote(AllRemotePolicy::new()),
            2 => AnyPolicy::Random(RandomPolicy::new(99)),
            _ => AnyPolicy::Rr(RoundRobinPolicy::new()),
        }
    }

    #[test]
    fn comparison_runs_all_policies_on_same_schedules() {
        let outcomes = run_comparison(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &specs(),
            4,
            Some(5.0),
            2,
            make,
        );
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].policy, "All-Local");
        assert_eq!(outcomes[1].policy, "All-Remote");
        // Same arrivals → same number of decided apps across policies.
        let counts: Vec<usize> = outcomes
            .iter()
            .map(|o| {
                let (l, r) = (o.offload_fraction(), ());
                let _ = (l, r);
                o.reports
                    .iter()
                    .map(|rep| {
                        let (l, r) = rep.placement_counts();
                        l + r
                    })
                    .sum()
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn all_local_never_offloads_all_remote_always() {
        let outcomes = run_comparison(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &specs(),
            2,
            None,
            2,
            make,
        );
        assert_eq!(outcomes[0].offload_fraction(), 0.0);
        assert_eq!(outcomes[1].offload_fraction(), 1.0);
    }

    #[test]
    fn remote_heavy_policies_move_more_link_bytes() {
        let outcomes = run_comparison(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &specs(),
            2,
            None,
            2,
            make,
        );
        assert!(
            outcomes[1].total_link_bytes() > outcomes[0].total_link_bytes(),
            "All-Remote must move more data than All-Local"
        );
    }

    #[test]
    fn all_remote_hurts_be_runtimes() {
        let outcomes = run_comparison(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &specs(),
            2,
            None,
            2,
            make,
        );
        let local_median = median(&outcomes[0].all_be_runtimes());
        let remote_median = median(&outcomes[1].all_be_runtimes());
        assert!(
            remote_median > local_median,
            "remote median {remote_median} vs local {local_median}"
        );
    }

    #[test]
    fn observed_scenario_matches_comparison_run() {
        let spec = ScenarioSpec::new(5.0, 25.0, 700.0, 11);
        let catalog = WorkloadCatalog::paper();
        let mut obs = adrias_obs::Observer::new(adrias_obs::ObsConfig::default());
        let mut policy = RoundRobinPolicy::new();
        let observed = run_observed(
            TestbedConfig::noiseless(),
            &catalog,
            &spec,
            None,
            &mut policy,
            &mut obs,
        );
        // Every arrival — forced stressors included — is audited once.
        assert_eq!(
            obs.audit.len(),
            observed.outcomes.len() + observed.unfinished
        );
        let plain = run_comparison(
            TestbedConfig::noiseless(),
            &catalog,
            &[spec],
            1,
            None,
            1,
            |_| RoundRobinPolicy::new(),
        );
        let plain = &plain[0].reports[0];
        assert_eq!(observed.end_time_s.to_bits(), plain.end_time_s.to_bits());
        assert_eq!(observed.link_bytes.to_bits(), plain.link_bytes.to_bits());
    }

    /// Structural fingerprint of a registry for exact comparison:
    /// every counter, gauge bit pattern, and histogram shape/moments.
    fn registry_fingerprint(reg: &adrias_obs::Registry) -> Vec<String> {
        let mut lines: Vec<String> = Vec::new();
        for (name, v) in reg.counters() {
            lines.push(format!("counter {name} {v}"));
        }
        for (name, v) in reg.gauges() {
            lines.push(format!("gauge {name} {:016x}", v.to_bits()));
        }
        for (name, h) in reg.histograms() {
            lines.push(format!(
                "hist {name} n={} counts={:?} mean={:08x} min={:016x} max={:016x}",
                h.count(),
                h.counts(),
                h.mean().to_bits(),
                h.min().to_bits(),
                h.max().to_bits()
            ));
        }
        lines
    }

    #[test]
    fn merged_registry_is_thread_count_invariant() {
        let catalog = WorkloadCatalog::paper();
        let specs = [
            ScenarioSpec::new(5.0, 25.0, 700.0, 11),
            ScenarioSpec::new(5.0, 45.0, 700.0, 12),
            ScenarioSpec::new(5.0, 35.0, 700.0, 13),
        ];
        let run = |threads| {
            run_comparison_merged(
                TestbedConfig::noiseless(),
                &catalog,
                &specs,
                2,
                Some(5.0),
                threads,
                make,
            )
        };
        let single = run(1);
        let parallel = run(3);
        assert_eq!(single.len(), parallel.len());
        for ((oa, ra), (ob, rb)) in single.iter().zip(&parallel) {
            assert_eq!(oa.policy, ob.policy);
            assert_eq!(registry_fingerprint(ra), registry_fingerprint(rb));
            for (a, b) in oa.reports.iter().zip(&ob.reports) {
                assert_eq!(a.end_time_s.to_bits(), b.end_time_s.to_bits());
                assert_eq!(a.link_bytes.to_bits(), b.link_bytes.to_bits());
            }
        }
        // The merged view really is cross-scenario: decisions from all
        // three scenarios land in one counter, and the reports match
        // the unobserved comparison path bit-for-bit.
        let merged = &single[0].1;
        let per_report: u64 = single[0]
            .0
            .reports
            .iter()
            .map(|r| (r.outcomes.len() + r.unfinished) as u64)
            .sum();
        assert_eq!(merged.counter("orchestrator.decisions"), per_report);
        let plain = run_comparison(
            TestbedConfig::noiseless(),
            &catalog,
            &specs,
            2,
            Some(5.0),
            2,
            make,
        );
        for ((outcome, _), unobserved) in single.iter().zip(&plain) {
            for (a, b) in outcome.reports.iter().zip(&unobserved.reports) {
                assert_eq!(a.end_time_s.to_bits(), b.end_time_s.to_bits());
                assert_eq!(a.link_bytes.to_bits(), b.link_bytes.to_bits());
            }
        }
    }

    #[test]
    fn qos_stats_count_consistently() {
        let outcomes = run_comparison(
            TestbedConfig::noiseless(),
            &WorkloadCatalog::paper(),
            &specs(),
            2,
            Some(3.0),
            1,
            make,
        );
        for outcome in &outcomes {
            for app in ["redis", "memcached"] {
                let (v, o, t) = outcome.lc_qos_stats(app, 3.0);
                assert!(v <= t);
                assert!(o <= t);
                assert_eq!(outcome.lc_p99s(app).len(), t);
            }
        }
    }
}
