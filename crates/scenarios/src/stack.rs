//! One-call training of the full Adrias model stack.
//!
//! Bundles the whole offline phase: collect signatures, run the trace
//! corpus, build datasets, train the system-state model and both
//! performance models — and keep the datasets around for the accuracy
//! benches.

use adrias_core::rng::SeedableRng;
use adrias_core::rng::Xoshiro256pp;

use adrias_obs::Observer;
use adrias_orchestrator::AdriasPolicy;
use adrias_predictor::{
    PerfDataset, PerfModel, PerfModelConfig, SHatSource, SystemStateDataset, SystemStateModel,
    SystemStateModelConfig,
};
use adrias_sim::TestbedConfig;
use adrias_workloads::{AppSignature, WorkloadCatalog, WorkloadClass};

use crate::signatures::collect_signatures;
use crate::spec::{scaled_corpus, ScenarioSpec};
use crate::traces::{collect_traces, TraceBundle};

/// Options controlling the offline phase.
#[derive(Debug, Clone)]
pub struct StackOptions {
    /// The testbed model.
    pub testbed: TestbedConfig,
    /// The trace-collection corpus.
    pub corpus: Vec<ScenarioSpec>,
    /// Sliding-window stride for the system-state dataset, seconds.
    pub system_stride_s: usize,
    /// System-state model hyper-parameters.
    pub system_cfg: SystemStateModelConfig,
    /// Performance-model hyper-parameters (shared by BE and LC).
    pub perf_cfg: PerfModelConfig,
    /// Train fraction of the 60/40 split.
    pub train_frac: f64,
    /// How many times each LC service appears in the *trace-collection*
    /// catalog. The paper's 72-hour corpus yields thousands of LC
    /// deployments; at reduced scale the LC model would starve on a
    /// uniform catalog, so trace scenarios oversample the two stores
    /// (evaluation scenarios always use the unmodified catalog).
    pub lc_oversample: usize,
    /// Worker threads for trace collection.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for StackOptions {
    fn default() -> Self {
        Self {
            testbed: TestbedConfig::paper(),
            corpus: scaled_corpus(12, 1500.0),
            system_stride_s: 10,
            system_cfg: SystemStateModelConfig {
                epochs: 50,
                hidden: 48,
                block_width: 64,
                ..SystemStateModelConfig::default()
            },
            perf_cfg: PerfModelConfig::default(),
            train_frac: 0.6,
            lc_oversample: 3,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seed: 0x57ACB,
        }
    }
}

impl StackOptions {
    /// A fast configuration for tests: few short scenarios, tiny models.
    ///
    /// The performance models are trained on actual 120 s future means
    /// and served with the propagated `Ŝ`, so the system model must be
    /// trained well enough to keep `Ŝ` in-distribution even here.
    pub fn quick() -> Self {
        Self {
            corpus: scaled_corpus(4, 900.0),
            system_cfg: SystemStateModelConfig {
                epochs: 30,
                ..SystemStateModelConfig::tiny()
            },
            perf_cfg: PerfModelConfig {
                epochs: 25,
                ..PerfModelConfig::tiny()
            },
            testbed: TestbedConfig::noiseless(),
            ..Self::default()
        }
    }
}

/// The trained Adrias stack plus everything the evaluation needs.
#[derive(Debug, Clone)]
pub struct TrainedStack {
    /// The trace bundle the stack was trained on.
    pub traces: TraceBundle,
    /// Captured application signatures.
    pub signatures: Vec<AppSignature>,
    /// Trained system-state forecaster.
    pub system_model: SystemStateModel,
    /// Trained universal BE performance model.
    pub be_model: PerfModel,
    /// Trained universal LC performance model.
    pub lc_model: PerfModel,
    /// System-state train/test datasets.
    pub system_split: (SystemStateDataset, SystemStateDataset),
    /// BE performance train/test datasets.
    pub be_split: (PerfDataset, PerfDataset),
    /// LC performance train/test datasets (`None` when too few LC
    /// records were collected for a split).
    pub lc_split: Option<(PerfDataset, PerfDataset)>,
    /// Per-epoch training losses of the three models.
    pub train_losses: TrainLosses,
}

/// Per-epoch training losses from the offline phase, one vector per
/// model, in training order.
#[derive(Debug, Clone, Default)]
pub struct TrainLosses {
    /// System-state forecaster epoch losses.
    pub system: Vec<f32>,
    /// Best-effort performance model epoch losses.
    pub be: Vec<f32>,
    /// Latency-critical performance model epoch losses.
    pub lc: Vec<f32>,
}

impl TrainedStack {
    /// Instantiates the Adrias policy with slack `beta` and the given
    /// default QoS constraint.
    pub fn policy(&self, beta: f32, qos_p99_ms: f32) -> AdriasPolicy {
        AdriasPolicy::new(
            self.system_model.clone(),
            self.be_model.clone(),
            self.lc_model.clone(),
            self.signatures.clone(),
            beta,
            qos_p99_ms,
        )
    }

    /// Records the offline phase's training counters and per-epoch
    /// losses into `obs` under `predictor.system` / `predictor.be` /
    /// `predictor.lc`.
    pub fn record_obs(&self, obs: &mut Observer) {
        for (prefix, stats, losses) in [
            (
                "predictor.system",
                self.system_model.last_train_stats(),
                self.train_losses.system.as_slice(),
            ),
            (
                "predictor.be",
                self.be_model.last_train_stats(),
                self.train_losses.be.as_slice(),
            ),
            (
                "predictor.lc",
                self.lc_model.last_train_stats(),
                self.train_losses.lc.as_slice(),
            ),
        ] {
            if let Some(stats) = stats {
                obs.record_train_stats(prefix, &stats, losses);
            }
        }
    }
}

/// Runs the full offline phase (§V-B) and returns the trained stack.
///
/// Training order follows the paper's best practice from Fig. 13b
/// (`{120, Ŝ}`): the system-state model is trained first, the
/// performance models are trained with the **actual** 120 s future
/// means, and at run time they consume the `Ŝ` **propagated** from the
/// system-state model.
///
/// # Panics
///
/// Panics if the corpus yields no usable records (scenarios too short).
pub fn train_stack(catalog: &WorkloadCatalog, opts: &StackOptions) -> TrainedStack {
    let signatures = collect_signatures(opts.testbed, catalog, opts.seed);
    // Oversample LC services in the trace catalog (see `lc_oversample`).
    let trace_catalog = {
        let mut entries = catalog.entries().to_vec();
        let lc: Vec<_> = catalog.latency_critical().cloned().collect();
        for _ in 1..opts.lc_oversample.max(1) {
            entries.extend(lc.iter().cloned());
        }
        WorkloadCatalog::from_profiles(entries)
    };
    let traces = collect_traces(opts.testbed, &trace_catalog, &opts.corpus, opts.threads);

    let mut rng = Xoshiro256pp::seed_from_u64(opts.seed);
    let system_ds = SystemStateDataset::from_traces(&traces.system_traces(), opts.system_stride_s);
    let (sys_train, sys_test) = system_ds.split(opts.train_frac, &mut rng);
    let mut system_model = SystemStateModel::new(opts.system_cfg);
    let system_losses = system_model.train(&sys_train);

    let be_records = traces.perf_records(WorkloadClass::BestEffort);
    let be_ds = PerfDataset::new(be_records, &signatures);
    let (be_train, be_test) = be_ds.split(opts.train_frac, &mut rng);
    let be_train_hats = SHatSource::Actual120.materialize(&be_train, None);
    let mut be_model = PerfModel::new(opts.perf_cfg);
    let be_losses = be_model.train(&be_train, &be_train_hats);

    let lc_records = traces.perf_records(WorkloadClass::LatencyCritical);
    // The LC dataset is much smaller than the BE one, so give the LC
    // model extra epochs (cheap at that size).
    let mut lc_model = PerfModel::new(PerfModelConfig {
        seed: opts.perf_cfg.seed ^ 0x1C,
        epochs: opts.perf_cfg.epochs + opts.perf_cfg.epochs / 2,
        ..opts.perf_cfg
    });
    let (lc_split, lc_losses) = if lc_records.len() >= 5 {
        let lc_ds = PerfDataset::new(lc_records, &signatures);
        let (lc_train, lc_test) = lc_ds.split(opts.train_frac, &mut rng);
        let lc_train_hats = SHatSource::Actual120.materialize(&lc_train, None);
        let losses = lc_model.train(&lc_train, &lc_train_hats);
        (Some((lc_train, lc_test)), losses)
    } else {
        // Too few LC records for a meaningful split: train on everything.
        let lc_ds = PerfDataset::new(lc_records, &signatures);
        let hats = SHatSource::Actual120.materialize(&lc_ds, None);
        let losses = lc_model.train(&lc_ds, &hats);
        (None, losses)
    };

    TrainedStack {
        traces,
        signatures,
        system_model,
        be_model,
        lc_model,
        system_split: (sys_train, sys_test),
        be_split: (be_train, be_test),
        lc_split,
        train_losses: TrainLosses {
            system: system_losses,
            be: be_losses,
            lc: lc_losses,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_stack_trains_end_to_end() {
        let catalog = WorkloadCatalog::paper();
        let stack = train_stack(&catalog, &StackOptions::quick());
        assert!(stack.system_model.is_trained());
        assert!(stack.be_model.is_trained());
        assert!(stack.lc_model.is_trained());
        assert_eq!(stack.signatures.len(), 19, "17 Spark + 2 LC signatures");
        assert!(!stack.traces.is_empty());
        assert!(!stack.be_split.0.is_empty());

        let policy = stack.policy(0.8, 5.0);
        assert_eq!(policy.beta(), 0.8);
        assert!(policy.knows("gmm"));
        assert!(policy.knows("redis"));

        // The offline phase reports its training work to an observer.
        assert!(!stack.train_losses.system.is_empty());
        let mut obs = Observer::default();
        stack.record_obs(&mut obs);
        assert!(obs.registry.counter("predictor.system.epochs") > 0);
        assert!(obs.registry.counter("predictor.be.minibatches") > 0);
        assert!(obs.registry.counter("predictor.lc.grad_chunks") > 0);
        assert_eq!(
            obs.registry
                .histogram("predictor.system.epoch_loss")
                .unwrap()
                .count() as usize,
            stack.train_losses.system.len()
        );
        assert!(obs.registry.gauge("predictor.be.final_loss").is_some());
    }
}
