//! Scenario specifications.

use adrias_workloads::ArrivalProcess;

/// One trace-collection / evaluation scenario.
///
/// # Examples
///
/// ```
/// use adrias_scenarios::ScenarioSpec;
///
/// let spec = ScenarioSpec::new(5.0, 40.0, 3600.0, 7);
/// assert_eq!(spec.arrivals().max_interval_s(), 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Minimum inter-arrival gap, seconds (the paper uses 5).
    pub spawn_min_s: f64,
    /// Maximum inter-arrival gap, seconds (20 = heavy … 60 = relaxed).
    pub spawn_max_s: f64,
    /// Scenario duration, seconds (1 h in the paper).
    pub duration_s: f64,
    /// Seed controlling arrivals, workload choice and random placement.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Creates a specification.
    ///
    /// # Panics
    ///
    /// Panics on non-positive duration or invalid spawn bounds.
    pub fn new(spawn_min_s: f64, spawn_max_s: f64, duration_s: f64, seed: u64) -> Self {
        assert!(duration_s > 0.0, "duration must be positive");
        assert!(
            spawn_min_s > 0.0 && spawn_min_s <= spawn_max_s,
            "invalid spawn bounds"
        );
        Self {
            spawn_min_s,
            spawn_max_s,
            duration_s,
            seed,
        }
    }

    /// The arrival process for this scenario.
    pub fn arrivals(&self) -> ArrivalProcess {
        ArrivalProcess::new(self.spawn_min_s, self.spawn_max_s)
    }

    /// Human-readable congestion label, e.g. `{5,40}`.
    pub fn label(&self) -> String {
        format!("{{{},{}}}", self.spawn_min_s, self.spawn_max_s)
    }
}

/// The paper's corpus: 72 one-hour scenarios — spawn-interval maxima
/// swept over {20, 25, …, 60} (9 classes) with 8 seeds each.
pub fn paper_corpus() -> Vec<ScenarioSpec> {
    scaled_corpus(72, 3600.0)
}

/// A scaled-down corpus with the same structure: `n` scenarios of
/// `duration_s` seconds, cycling through the 9 spawn-interval classes.
///
/// # Panics
///
/// Panics if `n` is zero or the duration is non-positive.
pub fn scaled_corpus(n: usize, duration_s: f64) -> Vec<ScenarioSpec> {
    assert!(n > 0, "corpus needs at least one scenario");
    (0..n)
        .map(|i| {
            let class = i % 9;
            let spawn_max = 20.0 + 5.0 * class as f64;
            ScenarioSpec::new(5.0, spawn_max, duration_s, 0xC0FFEE + i as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_corpus_has_72_hourly_scenarios() {
        let corpus = paper_corpus();
        assert_eq!(corpus.len(), 72);
        assert!(corpus.iter().all(|s| s.duration_s == 3600.0));
        // All 9 congestion classes present, 8 times each.
        for class in 0..9 {
            let max = 20.0 + 5.0 * class as f64;
            let count = corpus.iter().filter(|s| s.spawn_max_s == max).count();
            assert_eq!(count, 8, "class {{5,{max}}}");
        }
    }

    #[test]
    fn seeds_are_unique() {
        let corpus = paper_corpus();
        let mut seeds: Vec<u64> = corpus.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 72);
    }

    #[test]
    fn label_formats_like_the_paper() {
        let spec = ScenarioSpec::new(5.0, 20.0, 100.0, 0);
        assert_eq!(spec.label(), "{5,20}");
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let _ = ScenarioSpec::new(5.0, 20.0, 0.0, 0);
    }
}
