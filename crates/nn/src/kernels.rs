//! Explicitly-vectorised f32 kernels with a bit-exact lane-order
//! accumulation contract (DESIGN.md §14).
//!
//! Every kernel exists twice: an AVX2 path (8-lane, via
//! `core::arch::x86_64`) selected at runtime with
//! `is_x86_feature_detected!`, and a scalar fallback that executes the
//! *same* IEEE-754 operations in the *same* order. The contract:
//!
//! * **Dot products** ([`dot`], [`dot4`]) accumulate 8-way strided
//!   partial sums — lane `j` sums the terms with index `≡ j (mod 8)` in
//!   increasing order — the sub-[`LANES`] tail folds into lanes
//!   `0..tail`, and a single fixed-shape tree reduction
//!   ([`tree_reduce`]) collapses the lanes. The scalar path keeps the
//!   eight partial sums in an array and runs the identical reduction,
//!   so AVX2 and scalar results are bit-identical by construction.
//! * **Element-wise sweeps** ([`axpy`], [`add2_bias`], [`relu`],
//!   [`bn_affine`], the LSTM gate sweeps) touch each output element
//!   with one fixed expression; vector lanes and scalar iterations are
//!   the same dataflow, so they are trivially bit-identical.
//! * **No FMA anywhere**: multiplies and adds stay separate
//!   (`_mm256_mul_ps` + `_mm256_add_ps`), matching Rust's
//!   non-contracting scalar codegen, so hosts with and without FMA
//!   units agree.
//!
//! `#[target_feature]` functions cannot inline into callers compiled
//! for the base target, so a call into this module has real overhead —
//! a few nanoseconds of call + dispatch that dominate a 32-element
//! sweep. The hot loops therefore enter through **block-level**
//! kernels ([`axpy_panel2`], [`dot_rows`], [`add2_bias_rows`], the
//! `*_batch` gate sweeps): one dispatch covers a whole `k`-panel /
//! column block / batch, and the per-row bodies inline *inside* the
//! AVX2 region. Each block kernel runs the identical per-element
//! sequence as the loop of small calls it replaces — same order, same
//! zero-skip — so blocking is invisible to the bit pattern.
//!
//! Dispatch can be forced to the scalar path for A/B measurement and
//! cross-checking: `ADRIAS_FORCE_SCALAR=1` in the environment (read
//! once), or [`set_force_scalar`] in-process (the bench harness uses it
//! to derive the `simd_*_speedup_x` keys). Because both paths are
//! bit-identical, flipping the switch never changes a result — CI
//! byte-compares a forced-scalar run against the native run to prove
//! it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::vmath;

/// SIMD width of the accumulation contract: 8 f32 lanes (one AVX2
/// `__m256`). Fixed even on non-AVX2 hosts — the scalar fallback
/// carries 8 partial sums so the reduction shape never varies.
pub const LANES: usize = 8;

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);
static ENV_FORCE_SCALAR: OnceLock<bool> = OnceLock::new();

fn env_force_scalar() -> bool {
    *ENV_FORCE_SCALAR.get_or_init(|| std::env::var("ADRIAS_FORCE_SCALAR").is_ok_and(|v| v == "1"))
}

/// Forces (or releases) the scalar fallback for this process,
/// overriding feature detection. The bench harness flips this to
/// measure `simd_*_speedup_x` in one process; results are bit-identical
/// either way, so toggling is always safe.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

#[cfg(target_arch = "x86_64")]
fn has_avx2() -> bool {
    static HAS_AVX2: OnceLock<bool> = OnceLock::new();
    *HAS_AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// Whether the AVX2 paths are live: the CPU has AVX2 and neither
/// `ADRIAS_FORCE_SCALAR=1` nor [`set_force_scalar`] is in effect.
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        has_avx2() && !env_force_scalar() && !FORCE_SCALAR.load(Ordering::Relaxed)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The canonical fixed-shape lane reduction: pairwise over a stride of
/// 4, then 2, then 1 — exactly the element flow of the AVX2 horizontal
/// reduction (low/high 128-bit halves added, then two shuffle/add
/// steps), executed in scalar by **both** paths.
#[inline]
pub(crate) fn tree_reduce(s: [f32; LANES]) -> f32 {
    let s04 = s[0] + s[4];
    let s15 = s[1] + s[5];
    let s26 = s[2] + s[6];
    let s37 = s[3] + s[7];
    (s04 + s26) + (s15 + s37)
}

/// Folds the sub-[`LANES`] tail of a dot product into the lane
/// accumulators (lane `j` takes tail element `j`), then reduces. Shared
/// verbatim by the scalar and AVX2 paths.
#[inline]
fn tail_reduce(mut lanes: [f32; LANES], a_tail: &[f32], b_tail: &[f32]) -> f32 {
    for ((l, &x), &y) in lanes.iter_mut().zip(a_tail).zip(b_tail) {
        *l += x * y;
    }
    tree_reduce(lanes)
}

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let head = a.len() - a.len() % LANES;
    let mut lanes = [0.0f32; LANES];
    for (ca, cb) in a[..head]
        .chunks_exact(LANES)
        .zip(b[..head].chunks_exact(LANES))
    {
        for ((l, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *l += x * y;
        }
    }
    tail_reduce(lanes, &a[head..], &b[head..])
}

fn dot4_scalar(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    [
        dot_scalar(a, b0),
        dot_scalar(a, b1),
        dot_scalar(a, b2),
        dot_scalar(a, b3),
    ]
}

/// Canonical lane-ordered dot product `Σ a[i]·b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// Four canonical dot products of one left row against four right rows
/// — the register-blocked shape of the `matmul_transb` micro-kernel.
/// Each output element follows the single-accumulator lane order of
/// [`dot`]; the grouping only buys instruction-level parallelism.
///
/// # Panics
///
/// Panics if any right row differs from `a` in length.
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    assert!(
        a.len() == b0.len() && a.len() == b1.len() && a.len() == b2.len() && a.len() == b3.len(),
        "dot4 length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        return unsafe { avx2::dot4(a, b0, b1, b2, b3) };
    }
    dot4_scalar(a, b0, b1, b2, b3)
}

fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

fn axpy_panel_scalar(a_col: &[f32], b_panel: &[f32], y: &mut [f32]) {
    let n = y.len();
    for (k, &a) in a_col.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        axpy_scalar(a, &b_panel[k * n..(k + 1) * n], y);
    }
}

fn axpy_panel2_scalar(a0: &[f32], a1: &[f32], b_panel: &[f32], y0: &mut [f32], y1: &mut [f32]) {
    let n = y0.len();
    for (k, (&v0, &v1)) in a0.iter().zip(a1).enumerate() {
        if v0 == 0.0 && v1 == 0.0 {
            continue;
        }
        let b_row = &b_panel[k * n..(k + 1) * n];
        if v0 != 0.0 {
            axpy_scalar(v0, b_row, y0);
        }
        if v1 != 0.0 {
            axpy_scalar(v1, b_row, y1);
        }
    }
}

fn axpy_panel4_scalar(
    a: [&[f32]; 4],
    b_panel: &[f32],
    y0: &mut [f32],
    y1: &mut [f32],
    y2: &mut [f32],
    y3: &mut [f32],
) {
    let n = y0.len();
    for k in 0..a[0].len() {
        let v = [a[0][k], a[1][k], a[2][k], a[3][k]];
        if v == [0.0; 4] {
            continue;
        }
        let b_row = &b_panel[k * n..(k + 1) * n];
        if v[0] != 0.0 {
            axpy_scalar(v[0], b_row, y0);
        }
        if v[1] != 0.0 {
            axpy_scalar(v[1], b_row, y1);
        }
        if v[2] != 0.0 {
            axpy_scalar(v[2], b_row, y2);
        }
        if v[3] != 0.0 {
            axpy_scalar(v[3], b_row, y3);
        }
    }
}

/// `y += alpha · x`, element-wise. One multiply-add per output element
/// in both paths, so the accumulation order of any *sequence* of axpy
/// calls (e.g. the increasing-`k` order of `matmul_into`) is untouched
/// by vectorisation.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::axpy(alpha, x, y) };
        return;
    }
    axpy_scalar(alpha, x, y);
}

/// One-row axpy panel: `y += Σ_k a_col[k] · b_panel[k·n .. (k+1)·n]`,
/// accumulated in increasing `k` with the exact zero-skip of a loop of
/// [`axpy`] calls — but with a **single** dispatch for the whole
/// `k`-panel, so the AVX2 body inlines its per-`k` sweeps instead of
/// paying a non-inlinable `#[target_feature]` call per `k`. This is the
/// inner loop of `matmul_into`'s single-row tail.
///
/// # Panics
///
/// Panics if `b_panel` is not `a_col.len() × y.len()`.
pub fn axpy_panel(a_col: &[f32], b_panel: &[f32], y: &mut [f32]) {
    assert_eq!(
        b_panel.len(),
        a_col.len() * y.len(),
        "axpy_panel shape mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::axpy_panel(a_col, b_panel, y) };
        return;
    }
    axpy_panel_scalar(a_col, b_panel, y);
}

/// Two-row axpy panel — the `matmul_into` micro-kernel: for each `k`
/// (increasing), `y0 += a0[k]·b_k` and `y1 += a1[k]·b_k` where `b_k` is
/// row `k` of the panel. Per-element dataflow is exactly two
/// independent [`axpy_panel`] sweeps (disjoint accumulators, same
/// zero-skip), so fusing them — one `b_k` load feeding both rows, one
/// dispatch per panel — cannot change a bit.
///
/// # Panics
///
/// Panics if the column or output lengths differ, or `b_panel` is not
/// `a0.len() × y0.len()`.
pub fn axpy_panel2(a0: &[f32], a1: &[f32], b_panel: &[f32], y0: &mut [f32], y1: &mut [f32]) {
    assert_eq!(a0.len(), a1.len(), "axpy_panel2 column length mismatch");
    assert_eq!(y0.len(), y1.len(), "axpy_panel2 output length mismatch");
    assert_eq!(
        b_panel.len(),
        a0.len() * y0.len(),
        "axpy_panel2 shape mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::axpy_panel2(a0, a1, b_panel, y0, y1) };
        return;
    }
    axpy_panel2_scalar(a0, a1, b_panel, y0, y1);
}

/// Four-row axpy panel: [`axpy_panel2`] widened to four disjoint
/// output rows, so one `b_k` load feeds four accumulator rows — B
/// traffic per output element is quartered. Per-row dataflow is still
/// exactly the increasing-`k` zero-skipped [`axpy`] sequence, so the
/// grouping is invisible to the bit pattern.
///
/// # Panics
///
/// Panics if the column or output lengths differ, or `b_panel` is not
/// `a[0].len() × y0.len()`.
pub fn axpy_panel4(
    a: [&[f32]; 4],
    b_panel: &[f32],
    y0: &mut [f32],
    y1: &mut [f32],
    y2: &mut [f32],
    y3: &mut [f32],
) {
    let kt = a[0].len();
    let n = y0.len();
    assert!(
        a.iter().all(|col| col.len() == kt),
        "axpy_panel4 column length mismatch"
    );
    assert!(
        y1.len() == n && y2.len() == n && y3.len() == n,
        "axpy_panel4 output length mismatch"
    );
    assert_eq!(b_panel.len(), kt * n, "axpy_panel4 shape mismatch");
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::axpy_panel4(a, b_panel, y0, y1, y2, y3) };
        return;
    }
    axpy_panel4_scalar(a, b_panel, y0, y1, y2, y3);
}

fn dot_rows_scalar(a: &[f32], b_rows: &[f32], out: &mut [f32]) {
    let k = a.len();
    let mut c = 0;
    while c + 4 <= out.len() {
        let b = &b_rows[c * k..(c + 4) * k];
        let (b0, rest) = b.split_at(k);
        let (b1, rest) = rest.split_at(k);
        let (b2, b3) = rest.split_at(k);
        let s = dot4_scalar(a, b0, b1, b2, b3);
        out[c..c + 4].copy_from_slice(&s);
        c += 4;
    }
    while c < out.len() {
        out[c] = dot_scalar(a, &b_rows[c * k..(c + 1) * k]);
        c += 1;
    }
}

/// Row sweep of canonical dot products: `out[c] = dot(a, b_rows[c])`
/// for every row `c` of the packed `out.len() × a.len()` right block —
/// columns grouped four at a time in the [`dot4`] shape, remainder one
/// at a time, exactly the call sequence `matmul_transb` used to make,
/// but with one dispatch per block so the AVX2 dot bodies inline.
///
/// # Panics
///
/// Panics if `b_rows` is not `out.len() × a.len()`.
pub fn dot_rows(a: &[f32], b_rows: &[f32], out: &mut [f32]) {
    assert_eq!(b_rows.len(), out.len() * a.len(), "dot_rows shape mismatch");
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::dot_rows(a, b_rows, out) };
        return;
    }
    dot_rows_scalar(a, b_rows, out);
}

fn add2_bias_scalar(z: &mut [f32], w: &[f32], b: &[f32]) {
    for ((v, &wv), &bv) in z.iter_mut().zip(w).zip(b) {
        *v = (*v + wv) + bv;
    }
}

/// The LSTM pre-activation fuse `z = (z + w) + b`, element-wise with
/// explicit left association.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn add2_bias(z: &mut [f32], w: &[f32], b: &[f32]) {
    assert!(
        z.len() == w.len() && z.len() == b.len(),
        "add2_bias length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::add2_bias(z, w, b) };
        return;
    }
    add2_bias_scalar(z, w, b);
}

fn add2_bias_rows_scalar(z: &mut [f32], w: &[f32], b: &[f32]) {
    let n = b.len();
    for (zr, wr) in z.chunks_exact_mut(n).zip(w.chunks_exact(n)) {
        add2_bias_scalar(zr, wr, b);
    }
}

/// Row-broadcast [`add2_bias`] over a whole batch: every `b.len()`-wide
/// row of `z` gets `(z + w) + b` with the bias row reused — one
/// dispatch for the batch instead of one per row.
///
/// # Panics
///
/// Panics if `z` and `w` differ in length or are not a whole number of
/// `b.len()`-wide rows.
pub fn add2_bias_rows(z: &mut [f32], w: &[f32], b: &[f32]) {
    assert_eq!(z.len(), w.len(), "add2_bias_rows length mismatch");
    assert!(
        !b.is_empty() && z.len().is_multiple_of(b.len()),
        "add2_bias_rows rows must be bias-width"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::add2_bias_rows(z, w, b) };
        return;
    }
    add2_bias_rows_scalar(z, w, b);
}

fn relu_scalar(xs: &mut [f32]) {
    for v in xs {
        *v = vmath::max(*v, 0.0);
    }
}

/// Canonical ReLU sweep `x = max(x, 0)` with `_mm256_max_ps` semantics
/// (`-0.0` maps to `+0.0`).
pub fn relu(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::relu(xs) };
        return;
    }
    relu_scalar(xs);
}

fn bn_affine_scalar(row: &mut [f32], mean: &[f32], inv_std: &[f32], gamma: &[f32], beta: &[f32]) {
    for ((((v, &m), &is), &g), &b) in row.iter_mut().zip(mean).zip(inv_std).zip(gamma).zip(beta) {
        *v = g * (*v - m) * is + b;
    }
}

/// The batch-norm eval affine `x = γ·(x − μ)·inv_std + β`, element-wise
/// with the exact association of the reference layer (`((γ·(x − μ))·s)
/// + β`).
///
/// # Panics
///
/// Panics if the parameter rows differ from `row` in length.
pub fn bn_affine(row: &mut [f32], mean: &[f32], inv_std: &[f32], gamma: &[f32], beta: &[f32]) {
    let n = row.len();
    assert!(
        mean.len() == n && inv_std.len() == n && gamma.len() == n && beta.len() == n,
        "bn_affine length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::bn_affine(row, mean, inv_std, gamma, beta) };
        return;
    }
    bn_affine_scalar(row, mean, inv_std, gamma, beta);
}

/// Mutable destinations of one training-mode LSTM gate sweep row: the
/// BPTT caches plus the new cell and hidden states.
pub struct GateCaches<'a> {
    /// Input gate `i = σ(z_i)`.
    pub i: &'a mut [f32],
    /// Forget gate `f = σ(z_f)`.
    pub f: &'a mut [f32],
    /// Candidate `g = tanh(z_g)`.
    pub g: &'a mut [f32],
    /// Output gate `o = σ(z_o)`.
    pub o: &'a mut [f32],
    /// New cell state `c = f·c_prev + i·g`.
    pub c: &'a mut [f32],
    /// `tanh(c)`.
    pub tanh_c: &'a mut [f32],
    /// Hidden output `h = o·tanh(c)`.
    pub h: &'a mut [f32],
}

/// Splits a `4·hidden` pre-activation row into its `(i, f, g, o)` gate
/// quarters.
#[inline]
fn split_gates(z_row: &[f32], h: usize) -> (&[f32], &[f32], &[f32], &[f32]) {
    let (zi, rest) = z_row.split_at(h);
    let (zf, rest) = rest.split_at(h);
    let (zg, zo) = rest.split_at(h);
    (zi, zf, zg, zo)
}

#[allow(clippy::too_many_arguments)]
fn gates_train_scalar(
    zi: &[f32],
    zf: &[f32],
    zg: &[f32],
    zo: &[f32],
    c_prev: &[f32],
    out: &mut GateCaches<'_>,
) {
    for k in 0..c_prev.len() {
        let iv = vmath::sigmoid(zi[k]);
        let fv = vmath::sigmoid(zf[k]);
        let gv = vmath::tanh(zg[k]);
        let ov = vmath::sigmoid(zo[k]);
        let cv = fv * c_prev[k] + iv * gv;
        let tc = vmath::tanh(cv);
        out.i[k] = iv;
        out.f[k] = fv;
        out.g[k] = gv;
        out.o[k] = ov;
        out.c[k] = cv;
        out.tanh_c[k] = tc;
        out.h[k] = ov * tc;
    }
}

/// Fused training-mode LSTM gate sweep over one batch row: computes all
/// four gates, the new cell state, `tanh(c)` and the hidden output in a
/// single pass, writing every BPTT cache.
///
/// # Panics
///
/// Panics if `z_row` is not `4 × c_prev.len()` or any output slice
/// differs from `c_prev` in length.
pub fn lstm_gates_train(z_row: &[f32], c_prev: &[f32], out: &mut GateCaches<'_>) {
    let h = c_prev.len();
    assert_eq!(z_row.len(), 4 * h, "gate row must be 4x hidden");
    assert!(
        out.i.len() == h
            && out.f.len() == h
            && out.g.len() == h
            && out.o.len() == h
            && out.c.len() == h
            && out.tanh_c.len() == h
            && out.h.len() == h,
        "gate cache length mismatch"
    );
    let (zi, zf, zg, zo) = split_gates(z_row, h);
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::gates_train(zi, zf, zg, zo, c_prev, out) };
        return;
    }
    gates_train_scalar(zi, zf, zg, zo, c_prev, out);
}

fn gates_train_batch_scalar(z: &[f32], c_prev: &[f32], hidden: usize, out: &mut GateCaches<'_>) {
    let hw = 4 * hidden;
    for r in 0..c_prev.len() / hidden {
        let (zi, zf, zg, zo) = split_gates(&z[r * hw..(r + 1) * hw], hidden);
        let span = r * hidden..(r + 1) * hidden;
        let mut row = GateCaches {
            i: &mut out.i[span.clone()],
            f: &mut out.f[span.clone()],
            g: &mut out.g[span.clone()],
            o: &mut out.o[span.clone()],
            c: &mut out.c[span.clone()],
            tanh_c: &mut out.tanh_c[span.clone()],
            h: &mut out.h[span.clone()],
        };
        gates_train_scalar(zi, zf, zg, zo, &c_prev[span], &mut row);
    }
}

/// Whole-batch [`lstm_gates_train`]: `z` holds `batch` rows of
/// `4·hidden` pre-activations, `c_prev` and every cache slice hold
/// `batch` rows of `hidden`. Row for row the per-row sweep, with a
/// single dispatch per step instead of one per batch row.
///
/// # Panics
///
/// Panics if `hidden` is zero or any slice is not a whole number of
/// rows of its expected width.
pub fn lstm_gates_train_batch(z: &[f32], c_prev: &[f32], hidden: usize, out: &mut GateCaches<'_>) {
    assert!(hidden > 0, "hidden width must be non-zero");
    let bh = c_prev.len();
    assert!(
        bh.is_multiple_of(hidden),
        "c_prev must be whole hidden rows"
    );
    assert_eq!(z.len(), 4 * bh, "gate batch must be 4x hidden per row");
    assert!(
        out.i.len() == bh
            && out.f.len() == bh
            && out.g.len() == bh
            && out.o.len() == bh
            && out.c.len() == bh
            && out.tanh_c.len() == bh
            && out.h.len() == bh,
        "gate cache length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::gates_train_batch(z, c_prev, hidden, out) };
        return;
    }
    gates_train_batch_scalar(z, c_prev, hidden, out);
}

fn gates_eval_scalar(
    zi: &[f32],
    zf: &[f32],
    zg: &[f32],
    zo: &[f32],
    c_prev: &[f32],
    c_out: &mut [f32],
    h_out: &mut [f32],
) {
    for k in 0..c_prev.len() {
        let iv = vmath::sigmoid(zi[k]);
        let fv = vmath::sigmoid(zf[k]);
        let gv = vmath::tanh(zg[k]);
        let ov = vmath::sigmoid(zo[k]);
        let cv = fv * c_prev[k] + iv * gv;
        let tc = vmath::tanh(cv);
        c_out[k] = cv;
        h_out[k] = ov * tc;
    }
}

/// Fused eval-mode LSTM gate sweep over one batch row: the exact
/// per-element expressions of [`lstm_gates_train`], writing only the
/// new cell state and hidden output (no BPTT caches).
///
/// # Panics
///
/// Panics if `z_row` is not `4 × c_prev.len()` or an output slice
/// differs from `c_prev` in length.
pub fn lstm_gates_eval(z_row: &[f32], c_prev: &[f32], c_out: &mut [f32], h_out: &mut [f32]) {
    let h = c_prev.len();
    assert_eq!(z_row.len(), 4 * h, "gate row must be 4x hidden");
    assert!(
        c_out.len() == h && h_out.len() == h,
        "gate output length mismatch"
    );
    let (zi, zf, zg, zo) = split_gates(z_row, h);
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::gates_eval(zi, zf, zg, zo, c_prev, c_out, h_out) };
        return;
    }
    gates_eval_scalar(zi, zf, zg, zo, c_prev, c_out, h_out);
}

fn gates_eval_batch_scalar(
    z: &[f32],
    c_prev: &[f32],
    hidden: usize,
    c_out: &mut [f32],
    h_out: &mut [f32],
) {
    let hw = 4 * hidden;
    for r in 0..c_prev.len() / hidden {
        let (zi, zf, zg, zo) = split_gates(&z[r * hw..(r + 1) * hw], hidden);
        let span = r * hidden..(r + 1) * hidden;
        gates_eval_scalar(
            zi,
            zf,
            zg,
            zo,
            &c_prev[span.clone()],
            &mut c_out[span.clone()],
            &mut h_out[span],
        );
    }
}

/// Whole-batch [`lstm_gates_eval`]: the batch shape of
/// [`lstm_gates_train_batch`], writing only the new cell and hidden
/// rows. One dispatch per step.
///
/// # Panics
///
/// Panics if `hidden` is zero or any slice is not a whole number of
/// rows of its expected width.
pub fn lstm_gates_eval_batch(
    z: &[f32],
    c_prev: &[f32],
    hidden: usize,
    c_out: &mut [f32],
    h_out: &mut [f32],
) {
    assert!(hidden > 0, "hidden width must be non-zero");
    let bh = c_prev.len();
    assert!(
        bh.is_multiple_of(hidden),
        "c_prev must be whole hidden rows"
    );
    assert_eq!(z.len(), 4 * bh, "gate batch must be 4x hidden per row");
    assert!(
        c_out.len() == bh && h_out.len() == bh,
        "gate output length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)] // SAFETY justified inline; guarded by `simd_active`.
    if simd_active() {
        // SAFETY: `simd_active` implies AVX2 was detected at runtime.
        unsafe { avx2::gates_eval_batch(z, c_prev, hidden, c_out, h_out) };
        return;
    }
    gates_eval_batch_scalar(z, c_prev, hidden, c_out, h_out);
}

/// The AVX2 lane implementations. Every function mirrors its scalar
/// sibling operation for operation; tails below one vector width run
/// the scalar code itself. This is the only module in the crate allowed
/// to use `unsafe` (intrinsics + `#[target_feature]`); callers uphold
/// the single safety contract that AVX2 was detected at runtime.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use core::arch::x86_64::{
        __m256, _mm256_add_epi32, _mm256_add_ps, _mm256_castsi256_ps, _mm256_cvtps_epi32,
        _mm256_div_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps,
        _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps, _mm256_slli_epi32, _mm256_storeu_ps,
        _mm256_sub_ps, _mm256_xor_ps,
    };

    use super::{split_gates, tail_reduce, GateCaches, LANES};
    use crate::vmath;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(xs: &[f32], i: usize) -> __m256 {
        debug_assert!(i + LANES <= xs.len());
        _mm256_loadu_ps(xs.as_ptr().add(i))
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(xs: &mut [f32], i: usize, v: __m256) {
        debug_assert!(i + LANES <= xs.len());
        _mm256_storeu_ps(xs.as_mut_ptr().add(i), v)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn spill(v: __m256) -> [f32; LANES] {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        lanes
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let head = a.len() - a.len() % LANES;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < head {
            acc = _mm256_add_ps(acc, _mm256_mul_ps(load(a, i), load(b, i)));
            i += LANES;
        }
        tail_reduce(spill(acc), &a[head..], &b[head..])
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot4(
        a: &[f32],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) -> [f32; 4] {
        let head = a.len() - a.len() % LANES;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0;
        // Four independent single-accumulator chains: each output
        // element keeps the canonical 8-lane order while the four
        // chains overlap in the FP pipeline.
        while i < head {
            let va = load(a, i);
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, load(b0, i)));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, load(b1, i)));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, load(b2, i)));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, load(b3, i)));
            i += LANES;
        }
        let at = &a[head..];
        [
            tail_reduce(spill(acc0), at, &b0[head..]),
            tail_reduce(spill(acc1), at, &b1[head..]),
            tail_reduce(spill(acc2), at, &b2[head..]),
            tail_reduce(spill(acc3), at, &b3[head..]),
        ]
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let head = x.len() - x.len() % LANES;
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i < head {
            let prod = _mm256_mul_ps(va, load(x, i));
            store(y, i, _mm256_add_ps(load(y, i), prod));
            i += LANES;
        }
        for (o, &v) in y[head..].iter_mut().zip(&x[head..]) {
            *o += alpha * v;
        }
    }

    /// One dispatch per `k`-panel; per-`k` sweeps inline here because
    /// caller and callee share the target feature.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_panel(a_col: &[f32], b_panel: &[f32], y: &mut [f32]) {
        let n = y.len();
        for (k, &a) in a_col.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            axpy(a, &b_panel[k * n..(k + 1) * n], y);
        }
    }

    /// Fused two-row panel: one `b_k` load feeds both output rows.
    /// Element-for-element two independent [`axpy_panel`] sweeps —
    /// disjoint accumulators, identical zero-skip — so the fusion is
    /// pure bandwidth, never a bit.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_panel2(
        a0: &[f32],
        a1: &[f32],
        b_panel: &[f32],
        y0: &mut [f32],
        y1: &mut [f32],
    ) {
        let n = y0.len();
        let head = n - n % LANES;
        for (k, (&v0, &v1)) in a0.iter().zip(a1).enumerate() {
            if v0 == 0.0 && v1 == 0.0 {
                continue;
            }
            let b_row = &b_panel[k * n..(k + 1) * n];
            if v1 == 0.0 {
                axpy(v0, b_row, y0);
            } else if v0 == 0.0 {
                axpy(v1, b_row, y1);
            } else {
                let s0 = _mm256_set1_ps(v0);
                let s1 = _mm256_set1_ps(v1);
                let mut i = 0;
                while i < head {
                    let bv = load(b_row, i);
                    store(y0, i, _mm256_add_ps(load(y0, i), _mm256_mul_ps(s0, bv)));
                    store(y1, i, _mm256_add_ps(load(y1, i), _mm256_mul_ps(s1, bv)));
                    i += LANES;
                }
                for j in head..n {
                    y0[j] += v0 * b_row[j];
                    y1[j] += v1 * b_row[j];
                }
            }
        }
    }

    /// Four-row panel: the all-nonzero fast path fuses one `b_k` load
    /// into four row updates; any zero coefficient falls back to the
    /// per-row sweeps (same per-element flow either way).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_panel4(
        a: [&[f32]; 4],
        b_panel: &[f32],
        y0: &mut [f32],
        y1: &mut [f32],
        y2: &mut [f32],
        y3: &mut [f32],
    ) {
        let n = y0.len();
        let head = n - n % LANES;
        for k in 0..a[0].len() {
            let v = [a[0][k], a[1][k], a[2][k], a[3][k]];
            if v == [0.0; 4] {
                continue;
            }
            let b_row = &b_panel[k * n..(k + 1) * n];
            if v.contains(&0.0) {
                if v[0] != 0.0 {
                    axpy(v[0], b_row, y0);
                }
                if v[1] != 0.0 {
                    axpy(v[1], b_row, y1);
                }
                if v[2] != 0.0 {
                    axpy(v[2], b_row, y2);
                }
                if v[3] != 0.0 {
                    axpy(v[3], b_row, y3);
                }
                continue;
            }
            let s0 = _mm256_set1_ps(v[0]);
            let s1 = _mm256_set1_ps(v[1]);
            let s2 = _mm256_set1_ps(v[2]);
            let s3 = _mm256_set1_ps(v[3]);
            let mut i = 0;
            while i < head {
                let bv = load(b_row, i);
                store(y0, i, _mm256_add_ps(load(y0, i), _mm256_mul_ps(s0, bv)));
                store(y1, i, _mm256_add_ps(load(y1, i), _mm256_mul_ps(s1, bv)));
                store(y2, i, _mm256_add_ps(load(y2, i), _mm256_mul_ps(s2, bv)));
                store(y3, i, _mm256_add_ps(load(y3, i), _mm256_mul_ps(s3, bv)));
                i += LANES;
            }
            for j in head..n {
                y0[j] += v[0] * b_row[j];
                y1[j] += v[1] * b_row[j];
                y2[j] += v[2] * b_row[j];
                y3[j] += v[3] * b_row[j];
            }
        }
    }

    /// One dispatch per column block; the dot bodies inline here.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_rows(a: &[f32], b_rows: &[f32], out: &mut [f32]) {
        let k = a.len();
        let mut c = 0;
        while c + 4 <= out.len() {
            let b = &b_rows[c * k..(c + 4) * k];
            let (b0, rest) = b.split_at(k);
            let (b1, rest) = rest.split_at(k);
            let (b2, b3) = rest.split_at(k);
            let s = dot4(a, b0, b1, b2, b3);
            out[c..c + 4].copy_from_slice(&s);
            c += 4;
        }
        while c < out.len() {
            out[c] = dot(a, &b_rows[c * k..(c + 1) * k]);
            c += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add2_bias(z: &mut [f32], w: &[f32], b: &[f32]) {
        let head = z.len() - z.len() % LANES;
        let mut i = 0;
        while i < head {
            let zw = _mm256_add_ps(load(z, i), load(w, i));
            store(z, i, _mm256_add_ps(zw, load(b, i)));
            i += LANES;
        }
        for ((v, &wv), &bv) in z[head..].iter_mut().zip(&w[head..]).zip(&b[head..]) {
            *v = (*v + wv) + bv;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add2_bias_rows(z: &mut [f32], w: &[f32], b: &[f32]) {
        let n = b.len();
        for (zr, wr) in z.chunks_exact_mut(n).zip(w.chunks_exact(n)) {
            add2_bias(zr, wr, b);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn relu(xs: &mut [f32]) {
        let head = xs.len() - xs.len() % LANES;
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i < head {
            store(xs, i, _mm256_max_ps(load(xs, i), zero));
            i += LANES;
        }
        for v in &mut xs[head..] {
            *v = vmath::max(*v, 0.0);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bn_affine(
        row: &mut [f32],
        mean: &[f32],
        inv_std: &[f32],
        gamma: &[f32],
        beta: &[f32],
    ) {
        let head = row.len() - row.len() % LANES;
        let mut i = 0;
        while i < head {
            let centered = _mm256_sub_ps(load(row, i), load(mean, i));
            let scaled = _mm256_mul_ps(_mm256_mul_ps(load(gamma, i), centered), load(inv_std, i));
            store(row, i, _mm256_add_ps(scaled, load(beta, i)));
            i += LANES;
        }
        let tail = head..row.len();
        super::bn_affine_scalar(
            &mut row[tail.clone()],
            &mean[tail.clone()],
            &inv_std[tail.clone()],
            &gamma[tail.clone()],
            &beta[tail],
        );
    }

    /// 8-lane [`vmath::exp`]: the identical clamp, shifter rounding,
    /// Cody–Waite reduction, Horner polynomial and exponent-field
    /// scale, one operation per scalar step.
    ///
    /// `target_feature` matters here even though every caller already
    /// has it: without the attribute this helper compiles for the base
    /// target and each `__m256` crosses the call boundary through
    /// memory, which costs more than the vectorisation saves.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn exp_lanes(x: __m256) -> __m256 {
        let x = _mm256_max_ps(x, _mm256_set1_ps(-vmath::EXP_CLAMP));
        let x = _mm256_min_ps(x, _mm256_set1_ps(vmath::EXP_CLAMP));
        let y = _mm256_mul_ps(x, _mm256_set1_ps(vmath::LOG2E));
        let shifter = _mm256_set1_ps(vmath::SHIFTER);
        let k = _mm256_sub_ps(_mm256_add_ps(y, shifter), shifter);
        let r = _mm256_sub_ps(
            _mm256_sub_ps(x, _mm256_mul_ps(k, _mm256_set1_ps(vmath::LN2_HI))),
            _mm256_mul_ps(k, _mm256_set1_ps(vmath::LN2_LO)),
        );
        let mut p = _mm256_set1_ps(vmath::EXP_POLY[7]);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(vmath::EXP_POLY[6]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(vmath::EXP_POLY[5]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(vmath::EXP_POLY[4]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(vmath::EXP_POLY[3]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(vmath::EXP_POLY[2]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(vmath::EXP_POLY[1]));
        p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(vmath::EXP_POLY[0]));
        // `k` is integer-valued, so the round-to-nearest conversion is
        // exact and matches the scalar truncating cast.
        let ki = _mm256_cvtps_epi32(k);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(ki, _mm256_set1_epi32(127)),
            23,
        ));
        _mm256_mul_ps(p, scale)
    }

    /// 8-lane [`vmath::tanh`].
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tanh_lanes(x: __m256) -> __m256 {
        let t = _mm256_max_ps(x, _mm256_set1_ps(-vmath::TANH_CLAMP));
        let t = _mm256_min_ps(t, _mm256_set1_ps(vmath::TANH_CLAMP));
        let e = exp_lanes(_mm256_add_ps(t, t));
        let one = _mm256_set1_ps(1.0);
        _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one))
    }

    /// 8-lane [`vmath::sigmoid`]; negation is the sign-bit flip, the
    /// exact bit operation of scalar `-x`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sigmoid_lanes(x: __m256) -> __m256 {
        let sign = _mm256_castsi256_ps(_mm256_set1_epi32(i32::MIN));
        let e = exp_lanes(_mm256_xor_ps(x, sign));
        let one = _mm256_set1_ps(1.0);
        _mm256_div_ps(one, _mm256_add_ps(one, e))
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn gates_train(
        zi: &[f32],
        zf: &[f32],
        zg: &[f32],
        zo: &[f32],
        c_prev: &[f32],
        out: &mut GateCaches<'_>,
    ) {
        let h = c_prev.len();
        let head = h - h % LANES;
        let mut k = 0;
        // Two vector blocks per iteration: the per-block dataflow is
        // untouched (blocks write disjoint elements), but interleaving
        // two independent sigmoid/tanh Horner chains hides their
        // mul→add latency — the sweep is latency-bound, not
        // throughput-bound, without FMA.
        while k + 2 * LANES <= head {
            let iv0 = sigmoid_lanes(load(zi, k));
            let iv1 = sigmoid_lanes(load(zi, k + LANES));
            let fv0 = sigmoid_lanes(load(zf, k));
            let fv1 = sigmoid_lanes(load(zf, k + LANES));
            let gv0 = tanh_lanes(load(zg, k));
            let gv1 = tanh_lanes(load(zg, k + LANES));
            let ov0 = sigmoid_lanes(load(zo, k));
            let ov1 = sigmoid_lanes(load(zo, k + LANES));
            let cv0 = _mm256_add_ps(_mm256_mul_ps(fv0, load(c_prev, k)), _mm256_mul_ps(iv0, gv0));
            let cv1 = _mm256_add_ps(
                _mm256_mul_ps(fv1, load(c_prev, k + LANES)),
                _mm256_mul_ps(iv1, gv1),
            );
            let tc0 = tanh_lanes(cv0);
            let tc1 = tanh_lanes(cv1);
            store(out.i, k, iv0);
            store(out.i, k + LANES, iv1);
            store(out.f, k, fv0);
            store(out.f, k + LANES, fv1);
            store(out.g, k, gv0);
            store(out.g, k + LANES, gv1);
            store(out.o, k, ov0);
            store(out.o, k + LANES, ov1);
            store(out.c, k, cv0);
            store(out.c, k + LANES, cv1);
            store(out.tanh_c, k, tc0);
            store(out.tanh_c, k + LANES, tc1);
            store(out.h, k, _mm256_mul_ps(ov0, tc0));
            store(out.h, k + LANES, _mm256_mul_ps(ov1, tc1));
            k += 2 * LANES;
        }
        while k < head {
            let iv = sigmoid_lanes(load(zi, k));
            let fv = sigmoid_lanes(load(zf, k));
            let gv = tanh_lanes(load(zg, k));
            let ov = sigmoid_lanes(load(zo, k));
            let cv = _mm256_add_ps(_mm256_mul_ps(fv, load(c_prev, k)), _mm256_mul_ps(iv, gv));
            let tc = tanh_lanes(cv);
            store(out.i, k, iv);
            store(out.f, k, fv);
            store(out.g, k, gv);
            store(out.o, k, ov);
            store(out.c, k, cv);
            store(out.tanh_c, k, tc);
            store(out.h, k, _mm256_mul_ps(ov, tc));
            k += LANES;
        }
        while k < h {
            let iv = vmath::sigmoid(zi[k]);
            let fv = vmath::sigmoid(zf[k]);
            let gv = vmath::tanh(zg[k]);
            let ov = vmath::sigmoid(zo[k]);
            let cv = fv * c_prev[k] + iv * gv;
            let tc = vmath::tanh(cv);
            out.i[k] = iv;
            out.f[k] = fv;
            out.g[k] = gv;
            out.o[k] = ov;
            out.c[k] = cv;
            out.tanh_c[k] = tc;
            out.h[k] = ov * tc;
            k += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn gates_eval(
        zi: &[f32],
        zf: &[f32],
        zg: &[f32],
        zo: &[f32],
        c_prev: &[f32],
        c_out: &mut [f32],
        h_out: &mut [f32],
    ) {
        let h = c_prev.len();
        let head = h - h % LANES;
        let mut k = 0;
        // Same two-block interleave as the training sweep: disjoint
        // elements, independent latency chains.
        while k + 2 * LANES <= head {
            let iv0 = sigmoid_lanes(load(zi, k));
            let iv1 = sigmoid_lanes(load(zi, k + LANES));
            let fv0 = sigmoid_lanes(load(zf, k));
            let fv1 = sigmoid_lanes(load(zf, k + LANES));
            let gv0 = tanh_lanes(load(zg, k));
            let gv1 = tanh_lanes(load(zg, k + LANES));
            let ov0 = sigmoid_lanes(load(zo, k));
            let ov1 = sigmoid_lanes(load(zo, k + LANES));
            let cv0 = _mm256_add_ps(_mm256_mul_ps(fv0, load(c_prev, k)), _mm256_mul_ps(iv0, gv0));
            let cv1 = _mm256_add_ps(
                _mm256_mul_ps(fv1, load(c_prev, k + LANES)),
                _mm256_mul_ps(iv1, gv1),
            );
            let tc0 = tanh_lanes(cv0);
            let tc1 = tanh_lanes(cv1);
            store(c_out, k, cv0);
            store(c_out, k + LANES, cv1);
            store(h_out, k, _mm256_mul_ps(ov0, tc0));
            store(h_out, k + LANES, _mm256_mul_ps(ov1, tc1));
            k += 2 * LANES;
        }
        while k < head {
            let iv = sigmoid_lanes(load(zi, k));
            let fv = sigmoid_lanes(load(zf, k));
            let gv = tanh_lanes(load(zg, k));
            let ov = sigmoid_lanes(load(zo, k));
            let cv = _mm256_add_ps(_mm256_mul_ps(fv, load(c_prev, k)), _mm256_mul_ps(iv, gv));
            let tc = tanh_lanes(cv);
            store(c_out, k, cv);
            store(h_out, k, _mm256_mul_ps(ov, tc));
            k += LANES;
        }
        while k < h {
            let iv = vmath::sigmoid(zi[k]);
            let fv = vmath::sigmoid(zf[k]);
            let gv = vmath::tanh(zg[k]);
            let ov = vmath::sigmoid(zo[k]);
            let cv = fv * c_prev[k] + iv * gv;
            let tc = vmath::tanh(cv);
            c_out[k] = cv;
            h_out[k] = ov * tc;
            k += 1;
        }
    }

    /// One dispatch per step: the per-row sweep inlines into the batch
    /// loop because caller and callee share the target feature.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gates_train_batch(
        z: &[f32],
        c_prev: &[f32],
        hidden: usize,
        out: &mut GateCaches<'_>,
    ) {
        let hw = 4 * hidden;
        for r in 0..c_prev.len() / hidden {
            let (zi, zf, zg, zo) = split_gates(&z[r * hw..(r + 1) * hw], hidden);
            let span = r * hidden..(r + 1) * hidden;
            let mut row = GateCaches {
                i: &mut out.i[span.clone()],
                f: &mut out.f[span.clone()],
                g: &mut out.g[span.clone()],
                o: &mut out.o[span.clone()],
                c: &mut out.c[span.clone()],
                tanh_c: &mut out.tanh_c[span.clone()],
                h: &mut out.h[span.clone()],
            };
            gates_train(zi, zf, zg, zo, &c_prev[span], &mut row);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gates_eval_batch(
        z: &[f32],
        c_prev: &[f32],
        hidden: usize,
        c_out: &mut [f32],
        h_out: &mut [f32],
    ) {
        let hw = 4 * hidden;
        for r in 0..c_prev.len() / hidden {
            let (zi, zf, zg, zo) = split_gates(&z[r * hw..(r + 1) * hw], hidden);
            let span = r * hidden..(r + 1) * hidden;
            gates_eval(
                zi,
                zf,
                zg,
                zo,
                &c_prev[span.clone()],
                &mut c_out[span.clone()],
                &mut h_out[span],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(n: usize, salt: u64) -> Vec<f32> {
        let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if (i + (s as usize & 7)).is_multiple_of(11) {
                    0.0
                } else {
                    (s >> 40) as f32 / 2e6 - 4.0
                }
            })
            .collect()
    }

    /// Serializes tests that flip the global force-scalar toggle.
    fn toggle_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        &LOCK
    }

    /// Runs `f` once with the SIMD path live and once forced scalar,
    /// returning both results. The toggle is global, but results are
    /// bit-identical on both paths, so other (non-toggling) tests can
    /// race this without observing a difference.
    fn both_paths<T>(mut f: impl FnMut() -> T) -> (T, T) {
        let _guard = toggle_lock().lock().unwrap();
        set_force_scalar(false);
        let native = f();
        set_force_scalar(true);
        let scalar = f();
        set_force_scalar(false);
        (native, scalar)
    }

    /// The tentpole contract, at the kernel level: every SIMD kernel is
    /// bit-identical to its scalar fallback on ragged lengths (not
    /// multiples of 8, below one vector, empty).
    #[test]
    fn simd_and_scalar_kernels_agree_bit_for_bit_on_ragged_lengths() {
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
            let a = noisy(n, 1 + n as u64);
            let b = noisy(n, 1000 + n as u64);
            let (x, y) = both_paths(|| dot(&a, &b).to_bits());
            assert_eq!(x, y, "dot diverged at n={n}");

            let y0 = noisy(n, 7 + n as u64);
            let (x, y) = both_paths(|| {
                let mut out = y0.clone();
                axpy(0.37, &a, &mut out);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_eq!(x, y, "axpy diverged at n={n}");

            let (x, y) = both_paths(|| {
                let mut out = y0.clone();
                relu(&mut out);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_eq!(x, y, "relu diverged at n={n}");

            let (x, y) = both_paths(|| {
                let mut out = y0.clone();
                add2_bias(&mut out, &a, &b);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_eq!(x, y, "add2_bias diverged at n={n}");

            let (mean, inv_std) = (noisy(n, 21), noisy(n, 22));
            let (gamma, beta) = (noisy(n, 23), noisy(n, 24));
            let (x, y) = both_paths(|| {
                let mut out = y0.clone();
                bn_affine(&mut out, &mean, &inv_std, &gamma, &beta);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_eq!(x, y, "bn_affine diverged at n={n}");
        }
    }

    /// The block-level kernels are defined as the exact call sequences
    /// they replace: a panel is a `k`-loop of axpy calls, a row sweep
    /// is a column loop of dot/dot4 calls, a batch gate pass is a row
    /// loop of per-row passes. Pin that equivalence bit for bit, on
    /// both dispatch paths, over ragged shapes.
    #[test]
    fn block_kernels_match_their_small_call_sequences() {
        for (kt, n) in [
            (1usize, 1usize),
            (3, 7),
            (8, 8),
            (13, 31),
            (32, 33),
            (20, 64),
        ] {
            let a0 = noisy(kt, 61 + n as u64);
            let a1 = noisy(kt, 62 + n as u64);
            let b = noisy(kt * n, 63 + n as u64);
            let y_init = noisy(n, 64 + n as u64);

            // axpy_panel2 vs the per-k axpy loop (zero-skip included).
            let reference = || {
                let (mut y0, mut y1) = (y_init.clone(), y_init.clone());
                for k in 0..kt {
                    let b_row = &b[k * n..(k + 1) * n];
                    if a0[k] != 0.0 {
                        axpy(a0[k], b_row, &mut y0);
                    }
                    if a1[k] != 0.0 {
                        axpy(a1[k], b_row, &mut y1);
                    }
                }
                (y0, y1)
            };
            let panel = || {
                let (mut y0, mut y1) = (y_init.clone(), y_init.clone());
                axpy_panel2(&a0, &a1, &b, &mut y0, &mut y1);
                (y0, y1)
            };
            let (r_native, r_scalar) = both_paths(reference);
            let (p_native, p_scalar) = both_paths(panel);
            assert_eq!(r_native, r_scalar, "axpy reference diverged at {kt}x{n}");
            assert_eq!(p_native, p_scalar, "axpy_panel2 diverged at {kt}x{n}");
            assert_eq!(r_native, p_native, "axpy_panel2 != axpy loop at {kt}x{n}");

            // axpy_panel (single row) vs the same loop on y0 only.
            let (s_native, s_scalar) = both_paths(|| {
                let mut y = y_init.clone();
                axpy_panel(&a0, &b, &mut y);
                y
            });
            assert_eq!(s_native, s_scalar, "axpy_panel diverged at {kt}x{n}");
            assert_eq!(s_native, r_native.0, "axpy_panel != axpy loop at {kt}x{n}");

            // axpy_panel4 vs the same loop over four rows.
            let a2 = noisy(kt, 66 + n as u64);
            let a3 = noisy(kt, 67 + n as u64);
            let quad_ref = || {
                let mut ys = [
                    y_init.clone(),
                    y_init.clone(),
                    y_init.clone(),
                    y_init.clone(),
                ];
                for (col, y) in [&a0, &a1, &a2, &a3].into_iter().zip(ys.iter_mut()) {
                    axpy_panel(col, &b, y);
                }
                ys
            };
            let quad = || {
                let mut ys = [
                    y_init.clone(),
                    y_init.clone(),
                    y_init.clone(),
                    y_init.clone(),
                ];
                let [y0, y1, y2, y3] = &mut ys;
                axpy_panel4([&a0, &a1, &a2, &a3], &b, y0, y1, y2, y3);
                ys
            };
            let (q_native, q_scalar) = both_paths(quad);
            assert_eq!(q_native, q_scalar, "axpy_panel4 diverged at {kt}x{n}");
            let (qr_native, _) = both_paths(quad_ref);
            assert_eq!(q_native, qr_native, "axpy_panel4 != panel loop at {kt}x{n}");

            // dot_rows vs per-column dot calls. Reuse b as an n×kt
            // packed right block.
            let a = noisy(kt, 65 + n as u64);
            let (d_native, d_scalar) = both_paths(|| {
                let mut out = vec![0.0f32; n];
                dot_rows(&a, &b, &mut out);
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_eq!(d_native, d_scalar, "dot_rows diverged at {kt}x{n}");
            let singles: Vec<u32> = (0..n)
                .map(|c| dot(&a, &b[c * kt..(c + 1) * kt]).to_bits())
                .collect();
            assert_eq!(d_native, singles, "dot_rows != dot loop at {kt}x{n}");
        }

        // add2_bias_rows and the batch gate sweeps vs their row loops.
        for (batch, h) in [(1usize, 1usize), (2, 11), (4, 16), (5, 32), (3, 37)] {
            let hw = 4 * h;
            let z0 = noisy(batch * hw, 71 + h as u64);
            let w = noisy(batch * hw, 72 + h as u64);
            let bias = noisy(hw, 73 + h as u64);
            let (b_native, b_scalar) = both_paths(|| {
                let mut z = z0.clone();
                add2_bias_rows(&mut z, &w, &bias);
                z.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            });
            assert_eq!(
                b_native, b_scalar,
                "add2_bias_rows diverged at {batch}x{hw}"
            );
            let mut rows = z0.clone();
            for r in 0..batch {
                add2_bias(
                    &mut rows[r * hw..(r + 1) * hw],
                    &w[r * hw..(r + 1) * hw],
                    &bias,
                );
            }
            let rows: Vec<u32> = rows.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b_native, rows, "add2_bias_rows != row loop at {batch}x{hw}");

            let c_prev = noisy(batch * h, 74 + h as u64);
            let run_batch = || {
                let mut i = vec![0.0; batch * h];
                let mut f = vec![0.0; batch * h];
                let mut g = vec![0.0; batch * h];
                let mut o = vec![0.0; batch * h];
                let mut c = vec![0.0; batch * h];
                let mut tc = vec![0.0; batch * h];
                let mut hh = vec![0.0; batch * h];
                lstm_gates_train_batch(
                    &z0,
                    &c_prev,
                    h,
                    &mut GateCaches {
                        i: &mut i,
                        f: &mut f,
                        g: &mut g,
                        o: &mut o,
                        c: &mut c,
                        tanh_c: &mut tc,
                        h: &mut hh,
                    },
                );
                (c, hh)
            };
            let (t_native, t_scalar) = both_paths(run_batch);
            assert_eq!(t_native, t_scalar, "train batch diverged at {batch}x{h}");
            let mut c_rows = vec![0.0f32; batch * h];
            let mut h_rows = vec![0.0f32; batch * h];
            for r in 0..batch {
                let span = r * h..(r + 1) * h;
                let mut c_row = vec![0.0f32; h];
                let mut h_row = vec![0.0f32; h];
                lstm_gates_eval(
                    &z0[r * hw..(r + 1) * hw],
                    &c_prev[span.clone()],
                    &mut c_row,
                    &mut h_row,
                );
                c_rows[span.clone()].copy_from_slice(&c_row);
                h_rows[span].copy_from_slice(&h_row);
            }
            assert_eq!(
                t_native.0, c_rows,
                "train batch c != row loop at {batch}x{h}"
            );
            assert_eq!(
                t_native.1, h_rows,
                "train batch h != row loop at {batch}x{h}"
            );

            let (e_native, e_scalar) = both_paths(|| {
                let mut c = vec![0.0; batch * h];
                let mut hh = vec![0.0; batch * h];
                lstm_gates_eval_batch(&z0, &c_prev, h, &mut c, &mut hh);
                (c, hh)
            });
            assert_eq!(e_native, e_scalar, "eval batch diverged at {batch}x{h}");
            assert_eq!(
                t_native, e_native,
                "train and eval batches disagree at {batch}x{h}"
            );
        }
    }

    #[test]
    fn dot4_matches_four_independent_dots() {
        for n in [0usize, 5, 8, 13, 32, 47] {
            let a = noisy(n, 31);
            let bs: Vec<Vec<f32>> = (0..4).map(|j| noisy(n, 40 + j)).collect();
            let grouped = dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for (j, b) in bs.iter().enumerate() {
                assert_eq!(
                    grouped[j].to_bits(),
                    dot(&a, b).to_bits(),
                    "dot4 lane {j} diverged at n={n}"
                );
            }
        }
    }

    #[test]
    fn gate_sweeps_agree_across_paths_and_with_each_other() {
        for h in [1usize, 4, 8, 11, 16, 32, 37] {
            let z = noisy(4 * h, 51 + h as u64);
            let c_prev = noisy(h, 52);
            let run_train = || {
                let mut i = vec![0.0; h];
                let mut f = vec![0.0; h];
                let mut g = vec![0.0; h];
                let mut o = vec![0.0; h];
                let mut c = vec![0.0; h];
                let mut tc = vec![0.0; h];
                let mut hh = vec![0.0; h];
                lstm_gates_train(
                    &z,
                    &c_prev,
                    &mut GateCaches {
                        i: &mut i,
                        f: &mut f,
                        g: &mut g,
                        o: &mut o,
                        c: &mut c,
                        tanh_c: &mut tc,
                        h: &mut hh,
                    },
                );
                (c, hh)
            };
            let (native, scalar) = both_paths(run_train);
            assert_eq!(native, scalar, "train gate sweep diverged at h={h}");

            let run_eval = || {
                let mut c = vec![0.0; h];
                let mut hh = vec![0.0; h];
                lstm_gates_eval(&z, &c_prev, &mut c, &mut hh);
                (c, hh)
            };
            let (e_native, e_scalar) = both_paths(run_eval);
            assert_eq!(e_native, e_scalar, "eval gate sweep diverged at h={h}");
            // Eval is the train sweep minus the caches.
            assert_eq!(native, e_native, "train and eval sweeps disagree at h={h}");
        }
    }

    #[test]
    fn tree_reduce_is_the_fixed_avx_shape() {
        let s = [1.0f32, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let want = ((1.0f32 + 16.0) + (4.0 + 64.0)) + ((2.0 + 32.0) + (8.0 + 128.0));
        assert_eq!(tree_reduce(s).to_bits(), want.to_bits());
    }

    #[test]
    fn force_scalar_toggle_is_observable() {
        let _guard = toggle_lock().lock().unwrap();
        set_force_scalar(true);
        assert!(!simd_active(), "forced scalar must disable SIMD");
        set_force_scalar(false);
    }
}
