//! A sequence-input LSTM layer with backpropagation through time.
//!
//! Gate layout follows the usual convention: for input `x_t` (batch × in)
//! and previous hidden `h_{t-1}` (batch × hidden),
//!
//! ```text
//! z_t = x_t·W_ihᵀ + h_{t-1}·W_hhᵀ + b          (batch × 4·hidden)
//! i = σ(z[0:H])   f = σ(z[H:2H])
//! g = tanh(z[2H:3H])   o = σ(z[3H:4H])
//! c_t = f ⊙ c_{t-1} + i ⊙ g
//! h_t = o ⊙ tanh(c_t)
//! ```
//!
//! [`Lstm::forward_seq`] returns the hidden state at every step so LSTMs
//! can be stacked (the paper's models use two); [`Lstm::backward_seq`]
//! accepts a per-step output gradient (zeros everywhere except the last
//! step for a last-hidden-state readout) and returns per-step input
//! gradients for the layer below.

use adrias_core::rng::Rng;

use crate::init;
use crate::kernels::{self, GateCaches};
use crate::tensor::Tensor;

/// Reusable buffers for the allocation-free eval-mode forward pass
/// ([`Lstm::forward_seq_scratch`]).
///
/// Construction transposes the projection weights once and sizes every
/// intermediate buffer, so the steady-state forward performs zero heap
/// allocations (buffers grow only if a later call uses a larger batch
/// or a longer sequence). A scratch is bound to the `Lstm` it was built
/// from; rebuild it if the weights change.
#[derive(Debug, Clone, Default)]
pub struct LstmScratch {
    w_ih_t: Tensor, // in × 4H
    w_hh_t: Tensor, // H × 4H
    zx: Tensor,
    zh: Tensor,
    h0: Tensor,
    c: Tensor,
    c_next: Tensor,
    outputs: Vec<Tensor>,
}

impl LstmScratch {
    /// Builds a scratch for `lstm`, pre-transposing its weights and
    /// pre-sizing the step buffers for `batch` rows and `seq_len` steps.
    pub fn new(lstm: &Lstm, batch: usize, seq_len: usize) -> Self {
        let h = lstm.hidden_size;
        let mut s = Self {
            zx: Tensor::zeros(batch, 4 * h),
            zh: Tensor::zeros(batch, 4 * h),
            h0: Tensor::zeros(batch, h),
            c: Tensor::zeros(batch, h),
            c_next: Tensor::zeros(batch, h),
            outputs: (0..seq_len).map(|_| Tensor::zeros(batch, h)).collect(),
            ..Self::default()
        };
        lstm.w_ih.transpose_into(&mut s.w_ih_t);
        lstm.w_hh.transpose_into(&mut s.w_hh_t);
        s
    }

    /// The hidden state after step `seq_len - 1` of the most recent
    /// [`Lstm::forward_seq_scratch`] call on this scratch — the same
    /// tensor [`Lstm::forward_last_scratch`] returns, re-borrowable
    /// without re-running the forward.
    ///
    /// # Panics
    ///
    /// Panics if no forward of at least `seq_len` steps has run yet.
    pub fn last_output(&self, seq_len: usize) -> &Tensor {
        assert!(
            seq_len >= 1 && seq_len <= self.outputs.len(),
            "no forward of {seq_len} steps has run"
        );
        &self.outputs[seq_len - 1]
    }
}

/// Per-timestep cache for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    i: Tensor,
    f: Tensor,
    g: Tensor,
    o: Tensor,
    tanh_c: Tensor,
}

/// A single LSTM layer.
///
/// # Examples
///
/// ```
/// use adrias_nn::{Lstm, Tensor};
/// use adrias_core::rng::SeedableRng;
///
/// let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(0);
/// let mut lstm = Lstm::new(3, 8, &mut rng);
/// let seq: Vec<Tensor> = (0..5).map(|_| Tensor::zeros(2, 3)).collect();
/// let hidden = lstm.forward_seq(&seq);
/// assert_eq!(hidden.len(), 5);
/// assert_eq!(hidden[4].shape(), (2, 8));
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    input_size: usize,
    hidden_size: usize,
    w_ih: Tensor, // 4H × in
    w_hh: Tensor, // 4H × H
    bias: Tensor, // 1 × 4H
    grad_w_ih: Tensor,
    grad_w_hh: Tensor,
    grad_bias: Tensor,
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM mapping `input_size` features to a hidden state of
    /// `hidden_size`, with PyTorch-style `U(-1/√H, 1/√H)` initialization.
    pub fn new<R: Rng + ?Sized>(input_size: usize, hidden_size: usize, rng: &mut R) -> Self {
        let bound = 1.0 / (hidden_size as f32).sqrt();
        Self {
            input_size,
            hidden_size,
            w_ih: init::uniform(4 * hidden_size, input_size, bound, rng),
            w_hh: init::uniform(4 * hidden_size, hidden_size, bound, rng),
            bias: init::uniform(1, 4 * hidden_size, bound, rng),
            grad_w_ih: Tensor::zeros(4 * hidden_size, input_size),
            grad_w_hh: Tensor::zeros(4 * hidden_size, hidden_size),
            grad_bias: Tensor::zeros(1, 4 * hidden_size),
            cache: Vec::new(),
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden-state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Runs the LSTM over `seq` (each element `batch × input_size`),
    /// returning the hidden state after every step.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is empty or any step has the wrong width.
    pub fn forward_seq(&mut self, seq: &[Tensor]) -> Vec<Tensor> {
        assert!(!seq.is_empty(), "LSTM requires a non-empty sequence");
        let batch = seq[0].rows();
        let h = self.hidden_size;
        let hw = 4 * h;
        // Transpose the projection weights ONCE per sequence so every
        // step runs the cache-blocked `matmul_into` kernel (contiguous
        // inner loops over the 4H gate lanes) into reused buffers. The
        // accumulation over `k` stays in increasing order, so every
        // value is bit-identical to the per-step `matmul_transb` path.
        let w_ih_t = self.w_ih.transpose(); // in × 4H
        let w_hh_t = self.w_hh.transpose(); // H × 4H
        let mut zx = Tensor::zeros(batch, hw);
        let mut zh = Tensor::zeros(batch, hw);
        let mut h_prev = Tensor::zeros(batch, h);
        let mut c_prev = Tensor::zeros(batch, h);
        self.cache.clear();
        let mut outputs = Vec::with_capacity(seq.len());
        for x in seq {
            assert_eq!(
                x.cols(),
                self.input_size,
                "LSTM expects {} input features, got {}",
                self.input_size,
                x.cols()
            );
            assert_eq!(x.rows(), batch, "inconsistent batch size inside sequence");
            x.matmul_into(&w_ih_t, &mut zx);
            h_prev.matmul_into(&w_hh_t, &mut zh);
            // z = zx + zh + bias (row broadcast), fused in place into zx
            // via the vectorised whole-batch sweep.
            kernels::add2_bias_rows(zx.data_mut(), zh.data(), self.bias.data());
            // Fused vectorised gate pass: one whole-batch sweep computes
            // every gate, the new cell state and the hidden output
            // ([`kernels::lstm_gates_train_batch`] — the same canonical
            // expressions on the SIMD and scalar paths).
            let mut i_t = Tensor::zeros(batch, h);
            let mut f_t = Tensor::zeros(batch, h);
            let mut g_t = Tensor::zeros(batch, h);
            let mut o_t = Tensor::zeros(batch, h);
            let mut c_t = Tensor::zeros(batch, h);
            let mut tanh_c_t = Tensor::zeros(batch, h);
            let mut h_t = Tensor::zeros(batch, h);
            kernels::lstm_gates_train_batch(
                zx.data(),
                c_prev.data(),
                h,
                &mut GateCaches {
                    i: i_t.data_mut(),
                    f: f_t.data_mut(),
                    g: g_t.data_mut(),
                    o: o_t.data_mut(),
                    c: c_t.data_mut(),
                    tanh_c: tanh_c_t.data_mut(),
                    h: h_t.data_mut(),
                },
            );
            self.cache.push(StepCache {
                x: x.clone(),
                h_prev: std::mem::replace(&mut h_prev, h_t.clone()),
                c_prev: std::mem::replace(&mut c_prev, c_t),
                i: i_t,
                f: f_t,
                g: g_t,
                o: o_t,
                tanh_c: tanh_c_t,
            });
            outputs.push(h_t);
        }
        outputs
    }

    /// Convenience: forward and return only the final hidden state.
    pub fn forward_last(&mut self, seq: &[Tensor]) -> Tensor {
        self.forward_seq(seq)
            .pop()
            .expect("non-empty sequence yields an output")
    }

    /// Eval-mode [`Lstm::forward_seq`] into reusable `scratch` buffers:
    /// no BPTT cache, no per-step allocations, `&self` receiver.
    ///
    /// The arithmetic is the exact fused-gate formulation of
    /// [`Lstm::forward_seq`] — same kernels, same per-element expression
    /// and `k` order — so every returned hidden state is bit-identical
    /// to the training-path forward. Returns the per-step hidden states
    /// (for stacking); see [`Lstm::forward_last_scratch`] for the
    /// last-state readout.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is empty or any step has the wrong width, or if
    /// `scratch` was built for a different `Lstm` shape.
    pub fn forward_seq_scratch<'s>(
        &self,
        seq: &[Tensor],
        scratch: &'s mut LstmScratch,
    ) -> &'s [Tensor] {
        assert!(!seq.is_empty(), "LSTM requires a non-empty sequence");
        let batch = seq[0].rows();
        let h = self.hidden_size;
        let hw = 4 * h;
        assert_eq!(
            scratch.w_ih_t.shape(),
            (self.input_size, hw),
            "scratch built for a different LSTM shape"
        );
        let LstmScratch {
            w_ih_t,
            w_hh_t,
            zx,
            zh,
            h0,
            c,
            c_next,
            outputs,
        } = scratch;
        h0.reshape_for(batch, h);
        h0.data_mut().iter_mut().for_each(|v| *v = 0.0);
        c.reshape_for(batch, h);
        c.data_mut().iter_mut().for_each(|v| *v = 0.0);
        while outputs.len() < seq.len() {
            outputs.push(Tensor::zeros(batch, h));
        }
        for (t, x) in seq.iter().enumerate() {
            assert_eq!(
                x.cols(),
                self.input_size,
                "LSTM expects {} input features, got {}",
                self.input_size,
                x.cols()
            );
            assert_eq!(x.rows(), batch, "inconsistent batch size inside sequence");
            x.matmul_into(w_ih_t, zx);
            let h_prev = if t == 0 { &*h0 } else { &outputs[t - 1] };
            h_prev.matmul_into(w_hh_t, zh);
            // z = zx + zh + bias (row broadcast), fused in place into zx
            // — the same vectorised whole-batch sweep as the training
            // path.
            kernels::add2_bias_rows(zx.data_mut(), zh.data(), self.bias.data());
            // Fused vectorised gate sweep, element-for-element the
            // expressions of `forward_seq`, writing only h_t and c_t
            // (no BPTT cache).
            let h_t = &mut outputs[t];
            h_t.reshape_for(batch, h);
            c_next.reshape_for(batch, h);
            kernels::lstm_gates_eval_batch(
                zx.data(),
                c.data(),
                h,
                c_next.data_mut(),
                h_t.data_mut(),
            );
            std::mem::swap(c, c_next);
        }
        &scratch.outputs[..seq.len()]
    }

    /// Eval-mode last-hidden-state readout via
    /// [`Lstm::forward_seq_scratch`].
    pub fn forward_last_scratch<'s>(
        &self,
        seq: &[Tensor],
        scratch: &'s mut LstmScratch,
    ) -> &'s Tensor {
        let n = seq.len();
        &self.forward_seq_scratch(seq, scratch)[n - 1]
    }

    /// Backpropagates through time.
    ///
    /// `grad_hidden[t]` is the gradient of the loss w.r.t. the hidden
    /// output at step `t` (pass zero tensors for unused steps). Parameter
    /// gradients accumulate; the return value is the gradient w.r.t. each
    /// input step, for a stacked layer below.
    ///
    /// # Panics
    ///
    /// Panics if `grad_hidden` does not match the cached forward pass.
    pub fn backward_seq(&mut self, grad_hidden: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(
            grad_hidden.len(),
            self.cache.len(),
            "gradient steps {} do not match cached forward steps {}",
            grad_hidden.len(),
            self.cache.len()
        );
        assert!(
            !self.cache.is_empty(),
            "Lstm::backward_seq before forward_seq"
        );
        let batch = self.cache[0].x.rows();
        let h = self.hidden_size;
        let mut d_h_next = Tensor::zeros(batch, h);
        let mut d_c_next = Tensor::zeros(batch, h);
        let mut d_inputs = vec![Tensor::zeros(batch, self.input_size); self.cache.len()];
        for t in (0..self.cache.len()).rev() {
            let cache = &self.cache[t];
            let d_h = &grad_hidden[t] + &d_h_next;
            // h = o ⊙ tanh(c)
            let d_o = &d_h * &cache.tanh_c;
            let d_c = &(&d_h * &cache.o).zip(&cache.tanh_c, |dh_o, tc| dh_o * (1.0 - tc * tc))
                + &d_c_next;
            // c = f ⊙ c_prev + i ⊙ g
            let d_f = &d_c * &cache.c_prev;
            let d_i = &d_c * &cache.g;
            let d_g = &d_c * &cache.i;
            d_c_next = &d_c * &cache.f;
            // Pre-activation gradients.
            let dz_i = d_i.zip(&cache.i, |d, s| d * s * (1.0 - s));
            let dz_f = d_f.zip(&cache.f, |d, s| d * s * (1.0 - s));
            let dz_g = d_g.zip(&cache.g, |d, g| d * (1.0 - g * g));
            let dz_o = d_o.zip(&cache.o, |d, s| d * s * (1.0 - s));
            let dz = dz_i.hcat(&dz_f).hcat(&dz_g).hcat(&dz_o); // batch × 4H
                                                               // Parameter gradients.
            dz.matmul_transa_acc(&cache.x, &mut self.grad_w_ih);
            dz.matmul_transa_acc(&cache.h_prev, &mut self.grad_w_hh);
            self.grad_bias.add_assign(&dz.sum_rows());
            // Input and recurrent gradients.
            d_inputs[t] = dz.matmul(&self.w_ih);
            d_h_next = dz.matmul(&self.w_hh);
        }
        d_inputs
    }

    /// Backpropagates a gradient on the **final** hidden state only.
    pub fn backward_last(&mut self, grad_last: &Tensor) -> Vec<Tensor> {
        assert!(
            !self.cache.is_empty(),
            "Lstm::backward_last before forward_seq"
        );
        let batch = self.cache[0].x.rows();
        let mut grads = vec![Tensor::zeros(batch, self.hidden_size); self.cache.len()];
        let last = grads.len() - 1;
        grads[last] = grad_last.clone();
        self.backward_seq(&grads)
    }

    /// Visits `(parameter, gradient)` pairs in a stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w_ih, &mut self.grad_w_ih);
        f(&mut self.w_hh, &mut self.grad_w_hh);
        f(&mut self.bias, &mut self.grad_bias);
    }

    /// Zeroes accumulated parameter gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.scale_assign(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(1234)
    }

    fn toy_seq(t: usize, batch: usize, dim: usize, rng: &mut Xoshiro256pp) -> Vec<Tensor> {
        (0..t)
            .map(|_| init::uniform(batch, dim, 1.0, rng))
            .collect()
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let mut r = rng();
        let mut lstm = Lstm::new(4, 6, &mut r);
        let seq = toy_seq(7, 3, 4, &mut r);
        let out = lstm.forward_seq(&seq);
        assert_eq!(out.len(), 7);
        for h in &out {
            assert_eq!(h.shape(), (3, 6));
        }
    }

    #[test]
    fn hidden_states_are_bounded_by_tanh() {
        let mut r = rng();
        let mut lstm = Lstm::new(2, 4, &mut r);
        let seq = toy_seq(20, 2, 2, &mut r);
        for h in lstm.forward_seq(&seq) {
            assert!(h.data().iter().all(|&v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn scratch_forward_is_bit_identical_to_forward_seq() {
        let mut r = rng();
        let mut lstm = Lstm::new(4, 6, &mut r);
        let seq = toy_seq(9, 3, 4, &mut r);
        let want = lstm.forward_seq(&seq);
        let mut scratch = LstmScratch::new(&lstm, 3, 9);
        // Run twice through the same scratch: the second pass must see
        // no stale state from the first.
        for _ in 0..2 {
            let got = lstm.forward_seq_scratch(&seq, &mut scratch);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.shape(), w.shape());
                for (a, b) in g.data().iter().zip(w.data()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "scratch path must be bit-identical"
                    );
                }
            }
        }
        // Shorter sequences and smaller batches reuse the same scratch.
        let short = toy_seq(4, 2, 4, &mut r);
        let want_short = lstm.forward_last(&short);
        let got_short = lstm.forward_last_scratch(&short, &mut scratch);
        assert_eq!(got_short.data(), want_short.data());
    }

    #[test]
    fn forward_is_deterministic() {
        let mut r1 = rng();
        let mut lstm1 = Lstm::new(3, 5, &mut r1);
        let mut r2 = rng();
        let mut lstm2 = Lstm::new(3, 5, &mut r2);
        let seq = toy_seq(4, 2, 3, &mut rng());
        assert_eq!(lstm1.forward_last(&seq), lstm2.forward_last(&seq));
    }

    /// BPTT gradient check against finite differences on several
    /// parameters and an input element.
    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut r = rng();
        let mut lstm = Lstm::new(3, 4, &mut r);
        let seq = toy_seq(5, 2, 3, &mut r);
        let target = init::uniform(2, 4, 1.0, &mut r);

        let loss_of = |lstm: &mut Lstm, seq: &[Tensor]| -> f32 {
            let h = lstm.forward_last(seq);
            (&h - &target).map(|v| v * v).data().iter().sum::<f32>()
        };

        // Analytic gradients.
        let h = lstm.forward_last(&seq);
        let d_h = (&h - &target).map(|v| 2.0 * v);
        lstm.zero_grad();
        let d_inputs = lstm.backward_last(&d_h);

        let eps = 1e-3;
        let base = loss_of(&mut lstm.clone(), &seq);

        // Check several weight coordinates across all three parameters.
        for (pick, coords) in [(0usize, (2usize, 1usize)), (1, (5, 2)), (2, (0, 7))] {
            let mut probe = lstm.clone();
            let mut analytic = 0.0;
            {
                let mut idx = 0;
                probe.visit_params(&mut |p, g| {
                    if idx == pick {
                        let v = p.get(coords.0.min(p.rows() - 1), coords.1.min(p.cols() - 1));
                        p.set(
                            coords.0.min(p.rows() - 1),
                            coords.1.min(p.cols() - 1),
                            v + eps,
                        );
                        analytic = g.get(coords.0.min(g.rows() - 1), coords.1.min(g.cols() - 1));
                    }
                    idx += 1;
                });
            }
            let numeric = (loss_of(&mut probe, &seq) - base) / eps;
            assert!(
                (numeric - analytic).abs() < 0.08 * numeric.abs().max(0.5),
                "param {pick}: numeric {numeric} vs analytic {analytic}"
            );
        }

        // Check an input gradient at t=1.
        let mut seq2: Vec<Tensor> = seq.clone();
        let v = seq2[1].get(1, 2);
        seq2[1].set(1, 2, v + eps);
        let numeric = (loss_of(&mut lstm.clone(), &seq2) - base) / eps;
        let analytic = d_inputs[1].get(1, 2);
        assert!(
            (numeric - analytic).abs() < 0.08 * numeric.abs().max(0.5),
            "input grad numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn lstm_can_learn_to_sum_a_sequence() {
        // A sanity training task: predict the (scaled) sum of a short
        // scalar sequence from the last hidden state through a fixed
        // linear readout learned jointly.
        use crate::adam::Adam;
        use crate::layer::{Layer, Linear};
        use crate::loss::MseLoss;

        let mut r = rng();
        let mut lstm = Lstm::new(1, 8, &mut r);
        let mut head = Linear::new(8, 1, &mut r);
        let mut opt = Adam::new(5e-3);
        let mut loss = MseLoss::new();

        // 32 sequences of length 6.
        let seqs: Vec<Vec<f32>> = (0..32)
            .map(|_| (0..6).map(|_| r.gen_range(-0.5..0.5)).collect())
            .collect();
        let targets = Tensor::from_fn(32, 1, |row, _| seqs[row].iter().sum::<f32>() * 0.5);
        let batch_seq: Vec<Tensor> = (0..6)
            .map(|t| Tensor::from_fn(32, 1, |row, _| seqs[row][t]))
            .collect();

        let mut final_loss = f32::MAX;
        for _ in 0..300 {
            let h = lstm.forward_last(&batch_seq);
            let pred = head.forward(&h, true);
            final_loss = loss.forward(&pred, &targets);
            let d_pred = loss.backward();
            lstm.zero_grad();
            head.zero_grad();
            let d_h = head.backward(&d_pred);
            lstm.backward_last(&d_h);
            opt.begin_step();
            head.visit_params(&mut |p, g| opt.update(p, g));
            lstm.visit_params(&mut |p, g| opt.update(p, g));
        }
        assert!(
            final_loss < 0.01,
            "LSTM failed to learn sequence sum: loss {final_loss}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty sequence")]
    fn empty_sequence_rejected() {
        let mut lstm = Lstm::new(1, 1, &mut rng());
        let _ = lstm.forward_seq(&[]);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_before_forward_rejected() {
        let mut lstm = Lstm::new(1, 1, &mut rng());
        let _ = lstm.backward_last(&Tensor::zeros(1, 1));
    }
}
