//! Weight initialization.

use adrias_core::rng::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization for a `rows × cols` weight
/// matrix: samples from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Examples
///
/// ```
/// use adrias_core::rng::SeedableRng;
/// let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(0);
/// let w = adrias_nn::init::xavier_uniform(8, 4, &mut rng);
/// assert_eq!(w.shape(), (8, 4));
/// ```
pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// A `1 × features` bias row initialized to a small positive constant.
///
/// Zero-initialized biases let an unlucky weight draw start every unit
/// of a ReLU layer in the dead region (output and gradient both zero
/// for the whole input range), which silently freezes tiny nets — seed
/// 0 of the crate doctest used to hit exactly that. Starting at `0.01`
/// guarantees a unit with any non-negative pre-activation input begins
/// on the active side, while being small enough not to bias converged
/// solutions.
pub fn positive_bias(features: usize) -> Tensor {
    Tensor::full(1, features, 0.01)
}

/// Uniform initialization in `U(-bound, bound)`, used for LSTM weights
/// (PyTorch's default is `bound = 1/sqrt(hidden)`).
pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, bound: f32, rng: &mut R) -> Tensor {
    assert!(bound > 0.0, "bound must be positive");
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let w = xavier_uniform(10, 10, &mut rng);
        let a = (6.0f32 / 20.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= a));
        // Not all-zero.
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let w = uniform(5, 5, 0.1, &mut rng);
        assert!(w.data().iter().all(|&v| v.abs() <= 0.1));
    }

    #[test]
    fn positive_bias_is_small_and_positive() {
        let b = positive_bias(8);
        assert_eq!(b.shape(), (1, 8));
        assert!(b.data().iter().all(|&v| v > 0.0 && v < 0.1));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier_uniform(4, 4, &mut Xoshiro256pp::seed_from_u64(7));
        let b = xavier_uniform(4, 4, &mut Xoshiro256pp::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn uniform_rejects_zero_bound() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let _ = uniform(2, 2, 0.0, &mut rng);
    }
}
