//! The Adam optimizer.

use crate::tensor::Tensor;

/// Adam with bias correction (Kingma & Ba, 2015).
///
/// Optimizer state is keyed by *visitation order*: call
/// [`Adam::begin_step`] once per training step, then [`Adam::update`] for
/// every parameter in the same stable order each step (e.g. via the
/// layers' `visit_params`). State tensors are allocated lazily on the
/// first step.
///
/// # Examples
///
/// ```
/// use adrias_nn::{Adam, Tensor};
///
/// let mut opt = Adam::new(0.1);
/// let mut param = Tensor::full(1, 1, 1.0);
/// let grad = Tensor::full(1, 1, 1.0);
/// for _ in 0..10 {
///     opt.begin_step();
///     opt.update(&mut param, &grad);
/// }
/// assert!(param.get(0, 0) < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    state: Vec<(Tensor, Tensor)>,
    cursor: usize,
}

impl Adam {
    /// Creates an optimizer with the given learning rate and PyTorch
    /// default moments (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
            cursor: 0,
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets a new learning rate (e.g. for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Starts a new optimization step; resets the parameter cursor.
    pub fn begin_step(&mut self) {
        self.t += 1;
        self.cursor = 0;
    }

    /// Applies one Adam update to `param` given `grad`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the state registered for this slot
    /// on earlier steps (i.e. visitation order changed), or if called
    /// before [`Adam::begin_step`].
    pub fn update(&mut self, param: &mut Tensor, grad: &Tensor) {
        assert!(self.t > 0, "call begin_step before update");
        assert_eq!(
            param.shape(),
            grad.shape(),
            "param/grad shape mismatch: {:?} vs {:?}",
            param.shape(),
            grad.shape()
        );
        if self.cursor == self.state.len() {
            self.state.push((
                Tensor::zeros(param.rows(), param.cols()),
                Tensor::zeros(param.rows(), param.cols()),
            ));
        }
        let (m, v) = &mut self.state[self.cursor];
        assert_eq!(
            m.shape(),
            param.shape(),
            "optimizer state shape mismatch at slot {} — unstable visitation order?",
            self.cursor
        );
        self.cursor += 1;

        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        for idx in 0..param.len() {
            let g = grad.data()[idx];
            let md = &mut m.data_mut()[idx];
            *md = b1 * *md + (1.0 - b1) * g;
            let m_hat = *md / bc1;
            let vd = &mut v.data_mut()[idx];
            *vd = b2 * *vd + (1.0 - b2) * g * g;
            let v_hat = *vd / bc2;
            param.data_mut()[idx] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // f(x) = (x - 3)², ∇f = 2(x - 3).
        let mut opt = Adam::new(0.1);
        let mut x = Tensor::full(1, 1, 0.0);
        for _ in 0..300 {
            let grad = x.map(|v| 2.0 * (v - 3.0));
            opt.begin_step();
            opt.update(&mut x, &grad);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 0.05, "x = {}", x.get(0, 0));
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        let mut opt = Adam::new(0.01);
        let mut x = Tensor::full(1, 1, 0.0);
        opt.begin_step();
        opt.update(&mut x, &Tensor::full(1, 1, 5.0));
        // Bias-corrected first step ≈ lr regardless of gradient scale.
        assert!((x.get(0, 0) + 0.01).abs() < 1e-4);
    }

    #[test]
    fn handles_multiple_params_in_stable_order() {
        let mut opt = Adam::new(0.1);
        let mut a = Tensor::full(1, 1, 1.0);
        let mut b = Tensor::full(2, 2, 1.0);
        for _ in 0..5 {
            opt.begin_step();
            opt.update(&mut a, &Tensor::full(1, 1, 1.0));
            opt.update(&mut b, &Tensor::full(2, 2, 1.0));
        }
        assert!(a.get(0, 0) < 1.0);
        assert!(b.get(1, 1) < 1.0);
        assert_eq!(opt.steps(), 5);
    }

    #[test]
    #[should_panic(expected = "unstable visitation order")]
    fn shape_change_across_steps_detected() {
        let mut opt = Adam::new(0.1);
        let mut a = Tensor::full(1, 1, 1.0);
        let mut b = Tensor::full(2, 2, 1.0);
        opt.begin_step();
        opt.update(&mut a, &Tensor::full(1, 1, 1.0));
        opt.begin_step();
        opt.update(&mut b, &Tensor::full(2, 2, 1.0));
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_before_begin_step_panics() {
        let mut opt = Adam::new(0.1);
        let mut x = Tensor::zeros(1, 1);
        let g = Tensor::zeros(1, 1);
        opt.update(&mut x, &g);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_rejected() {
        let _ = Adam::new(0.0);
    }
}
