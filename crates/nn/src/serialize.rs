//! Plain-text tensor (de)serialization.
//!
//! Trained model weights are persisted in a line-oriented text format so
//! no serialization dependency is needed:
//!
//! ```text
//! tensor <name> <rows> <cols>
//! v v v ...      # one line per row
//! ```

use std::fmt::Write as _;
use std::num::ParseFloatError;

use crate::tensor::Tensor;

/// Error returned when parsing serialized tensors fails.
#[derive(Debug)]
pub enum ParseTensorError {
    /// A header line was malformed.
    BadHeader(String),
    /// A row had the wrong number of values or a bad float.
    BadRow {
        /// Tensor being parsed.
        name: String,
        /// Row index.
        row: usize,
    },
    /// The input ended before all declared rows were read.
    UnexpectedEof,
}

impl std::fmt::Display for ParseTensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTensorError::BadHeader(line) => write!(f, "malformed tensor header `{line}`"),
            ParseTensorError::BadRow { name, row } => {
                write!(f, "malformed row {row} of tensor `{name}`")
            }
            ParseTensorError::UnexpectedEof => f.write_str("unexpected end of tensor data"),
        }
    }
}

impl std::error::Error for ParseTensorError {}

impl From<ParseFloatError> for ParseTensorError {
    fn from(_: ParseFloatError) -> Self {
        ParseTensorError::UnexpectedEof
    }
}

/// Serializes named tensors to the text format.
///
/// # Examples
///
/// ```
/// use adrias_nn::serialize::{read_tensors, write_tensors};
/// use adrias_nn::Tensor;
///
/// let w = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let text = write_tensors(&[("w", &w)]);
/// let restored = read_tensors(&text).unwrap();
/// assert_eq!(restored[0].0, "w");
/// assert_eq!(restored[0].1, w);
/// ```
pub fn write_tensors(tensors: &[(&str, &Tensor)]) -> String {
    let mut out = String::new();
    for (name, t) in tensors {
        assert!(
            !name.contains(char::is_whitespace),
            "tensor names must not contain whitespace: `{name}`"
        );
        let _ = writeln!(out, "tensor {name} {} {}", t.rows(), t.cols());
        for r in 0..t.rows() {
            let row: Vec<String> = t.row(r).iter().map(|v| format!("{v:e}")).collect();
            let _ = writeln!(out, "{}", row.join(" "));
        }
    }
    out
}

/// Parses tensors previously produced by [`write_tensors`].
///
/// # Errors
///
/// Returns [`ParseTensorError`] on malformed headers, rows with the wrong
/// arity, unparsable floats, or truncated input.
pub fn read_tensors(text: &str) -> Result<Vec<(String, Tensor)>, ParseTensorError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let mut out = Vec::new();
    while let Some(header) = lines.next() {
        let parts: Vec<&str> = header.split_whitespace().collect();
        let (name, rows, cols) = match parts.as_slice() {
            ["tensor", name, rows, cols] => {
                let rows: usize = rows
                    .parse()
                    .map_err(|_| ParseTensorError::BadHeader(header.to_owned()))?;
                let cols: usize = cols
                    .parse()
                    .map_err(|_| ParseTensorError::BadHeader(header.to_owned()))?;
                ((*name).to_owned(), rows, cols)
            }
            _ => return Err(ParseTensorError::BadHeader(header.to_owned())),
        };
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let line = lines.next().ok_or(ParseTensorError::UnexpectedEof)?;
            let values: Result<Vec<f32>, _> =
                line.split_whitespace().map(str::parse::<f32>).collect();
            let values = values.map_err(|_| ParseTensorError::BadRow {
                name: name.clone(),
                row: r,
            })?;
            if values.len() != cols {
                return Err(ParseTensorError::BadRow { name, row: r });
            }
            data.extend(values);
        }
        out.push((name, Tensor::from_vec(rows, cols, data)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_values() {
        let a = Tensor::from_vec(2, 3, vec![1.5, -2.25, 3.0e-7, 4.0, 5.5, -6.125]);
        let b = Tensor::from_vec(1, 1, vec![42.0]);
        let text = write_tensors(&[("a", &a), ("b", &b)]);
        let restored = read_tensors(&text).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[0], ("a".to_owned(), a));
        assert_eq!(restored[1], ("b".to_owned(), b));
    }

    #[test]
    fn empty_input_yields_no_tensors() {
        assert!(read_tensors("").unwrap().is_empty());
        assert!(read_tensors("\n  \n").unwrap().is_empty());
    }

    #[test]
    fn bad_header_is_reported() {
        let err = read_tensors("nonsense 1 2").unwrap_err();
        assert!(err.to_string().contains("malformed tensor header"));
    }

    #[test]
    fn truncated_input_is_reported() {
        let err = read_tensors("tensor w 2 2\n1 2\n").unwrap_err();
        assert!(matches!(err, ParseTensorError::UnexpectedEof));
    }

    #[test]
    fn wrong_arity_row_is_reported() {
        let err = read_tensors("tensor w 1 3\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("malformed row 0"));
    }

    #[test]
    #[should_panic(expected = "whitespace")]
    fn whitespace_names_rejected() {
        let t = Tensor::zeros(1, 1);
        let _ = write_tensors(&[("bad name", &t)]);
    }
}
