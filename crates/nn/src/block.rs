//! The paper's non-linear block: Linear → ReLU → BatchNorm → Dropout.
//!
//! Both Adrias models route their hidden representation through a
//! "triplet of non-linear blocks, that combine fully-connected layers
//! with ReLU activation functions, batch normalization and dropout
//! layers to expose non-linearity and avoid overfit" (§V-B2). This module
//! packages one such block.

use adrias_core::rng::Rng;

use crate::layer::{BatchNorm1d, Dropout, Layer, Linear, Relu};
use crate::tensor::Tensor;

/// One fully-connected non-linear block.
///
/// # Examples
///
/// ```
/// use adrias_nn::{Layer, NonLinearBlock, Tensor};
/// use adrias_core::rng::SeedableRng;
///
/// let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(0);
/// let mut block = NonLinearBlock::new(8, 16, 0.1, &mut rng);
/// let x = Tensor::zeros(4, 8);
/// assert_eq!(block.forward(&x, true).shape(), (4, 16));
/// ```
#[derive(Debug, Clone)]
pub struct NonLinearBlock {
    linear: Linear,
    relu: Relu,
    norm: BatchNorm1d,
    dropout: Dropout,
}

impl NonLinearBlock {
    /// Creates a block mapping `in_features` → `out_features` with the
    /// given dropout probability.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        dropout_p: f32,
        rng: &mut R,
    ) -> Self {
        let seed = rng.gen::<u64>();
        Self {
            linear: Linear::new(in_features, out_features, rng),
            relu: Relu::new(),
            norm: BatchNorm1d::new(out_features),
            dropout: Dropout::new(dropout_p, seed),
        }
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.linear.out_features()
    }

    /// Visits the batch-norm running statistics (see
    /// [`BatchNorm1d::visit_buffers`]).
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.norm.visit_buffers(f);
    }

    /// Reseeds the dropout RNG (see [`Dropout::reseed`]); `salt`
    /// distinguishes sibling blocks inside one model.
    pub fn reseed_dropout(&mut self, seed: u64, salt: u64) {
        self.dropout
            .reseed(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }

    /// Precomputes the batch-norm evaluation scale (see
    /// [`BatchNorm1d::eval_inv_std`]) — one `Vec` per trained block,
    /// reused by every [`NonLinearBlock::forward_eval_into`] call.
    pub fn eval_inv_std(&self) -> Vec<f32> {
        self.norm.eval_inv_std()
    }

    /// Evaluation forward into a caller-provided buffer, bit-identical
    /// to `forward(input, false)`: linear → ReLU → batch-norm with
    /// running statistics, all applied in `out`'s existing allocation
    /// (dropout is the identity in evaluation). `inv_std` must come
    /// from [`NonLinearBlock::eval_inv_std`] on this same block.
    pub fn forward_eval_into(&self, input: &Tensor, out: &mut Tensor, inv_std: &[f32]) {
        self.linear.forward_into(input, out);
        crate::kernels::relu(out.data_mut());
        self.norm.forward_eval_assign(out, inv_std);
    }
}

impl Layer for NonLinearBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let x = self.linear.forward(input, train);
        let x = self.relu.forward(&x, train);
        let x = self.norm.forward(&x, train);
        self.dropout.forward(&x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.dropout.backward(grad_out);
        let g = self.norm.backward(&g);
        let g = self.relu.backward(&g);
        self.linear.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.linear.visit_params(f);
        self.norm.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    #[test]
    fn forward_backward_shapes() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let mut block = NonLinearBlock::new(5, 7, 0.2, &mut rng);
        let x = crate::init::uniform(3, 5, 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), (3, 7));
        let dx = block.backward(&Tensor::full(3, 7, 1.0));
        assert_eq!(dx.shape(), (3, 5));
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let mut block = NonLinearBlock::new(4, 4, 0.5, &mut rng);
        let x = crate::init::uniform(2, 4, 1.0, &mut rng);
        let a = block.forward(&x, false);
        let b = block.forward(&x, false);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_into_is_bit_identical_to_forward() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut block = NonLinearBlock::new(5, 9, 0.3, &mut rng);
        // Move the running statistics away from their initial values so
        // the eval branch exercises non-trivial mean/variance.
        for _ in 0..8 {
            let batch = crate::init::uniform(6, 5, 2.0, &mut rng);
            let _ = block.forward(&batch, true);
        }
        let x = crate::init::uniform(3, 5, 1.5, &mut rng);
        let want = block.forward(&x, false);
        let inv_std = block.eval_inv_std();
        let mut out = Tensor::zeros(1, 1);
        block.forward_eval_into(&x, &mut out, &inv_std);
        assert_eq!(out.shape(), want.shape());
        for (a, b) in out.data().iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "eval-into must be bit-identical");
        }
    }

    #[test]
    fn has_linear_and_norm_params() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let mut block = NonLinearBlock::new(4, 4, 0.1, &mut rng);
        let mut count = 0;
        block.visit_params(&mut |_, _| count += 1);
        // Linear (W, b) + BatchNorm (γ, β).
        assert_eq!(count, 4);
        assert_eq!(block.out_features(), 4);
    }

    #[test]
    fn block_trains_on_simple_regression() {
        use crate::adam::Adam;
        use crate::layer::Sequential;
        use crate::loss::MseLoss;

        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut net = Sequential::new(vec![
            Box::new(NonLinearBlock::new(2, 16, 0.05, &mut rng)),
            Box::new(Linear::new(16, 1, &mut rng)),
        ]);
        let x = crate::init::uniform(64, 2, 1.0, &mut rng);
        let y = Tensor::from_fn(64, 1, |r, _| x.get(r, 0) - 0.5 * x.get(r, 1));
        let mut opt = Adam::new(1e-2);
        let mut loss = MseLoss::new();
        let mut last = f32::MAX;
        for _ in 0..400 {
            let pred = net.forward(&x, true);
            last = loss.forward(&pred, &y);
            let g = loss.backward();
            net.zero_grad();
            net.backward(&g);
            opt.begin_step();
            net.visit_params(&mut |p, g| opt.update(p, g));
        }
        assert!(last < 0.05, "block failed to train: {last}");
    }
}
