//! Canonical vectorizable transcendentals (`exp`, `tanh`, `sigmoid`).
//!
//! The standard library routes `f32::exp`/`f32::tanh` through libm,
//! whose argument-reduction branches cannot be expressed as a fixed
//! 8-lane SIMD sequence. This module defines the workspace's *single*
//! canonical formulation instead: straight-line IEEE-754 arithmetic
//! (min/max clamp, one round-to-nearest via the 1.5·2²³ shifter, a
//! Cody–Waite split-ln2 reduction, a degree-7 polynomial evaluated by
//! Horner with explicit multiply-add pairs, one exponent-field scale)
//! that the scalar functions below and
//! the AVX2 lanes in [`crate::kernels`] execute operation for
//! operation. Because every step is a correctly-rounded IEEE operation
//! with no fused contractions, the scalar and per-lane SIMD results are
//! bit-identical by construction — the property the workspace's
//! bitwise-determinism contract (DESIGN.md §14) rests on.
//!
//! Accuracy: relative error ≤ ~2e-7 over the clamped domain, far below
//! the 8% gradcheck tolerance and invisible to every oracle in the
//! tree; both `tanh` and `sigmoid` stay inside their mathematical
//! ranges ([-1, 1] and (0, 1)) because the final division is correctly
//! rounded toward a quotient strictly below one in magnitude.

/// Input clamp for [`exp`]: `exp(±87)` spans the full normal `f32`
/// range without overflow, and the clamp keeps the exponent bit-trick
/// in range.
pub(crate) const EXP_CLAMP: f32 = 87.0;

/// Input clamp for [`tanh`]: at |x| = 9, `exp(2x)` is large enough that
/// `(e − 1)/(e + 1)` rounds to exactly ±1.0 in `f32`, so the clamp is
/// invisible in the result.
pub(crate) const TANH_CLAMP: f32 = 9.0;

/// 1.5 · 2²³ — adding then subtracting this forces round-to-nearest-
/// even on any |y| ≤ 2²², turning `y` into the nearest integer-valued
/// float with no branch.
pub(crate) const SHIFTER: f32 = 12_582_912.0;

/// High half of the Cody–Waite split of ln 2 (`0x1.62e4p-1`): its low
/// nine mantissa bits are zero, so `k · LN2_HI` is *exact* for any
/// integer |k| ≤ 2⁹ — the reduction `x − k·LN2_HI` then cancels without
/// rounding, which is what keeps [`exp`] accurate at |x| near the
/// clamp (a single `x·log₂e` product would lose ~2e-6 there to the
/// ulp of the 7-bit-exponent product).
pub(crate) const LN2_HI: f32 = f32::from_bits(0x3f31_7200);

/// Low half of the split: `ln 2 − LN2_HI`.
pub(crate) const LN2_LO: f32 = f32::from_bits(0x35bf_be8e);

/// Degree-7 Taylor coefficients of `e^r` (`1/k!`) on the reduced
/// domain `|r| ≤ ln2/2 ≈ 0.347`, low order first. Truncation error
/// `r⁸/8!` ≤ 6e-9 — below one ulp of the result.
pub(crate) const EXP_POLY: [f32; 8] = [
    1.0,
    1.0,
    0.5,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
];

/// log₂(e), used only to pick the integer exponent `k`.
pub(crate) const LOG2E: f32 = core::f32::consts::LOG2_E;

/// Canonical maximum: `if a > b { a } else { b }` — exactly the
/// semantics of `_mm256_max_ps` (returns `b` when `a` is NaN or for
/// `max(-0.0, +0.0)`).
#[inline]
pub(crate) fn max(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Canonical minimum: `if a < b { a } else { b }` — exactly the
/// semantics of `_mm256_min_ps`.
#[inline]
pub(crate) fn min(a: f32, b: f32) -> f32 {
    if a < b {
        a
    } else {
        b
    }
}

/// Horner evaluation of [`EXP_POLY`] with explicit mul-then-add pairs
/// (Rust never contracts these into FMA, so scalar and SIMD agree).
#[inline]
pub(crate) fn exp_poly(r: f32) -> f32 {
    let mut p = EXP_POLY[7];
    p = p * r + EXP_POLY[6];
    p = p * r + EXP_POLY[5];
    p = p * r + EXP_POLY[4];
    p = p * r + EXP_POLY[3];
    p = p * r + EXP_POLY[2];
    p = p * r + EXP_POLY[1];
    p * r + EXP_POLY[0]
}

/// Canonical `e^x`.
///
/// Picks the integer `k` nearest `x·log₂e` via the shifter trick, then
/// Cody–Waite-reduces `r = (x − k·LN2_HI) − k·LN2_LO` (the first
/// product and subtraction are exact, see [`LN2_HI`]), evaluates
/// [`exp_poly`] and applies `2^k` through the exponent field. Every
/// step is a single IEEE operation mirrored lane for lane by the AVX2
/// path in [`crate::kernels`].
#[inline]
pub fn exp(x: f32) -> f32 {
    let x = min(max(x, -EXP_CLAMP), EXP_CLAMP);
    let y = x * LOG2E;
    let k = (y + SHIFTER) - SHIFTER;
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // k is integer-valued, so the truncating cast is exact and matches
    // the SIMD round-to-nearest conversion.
    let scale = f32::from_bits((((k as i32) + 127) << 23) as u32);
    exp_poly(r) * scale
}

/// Canonical `tanh(x) = (e^{2x} − 1) / (e^{2x} + 1)`.
#[inline]
pub fn tanh(x: f32) -> f32 {
    let t = min(max(x, -TANH_CLAMP), TANH_CLAMP);
    let e = exp(t + t);
    (e - 1.0) / (e + 1.0)
}

/// Canonical logistic sigmoid `1 / (1 + e^{-x})`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + exp(-x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_tracks_libm_closely() {
        let mut x = -87.0f32;
        while x <= 87.0 {
            let want = f64::from(x).exp();
            let got = f64::from(exp(x));
            let rel = ((got - want) / want).abs();
            assert!(rel < 3e-7, "exp({x}): got {got}, want {want}, rel {rel}");
            x += 0.0137;
        }
    }

    #[test]
    fn exp_saturates_gracefully_at_the_clamp() {
        assert_eq!(exp(1e9), exp(87.0));
        assert_eq!(exp(-1e9), exp(-87.0));
        assert!(exp(87.0).is_finite());
        assert!(exp(-87.0) > 0.0);
        assert_eq!(exp(0.0), 1.0);
    }

    #[test]
    fn tanh_is_bounded_accurate_and_saturating() {
        let mut x = -12.0f32;
        while x <= 12.0 {
            let got = tanh(x);
            assert!(got.abs() <= 1.0, "tanh({x}) = {got} escapes [-1, 1]");
            let want = f64::from(x).tanh();
            assert!(
                (f64::from(got) - want).abs() < 3e-7,
                "tanh({x}): got {got}, want {want}"
            );
            x += 0.0211;
        }
        assert_eq!(tanh(9.0), 1.0, "clamp edge saturates exactly");
        assert_eq!(tanh(-9.0), -1.0);
        assert_eq!(tanh(0.0), 0.0);
    }

    #[test]
    fn sigmoid_is_bounded_and_symmetric_enough() {
        let mut x = -30.0f32;
        while x <= 30.0 {
            let got = sigmoid(x);
            assert!((0.0..=1.0).contains(&got), "sigmoid({x}) = {got}");
            let want = 1.0 / (1.0 + f64::from(-x).exp());
            assert!(
                (f64::from(got) - want).abs() < 3e-7,
                "sigmoid({x}): got {got}, want {want}"
            );
            x += 0.0173;
        }
        assert_eq!(sigmoid(0.0), 0.5);
    }

    #[test]
    fn canonical_min_max_handle_nan_like_avx() {
        // `_mm256_max_ps(a, b)` returns b when a is NaN; the canonical
        // scalar forms must do the same so clamped NaN inputs cannot
        // diverge between the scalar and SIMD paths.
        assert_eq!(max(f32::NAN, -1.0), -1.0);
        assert_eq!(min(f32::NAN, 1.0), 1.0);
        assert!(exp(f32::NAN).is_finite());
    }
}
