//! A minimal deep-learning substrate for the Adrias reproduction.
//!
//! The paper implements its two prediction models (a system-state
//! forecaster and an application-performance predictor, §V-B2) with
//! PyTorch: stacked LSTM layers followed by a triplet of non-linear
//! blocks (fully-connected + ReLU + batch-normalization + dropout). The
//! Rust ML ecosystem offers no comparable dependency within this
//! project's allowed crate set, so this crate implements exactly what
//! those models need, from scratch:
//!
//! * [`Tensor`] — a row-major 2-D `f32` matrix with the handful of BLAS-1/2
//!   operations the layers use;
//! * [`Linear`], [`Relu`], [`BatchNorm1d`], [`Dropout`] — feed-forward
//!   layers implementing [`Layer`] (explicit `forward` / `backward`, no
//!   autograd graph);
//! * [`Lstm`] — a full sequence-input LSTM with backpropagation through
//!   time;
//! * [`NonLinearBlock`] — the paper's Linear→ReLU→BatchNorm→Dropout
//!   composite;
//! * [`Sequential`] — a feed-forward container;
//! * [`MseLoss`] and [`Adam`] — training machinery;
//! * [`GradModel`] and [`accumulate_minibatch`] — deterministic
//!   data-parallel gradient accumulation over minibatch chunks;
//! * [`serialize`] — plain-text weight (de)serialization.
//!
//! # Examples
//!
//! Train a two-layer MLP on a toy regression problem:
//!
//! ```
//! use adrias_nn::{Adam, Layer, Linear, MseLoss, Relu, Sequential, Tensor};
//! use adrias_core::rng::SeedableRng;
//!
//! let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(1, 16, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 1, &mut rng)),
//! ]);
//! let mut opt = Adam::new(1e-2);
//! let x = Tensor::from_fn(64, 1, |r, _| r as f32 / 64.0);
//! let y = x.map(|v| 2.0 * v + 1.0);
//! let mut loss = MseLoss::new();
//! for _ in 0..400 {
//!     let pred = net.forward(&x, true);
//!     let l = loss.forward(&pred, &y);
//!     let grad = loss.backward();
//!     net.zero_grad();
//!     net.backward(&grad);
//!     opt.begin_step();
//!     net.visit_params(&mut |p, g| opt.update(p, g));
//!     assert!(l.is_finite());
//! }
//! let final_loss = loss.forward(&net.forward(&x, false), &y);
//! assert!(final_loss < 1e-2, "did not converge: {final_loss}");
//! ```

// `deny`, not `forbid`: the AVX2 intrinsic module in `kernels` (and its
// feature-gated dispatch sites) carry the crate's only scoped
// `#[allow(unsafe_code)]`s; everything else still refuses unsafe at
// compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod block;
pub mod init;
pub mod kernels;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod serialize;
pub mod tensor;
pub mod train;
pub mod vmath;

pub use adam::Adam;
pub use block::NonLinearBlock;
pub use kernels::{set_force_scalar, simd_active};
pub use layer::{BatchNorm1d, Dropout, Layer, Linear, Relu, Sequential};
pub use loss::MseLoss;
pub use lstm::{Lstm, LstmScratch};
pub use tensor::Tensor;
pub use train::{
    accumulate_minibatch, mix_seed, resolved_workers, GradModel, TrainStats, SERIAL_BATCH_FLOOR,
};
