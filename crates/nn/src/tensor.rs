//! A row-major 2-D `f32` matrix.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense row-major matrix of `f32` values.
///
/// This is deliberately small: just the operations the layers in this
/// crate need. Shapes are validated eagerly; mismatches panic with the
/// offending dimensions.
///
/// # Examples
///
/// ```
/// use adrias_nn::Tensor;
///
/// let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.shape(), (2, 2));
/// assert_eq!(c.get(0, 0), 58.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a tensor element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 × values.len()` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions do not match.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        Tensor::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, factor: f32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Adds a `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(
            (1, self.cols),
            bias.shape(),
            "broadcast bias must be 1x{}, got {:?}",
            self.cols,
            bias.shape()
        );
        Tensor::from_fn(self.rows, self.cols, |r, c| self.get(r, c) + bias.get(0, c))
    }

    /// Column-wise sum, producing a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "hcat row mismatch: {} vs {}",
            self.rows, other.rows
        );
        Tensor::from_fn(self.rows, self.cols + other.cols, |r, c| {
            if c < self.cols {
                self.get(r, c)
            } else {
                other.get(r, c - self.cols)
            }
        })
    }

    /// The sub-matrix of columns `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn columns(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.cols,
            "bad column range {start}..{end}"
        );
        Tensor::from_fn(self.rows, end - start, |r, c| self.get(r, start + c))
    }

    /// The sub-matrix of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn rows_slice(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        Tensor::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Vertical concatenation of `tensors` (all with equal column count).
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or column counts differ.
    pub fn vcat(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "vcat of nothing");
        let cols = tensors[0].cols;
        let rows: usize = tensors.iter().map(|t| t.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for t in tensors {
            assert_eq!(t.cols, cols, "vcat column mismatch");
            data.extend_from_slice(&t.data);
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Mean of all elements; `0.0` when empty.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op} shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Add for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;

    /// Element-wise (Hadamard) product.
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_ish() {
        let x = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn hcat_and_columns_round_trip() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 1, vec![5.0, 6.0]);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.columns(0, 2), a);
        assert_eq!(cat.columns(2, 3), b);
    }

    #[test]
    fn vcat_and_rows_slice_round_trip() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let cat = Tensor::vcat(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2));
        assert_eq!(cat.rows_slice(0, 1), a);
        assert_eq!(cat.rows_slice(1, 3), b);
    }

    #[test]
    fn elementwise_operators() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn map_and_scale() {
        let a = Tensor::from_vec(1, 2, vec![1.0, -2.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.scale_assign(3.0);
        assert_eq!(b.data(), &[3.0, -6.0]);
    }

    #[test]
    fn norm_and_mean() {
        let a = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(1, 1);
        assert!(!format!("{t:?}").is_empty());
        let big = Tensor::zeros(100, 100);
        assert!(format!("{big:?}").contains("100x100"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let t = Tensor::zeros(1, 1);
        let _ = t.get(1, 0);
    }
}
