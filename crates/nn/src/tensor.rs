//! A row-major 2-D `f32` matrix.

use adrias_core::thread::map_chunks;

use crate::kernels;

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Cache-block edge for the matmul kernels. 32×32 f32 tiles (4 KiB per
/// operand tile) keep the working set inside L1 while leaving the
/// element-wise accumulation contract untouched.
const BLOCK: usize = 32;

/// A dense row-major matrix of `f32` values.
///
/// This is deliberately small: just the operations the layers in this
/// crate need. Shapes are validated eagerly; mismatches panic with the
/// offending dimensions.
///
/// # Examples
///
/// ```
/// use adrias_nn::Tensor;
///
/// let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.shape(), (2, 2));
/// assert_eq!(c.get(0, 0), 58.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a tensor element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 × values.len()` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions do not match.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self @ other` written into `out`, reusing its
    /// buffer (`out` is overwritten, and resized only if its shape does
    /// not match).
    ///
    /// The kernel is cache-blocked over output tiles; each output
    /// element is still accumulated over `k` in increasing order, so the
    /// result is bit-identical to the naive triple loop and independent
    /// of the blocking.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions do not match.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, kk, n) = (self.rows, self.cols, other.cols);
        out.reshape_for(m, n);
        out.data.iter_mut().for_each(|v| *v = 0.0);
        // ikj with row blocking and a four-row micro-kernel: each B row
        // loaded in the `k` loop feeds four output rows, quartering B
        // traffic. Output rows touch disjoint accumulators and each
        // element still adds its `a·b` terms in increasing `k` with the
        // exact zero-skip of the single-row kernel; the whole
        // (row-quad × k-tile) sweep is one [`kernels::axpy_panel4`]
        // call, whose per-element dataflow is one multiply-add either
        // way, so results stay bit-identical at any vector width.
        for r0 in (0..m).step_by(BLOCK) {
            let r1 = (r0 + BLOCK).min(m);
            for k0 in (0..kk).step_by(BLOCK) {
                let k1 = (k0 + BLOCK).min(kk);
                let b_panel = &other.data[k0 * n..k1 * n];
                let a_col = |row: usize| &self.data[row * kk + k0..row * kk + k1];
                let mut r = r0;
                while r + 4 <= r1 {
                    let (out0, rest) = out.data[r * n..(r + 4) * n].split_at_mut(n);
                    let (out1, rest) = rest.split_at_mut(n);
                    let (out2, out3) = rest.split_at_mut(n);
                    kernels::axpy_panel4(
                        [a_col(r), a_col(r + 1), a_col(r + 2), a_col(r + 3)],
                        b_panel,
                        out0,
                        out1,
                        out2,
                        out3,
                    );
                    r += 4;
                }
                while r + 2 <= r1 {
                    let (out_lo, out_hi) = out.data[r * n..(r + 2) * n].split_at_mut(n);
                    kernels::axpy_panel2(a_col(r), a_col(r + 1), b_panel, out_lo, out_hi);
                    r += 2;
                }
                if r < r1 {
                    kernels::axpy_panel(a_col(r), b_panel, &mut out.data[r * n..(r + 1) * n]);
                }
            }
        }
    }

    /// Matrix product against a transposed right operand,
    /// `self @ otherᵀ`, where `other` is stored row-major as `n × k`.
    ///
    /// This is the layout of every weight matrix in this crate
    /// (`out_features × in_features`), so forward passes can consume the
    /// weights directly instead of materializing `other.transpose()` on
    /// every call. Both operands are walked row-contiguously.
    pub fn matmul_transb(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.rows, other.rows);
        self.matmul_transb_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul_transb`] into a reusable output buffer.
    ///
    /// Each output element is a canonical lane-ordered dot product
    /// ([`kernels::dot`]): 8-way strided partial sums over `k` plus a
    /// fixed tree reduction, identical on the SIMD and scalar paths. A
    /// batched call is bit-identical, row for row, to per-sample
    /// (batch = 1) calls.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions (`self.cols` vs `other.cols`) do
    /// not match.
    pub fn matmul_transb_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb shape mismatch: {}x{} @ ({}x{})T",
            self.rows, self.cols, other.rows, other.cols
        );
        let m = self.rows;
        out.reshape_for(m, other.rows);
        self.transb_rows(other, &mut out.data, 0, m);
    }

    /// [`Tensor::matmul_transb`] with the output rows split across up to
    /// `threads` scoped worker threads (via
    /// [`adrias_core::thread::map_chunks`]).
    ///
    /// Output rows are independent dot-product groups and every row runs
    /// the identical serial micro-kernel, so the result is bit-identical
    /// to [`Tensor::matmul_transb`] for **any** thread count — the same
    /// chunk-ordered determinism contract as the data-parallel trainer.
    /// Worth it only for training-size batches; `threads <= 1` or a
    /// single-row product runs inline with no spawn.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match or `threads` is zero.
    pub fn matmul_transb_threaded(&self, other: &Tensor, threads: usize) -> Tensor {
        assert!(threads > 0, "need at least one worker thread");
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb shape mismatch: {}x{} @ ({}x{})T",
            self.rows, self.cols, other.rows, other.cols
        );
        if threads == 1 || self.rows < 2 {
            return self.matmul_transb(other);
        }
        let n = other.rows;
        let row_idx: Vec<usize> = (0..self.rows).collect();
        let data = map_chunks(&row_idx, threads, |chunk| {
            let (lo, hi) = (chunk[0], chunk[chunk.len() - 1] + 1);
            let mut part = vec![0.0f32; (hi - lo) * n];
            self.transb_rows(other, &mut part, lo, hi);
            part
        });
        Tensor::from_vec(self.rows, n, data)
    }

    /// Serial `self @ otherᵀ` micro-kernel over output rows
    /// `[row0, row1)`, writing into `out_rows` (whose row 0 corresponds
    /// to output row `row0`).
    ///
    /// Each cache tile is one [`kernels::dot_rows`] sweep — columns
    /// four at a time in the [`kernels::dot4`] shape, remainder singly;
    /// every output element is a canonical lane-ordered dot product
    /// (8-way strided partial sums over `k`, fixed tree reduction —
    /// DESIGN.md §14), identical on the AVX2 and scalar paths, so
    /// neither the grouping nor the vector width ever changes a single
    /// bit of the result.
    fn transb_rows(&self, other: &Tensor, out_rows: &mut [f32], row0: usize, row1: usize) {
        let (kk, n) = (self.cols, other.rows);
        for r0 in (row0..row1).step_by(BLOCK) {
            let r1 = (r0 + BLOCK).min(row1);
            for c0 in (0..n).step_by(BLOCK) {
                let c1 = (c0 + BLOCK).min(n);
                for r in r0..r1 {
                    let a_row = &self.data[r * kk..(r + 1) * kk];
                    let out_row = &mut out_rows[(r - row0) * n..(r - row0 + 1) * n];
                    kernels::dot_rows(a_row, &other.data[c0 * kk..c1 * kk], &mut out_row[c0..c1]);
                }
            }
        }
    }

    /// Accumulates `selfᵀ @ other` into `out` (`out += selfᵀ @ other`),
    /// where `self` is `k × m` and `other` is `k × n`.
    ///
    /// This is the gradient-accumulation shape (`dW += dYᵀ · X`): both
    /// operands are walked row-contiguously and no transpose is ever
    /// materialized.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ or `out` is not `m × n`.
    pub fn matmul_transa_acc(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transa shape mismatch: ({}x{})T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (self.cols, other.cols),
            out.shape(),
            "matmul_transa output must be {}x{}, got {:?}",
            self.cols,
            other.cols,
            out.shape()
        );
        let (kk, m, n) = (self.rows, self.cols, other.cols);
        for k in 0..kk {
            let a_row = &self.data[k * m..(k + 1) * m];
            let b_row = &other.data[k * n..(k + 1) * n];
            for (r, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[r * n..(r + 1) * n];
                kernels::axpy(a, b_row, out_row);
            }
        }
    }

    /// In-place scaled addition `self += factor · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Tensor, factor: f32) {
        self.assert_same_shape(other, "add_scaled_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
    }

    /// Reuses the existing allocation for a `rows × cols` result,
    /// growing it only when the target is larger than any prior use.
    pub(crate) fn reshape_for(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// In-place element-wise map.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        Tensor::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// [`Tensor::transpose`] into a reusable buffer (allocation-free
    /// once `out` has reached size).
    pub fn transpose_into(&self, out: &mut Tensor) {
        out.reshape_for(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Copies `other` into `self`, reusing the existing buffer.
    pub fn copy_from(&mut self, other: &Tensor) {
        self.reshape_for(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale_assign(&mut self, factor: f32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Adds a `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(
            (1, self.cols),
            bias.shape(),
            "broadcast bias must be 1x{}, got {:?}",
            self.cols,
            bias.shape()
        );
        Tensor::from_fn(self.rows, self.cols, |r, c| self.get(r, c) + bias.get(0, c))
    }

    /// In-place [`Tensor::add_row_broadcast`]: adds a `1 × cols` row
    /// vector to every row of `self` without allocating. Each element
    /// computes the same `x + b` as the allocating version, so the
    /// result is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols`.
    pub fn add_row_broadcast_assign(&mut self, bias: &Tensor) {
        assert_eq!(
            (1, self.cols),
            bias.shape(),
            "broadcast bias must be 1x{}, got {:?}",
            self.cols,
            bias.shape()
        );
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Column-wise sum, producing a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "hcat row mismatch: {} vs {}",
            self.rows, other.rows
        );
        Tensor::from_fn(self.rows, self.cols + other.cols, |r, c| {
            if c < self.cols {
                self.get(r, c)
            } else {
                other.get(r, c - self.cols)
            }
        })
    }

    /// The sub-matrix of columns `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn columns(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.cols,
            "bad column range {start}..{end}"
        );
        Tensor::from_fn(self.rows, end - start, |r, c| self.get(r, start + c))
    }

    /// The sub-matrix of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn rows_slice(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        Tensor::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Vertical concatenation of `tensors` (all with equal column count).
    ///
    /// # Panics
    ///
    /// Panics if `tensors` is empty or column counts differ.
    pub fn vcat(tensors: &[&Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "vcat of nothing");
        let cols = tensors[0].cols;
        let rows: usize = tensors.iter().map(|t| t.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for t in tensors {
            assert_eq!(t.cols, cols, "vcat column mismatch");
            data.extend_from_slice(&t.data);
        }
        Tensor::from_vec(rows, cols, data)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Mean of all elements; `0.0` when empty.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op} shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Add for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul for &Tensor {
    type Output = Tensor;

    /// Element-wise (Hadamard) product.
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Tensor::full(5, 5, 9.9);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // A second call into the same buffer must not see stale values.
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 40) as f32 / 1e6 - 8.0
        };
        // Odd sizes exercise partial tiles on every block edge.
        let a = Tensor::from_fn(37, 45, |_, _| next());
        let b = Tensor::from_fn(51, 45, |_, _| next());
        // `matmul` accumulates in increasing `k` while `matmul_transb`
        // uses the canonical lane order, so the comparison is
        // approximate (both are correct summations of the same terms);
        // the bit-exact spec for transb is `naive_transb` below.
        let got = a.matmul_transb(&b);
        let want = a.matmul(&b.transpose());
        assert_eq!(got.shape(), want.shape());
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!(
                (x - y).abs() <= 1e-4 * y.abs().max(1.0),
                "transb diverged from transpose product: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_blocking_is_bitwise_identical_per_row() {
        // A batched product must equal per-row products bit for bit:
        // the batched engine's parity guarantee rests on this.
        let a = Tensor::from_fn(67, 33, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.37 - 1.0);
        let b = Tensor::from_fn(41, 33, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.29 - 0.7);
        let batched = a.matmul_transb(&b);
        for r in 0..a.rows() {
            let single = a.rows_slice(r, r + 1).matmul_transb(&b);
            assert_eq!(single.data(), batched.row(r), "row {r} differs");
        }
    }

    #[test]
    fn matmul_transa_acc_accumulates_gradient_shape() {
        let dy = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = Tensor::from_vec(2, 2, vec![7.0, 8.0, 9.0, 10.0]);
        let mut grad = Tensor::full(3, 2, 1.0);
        dy.matmul_transa_acc(&x, &mut grad);
        let mut expected = dy.transpose().matmul(&x);
        expected.add_assign(&Tensor::full(3, 2, 1.0));
        assert_eq!(grad, expected);
    }

    #[test]
    fn add_scaled_assign_matches_manual() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 12.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "matmul_transb shape mismatch")]
    fn matmul_transb_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 4);
        let _ = a.matmul_transb(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn broadcast_and_sum_rows_are_inverse_ish() {
        let x = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn hcat_and_columns_round_trip() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 1, vec![5.0, 6.0]);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.columns(0, 2), a);
        assert_eq!(cat.columns(2, 3), b);
    }

    #[test]
    fn vcat_and_rows_slice_round_trip() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let cat = Tensor::vcat(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2));
        assert_eq!(cat.rows_slice(0, 1), a);
        assert_eq!(cat.rows_slice(1, 3), b);
    }

    #[test]
    fn elementwise_operators() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn map_and_scale() {
        let a = Tensor::from_vec(1, 2, vec![1.0, -2.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.scale_assign(3.0);
        assert_eq!(b.data(), &[3.0, -6.0]);
    }

    #[test]
    fn norm_and_mean() {
        let a = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(1, 1);
        assert!(!format!("{t:?}").is_empty());
        let big = Tensor::zeros(100, 100);
        assert!(format!("{big:?}").contains("100x100"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let t = Tensor::zeros(1, 1);
        let _ = t.get(1, 0);
    }

    /// Unblocked, unrolled scalar reference kernels for the parity
    /// tests below.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        Tensor::from_fn(a.rows(), b.cols(), |r, c| {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                let av = a.get(r, k);
                if av == 0.0 {
                    continue;
                }
                acc += av * b.get(k, c);
            }
            acc
        })
    }

    /// The lane-order accumulation contract (DESIGN.md §14), written
    /// out longhand: 8 strided partial sums over `k` (lane `j` takes
    /// the terms with `k ≡ j mod 8`, in increasing `k`), collapsed by
    /// the fixed tree reduction. This is the bit-exact spec every
    /// `matmul_transb` implementation — scalar or SIMD, any blocking,
    /// any thread count — must reproduce.
    fn naive_transb(a: &Tensor, b: &Tensor) -> Tensor {
        Tensor::from_fn(a.rows(), b.rows(), |r, c| {
            let mut lanes = [0.0f32; 8];
            for k in 0..a.cols() {
                lanes[k % 8] += a.get(r, k) * b.get(c, k);
            }
            let s04 = lanes[0] + lanes[4];
            let s15 = lanes[1] + lanes[5];
            let s26 = lanes[2] + lanes[6];
            let s37 = lanes[3] + lanes[7];
            (s04 + s26) + (s15 + s37)
        })
    }

    fn irregular(rows: usize, cols: usize, salt: u64) -> Tensor {
        let mut s = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Tensor::from_fn(rows, cols, |r, c| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            // Mix in exact zeros so the zero-skip path is exercised.
            if (r * 31 + c * 7 + (s as usize & 3)).is_multiple_of(9) {
                0.0
            } else {
                (s >> 40) as f32 / 2e6 - 4.0
            }
        })
    }

    /// Gradcheck-style parity: the register micro-kernels must be
    /// bit-identical to the naive scalar kernels on odd shapes where no
    /// dimension is a multiple of the unroll factor or the cache block.
    #[test]
    fn micro_kernels_match_scalar_on_odd_shapes() {
        for (m, k, n, salt) in [
            (1usize, 1usize, 1usize, 1u64),
            (3, 5, 7, 2),
            (33, 35, 37, 3), // one past a 32-wide block edge
            (31, 65, 2, 4),  // NR tail of 2
            (2, 7, 3, 5),    // columns below one unroll group
            (66, 33, 41, 6), // multi-row tail in matmul_into
        ] {
            let a = irregular(m, k, salt);
            let b_t = irregular(n, k, salt ^ 0xABCD);
            let got = a.matmul_transb(&b_t);
            let want = naive_transb(&a, &b_t);
            assert_eq!(
                got.data(),
                want.data(),
                "transb micro-kernel diverged at {m}x{k} @ ({n}x{k})T"
            );
            let b = irregular(k, n, salt ^ 0x1234);
            let got = a.matmul(&b);
            let want = naive_matmul(&a, &b);
            assert_eq!(
                got.data(),
                want.data(),
                "matmul micro-kernel diverged at {m}x{k} @ {k}x{n}"
            );
        }
    }

    /// Property test for the tentpole contract at the matmul level:
    /// the SIMD and forced-scalar paths agree bit for bit on ragged
    /// shapes (rows/cols/k not multiples of the 8-lane width, empty
    /// edges). On hosts without AVX2 both runs take the scalar path and
    /// the assertion is trivially green.
    #[test]
    fn simd_and_scalar_matmuls_agree_bit_for_bit_on_ragged_shapes() {
        for (m, k, n, salt) in [
            (1usize, 1usize, 1usize, 41u64),
            (0, 5, 3, 42), // empty row edge
            (3, 0, 4, 43), // empty k: all dots reduce pure zeros
            (5, 7, 9, 44),
            (8, 8, 8, 45),
            (9, 17, 33, 46),
            (33, 35, 37, 47),
            (66, 63, 41, 48),
        ] {
            let a = irregular(m, k, salt);
            let b_t = irregular(n, k, salt ^ 0x5EED);
            let b = irregular(k, n, salt ^ 0xF00D);
            let grad_a = irregular(m, n, salt ^ 0x0DD);
            let run = || {
                let mut acc = Tensor::zeros(k, n);
                a.matmul_transa_acc(&grad_a, &mut acc);
                (a.matmul_transb(&b_t), a.matmul(&b), acc)
            };
            crate::kernels::set_force_scalar(false);
            let native = run();
            crate::kernels::set_force_scalar(true);
            let scalar = run();
            crate::kernels::set_force_scalar(false);
            for (which, x, y) in [
                ("transb", &native.0, &scalar.0),
                ("matmul", &native.1, &scalar.1),
                ("transa_acc", &native.2, &scalar.2),
            ] {
                assert_eq!(x.shape(), y.shape());
                for (p, q) in x.data().iter().zip(y.data()) {
                    assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "{which} diverged between SIMD and scalar at {m}x{k}x{n}"
                    );
                }
            }
            // And the SIMD path must still meet the longhand spec.
            assert_eq!(native.0.data(), naive_transb(&a, &b_t).data());
        }
    }

    /// The scoped-thread row split must be bit-identical to the serial
    /// kernel for every thread count on a training-size batch.
    #[test]
    fn threaded_transb_is_thread_count_invariant() {
        let a = irregular(96, 64, 11); // a training-size activation batch
        let w = irregular(48, 64, 12); // out_features × in_features
        let serial = a.matmul_transb(&w);
        for threads in [1usize, 2, 3, 8] {
            let split = a.matmul_transb_threaded(&w, threads);
            assert_eq!(
                split.data(),
                serial.data(),
                "row split diverged at {threads} threads"
            );
        }
        // Degenerate single-row product takes the inline path.
        let one = irregular(1, 64, 13);
        assert_eq!(one.matmul_transb_threaded(&w, 8), one.matmul_transb(&w));
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = irregular(7, 5, 21);
        let mut out = Tensor::full(2, 2, 9.0);
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn add_row_broadcast_assign_matches_allocating_version() {
        let a = irregular(6, 9, 22);
        let bias = irregular(1, 9, 23);
        let want = a.add_row_broadcast(&bias);
        let mut got = a.clone();
        got.add_row_broadcast_assign(&bias);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let a = irregular(4, 3, 24);
        let mut b = Tensor::zeros(10, 10);
        b.copy_from(&a);
        assert_eq!(b, a);
    }
}
