//! Feed-forward layers and the [`Layer`] trait.

use adrias_core::rng::Xoshiro256pp;
use adrias_core::rng::{Rng, SeedableRng};

use crate::init;
use crate::tensor::Tensor;

/// A differentiable module with explicit forward/backward passes.
///
/// Inputs and outputs are `batch × features` tensors. `forward` caches
/// whatever the subsequent `backward` needs; calling `backward` without a
/// preceding `forward` panics. Parameter gradients accumulate until
/// [`Layer::zero_grad`].
pub trait Layer {
    /// Computes the layer output. `train` toggles training-only behaviour
    /// (dropout masking, batch-norm statistics updates).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out` (gradient w.r.t. the output), returning
    /// the gradient w.r.t. the input and accumulating parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every `(parameter, gradient)` pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Zeroes all accumulated parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.scale_assign(0.0));
    }
}

/// A fully-connected layer `y = x·Wᵀ + b`.
///
/// # Examples
///
/// ```
/// use adrias_nn::{Layer, Linear, Tensor};
/// use adrias_core::rng::SeedableRng;
///
/// let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(0);
/// let mut lin = Linear::new(3, 2, &mut rng);
/// let x = Tensor::zeros(4, 3);
/// let y = lin.forward(&x, true);
/// assert_eq!(y.shape(), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Tensor, // out × in
    bias: Tensor,   // 1 × out
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer mapping `in_features` to `out_features`.
    ///
    /// Weights are Xavier-uniform; biases start slightly positive (see
    /// [`init::positive_bias`]) so units followed by a ReLU cannot all
    /// start dead on unlucky seeds.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self {
            weight: init::xavier_uniform(out_features, in_features, rng),
            bias: init::positive_bias(out_features),
            grad_weight: Tensor::zeros(out_features, in_features),
            grad_bias: Tensor::zeros(1, out_features),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// The weight matrix (`out × in`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias row vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Evaluation forward into a caller-provided buffer: `out = x·Wᵀ + b`.
    ///
    /// Computes exactly the expressions of [`Layer::forward`] (so the
    /// output is bit-identical) but takes `&self`, skips the backward
    /// cache and reuses `out`'s allocation — the inference fast lane
    /// calls this with pooled scratch tensors so the steady-state
    /// decision path performs zero heap allocations.
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(
            input.cols(),
            self.in_features(),
            "linear expects {} features, got {}",
            self.in_features(),
            input.cols()
        );
        input.matmul_transb_into(&self.weight, out);
        out.add_row_broadcast_assign(&self.bias);
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.cols(),
            self.in_features(),
            "linear expects {} features, got {}",
            self.in_features(),
            input.cols()
        );
        self.cached_input = Some(input.clone());
        input
            .matmul_transb(&self.weight)
            .add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        // dW += dYᵀ · X, db += Σ dY, dX = dY · W
        grad_out.matmul_transa_acc(input, &mut self.grad_weight);
        self.grad_bias.add_assign(&grad_out.sum_rows());
        grad_out.matmul(&self.weight)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(input.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("Relu::backward before forward");
        grad_out * mask
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
}

/// 1-D batch normalization over the batch dimension.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates; evaluation mode uses the running estimates.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `features` columns.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Tensor::full(1, features, 1.0),
            beta: Tensor::zeros(1, features),
            grad_gamma: Tensor::zeros(1, features),
            grad_beta: Tensor::zeros(1, features),
            running_mean: Tensor::zeros(1, features),
            running_var: Tensor::full(1, features, 1.0),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.gamma.cols()
    }
}

impl BatchNorm1d {
    /// Visits the non-trainable state (running mean and variance) in a
    /// stable order — used by model persistence; optimizers must not
    /// touch these.
    pub fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    /// Precomputes the per-feature `1/√(running_var+eps)` used by the
    /// evaluation branch of [`Layer::forward`]. The inference fast lane
    /// computes this once per trained model and reuses it for every
    /// decision, keeping `sqrt` and the `Vec` allocation off the hot
    /// path.
    pub fn eval_inv_std(&self) -> Vec<f32> {
        (0..self.features())
            .map(|c| 1.0 / (self.running_var.get(0, c) + self.eps).sqrt())
            .collect()
    }

    /// Applies the evaluation-mode affine map in place:
    /// `x ← γ·(x − running_mean)·inv_std + β` — element for element the
    /// expression of the eval branch of [`Layer::forward`], so the
    /// output is bit-identical. `inv_std` must come from
    /// [`BatchNorm1d::eval_inv_std`] on this same layer.
    pub fn forward_eval_assign(&self, x: &mut Tensor, inv_std: &[f32]) {
        let d = self.features();
        assert_eq!(x.cols(), d, "batchnorm feature mismatch");
        assert_eq!(inv_std.len(), d, "inv_std built for a different layer");
        let gamma = self.gamma.data();
        let beta = self.beta.data();
        let mean = self.running_mean.data();
        let n = x.rows();
        let data = x.data_mut();
        for r in 0..n {
            let row = &mut data[r * d..(r + 1) * d];
            crate::kernels::bn_affine(row, mean, inv_std, gamma, beta);
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (n, d) = input.shape();
        assert_eq!(d, self.features(), "batchnorm feature mismatch");
        if train && n > 1 {
            let mut mean = vec![0.0f32; d];
            let mut var = vec![0.0f32; d];
            for c in 0..d {
                let mut s = 0.0;
                for r in 0..n {
                    s += input.get(r, c);
                }
                mean[c] = s / n as f32;
                let mut v = 0.0;
                for r in 0..n {
                    v += (input.get(r, c) - mean[c]).powi(2);
                }
                var[c] = v / n as f32;
            }
            for c in 0..d {
                let rm = self.running_mean.get(0, c);
                let rv = self.running_var.get(0, c);
                self.running_mean
                    .set(0, c, (1.0 - self.momentum) * rm + self.momentum * mean[c]);
                self.running_var
                    .set(0, c, (1.0 - self.momentum) * rv + self.momentum * var[c]);
            }
            let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let x_hat = Tensor::from_fn(n, d, |r, c| (input.get(r, c) - mean[c]) * inv_std[c]);
            let out = Tensor::from_fn(n, d, |r, c| {
                self.gamma.get(0, c) * x_hat.get(r, c) + self.beta.get(0, c)
            });
            self.cache = Some(BnCache { x_hat, inv_std });
            out
        } else {
            // Evaluation (or degenerate single-sample batch): use running
            // statistics and skip cache; backward through eval mode
            // treats the normalization as a fixed affine map. The
            // per-feature `sqrt` terms are hoisted out of the row loop —
            // each element sees the exact same values as before, so the
            // output is bit-identical while a batch amortizes the
            // transcendentals across its rows.
            let inv_std: Vec<f32> = (0..d)
                .map(|c| 1.0 / (self.running_var.get(0, c) + self.eps).sqrt())
                .collect();
            let std: Vec<f32> = (0..d)
                .map(|c| (self.running_var.get(0, c) + self.eps).sqrt())
                .collect();
            let out = Tensor::from_fn(n, d, |r, c| {
                self.gamma.get(0, c) * (input.get(r, c) - self.running_mean.get(0, c)) * inv_std[c]
                    + self.beta.get(0, c)
            });
            let x_hat = Tensor::from_fn(n, d, |r, c| {
                (input.get(r, c) - self.running_mean.get(0, c)) / std[c]
            });
            self.cache = Some(BnCache { x_hat, inv_std });
            out
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm1d::backward before forward");
        let (n, d) = grad_out.shape();
        assert_eq!(cache.x_hat.shape(), (n, d), "batchnorm grad shape mismatch");
        let mut sum_dy = vec![0.0f32; d];
        let mut sum_dy_xhat = vec![0.0f32; d];
        for c in 0..d {
            for r in 0..n {
                let dy = grad_out.get(r, c);
                sum_dy[c] += dy;
                sum_dy_xhat[c] += dy * cache.x_hat.get(r, c);
            }
        }
        for c in 0..d {
            self.grad_beta
                .set(0, c, self.grad_beta.get(0, c) + sum_dy[c]);
            self.grad_gamma
                .set(0, c, self.grad_gamma.get(0, c) + sum_dy_xhat[c]);
        }
        let nf = n as f32;
        Tensor::from_fn(n, d, |r, c| {
            let dy = grad_out.get(r, c);
            self.gamma.get(0, c) * cache.inv_std[c] / nf
                * (nf * dy - sum_dy[c] - cache.x_hat.get(r, c) * sum_dy_xhat[c])
        })
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }
}

/// Inverted dropout: zeroes activations with probability `p` during
/// training and scales survivors by `1/(1-p)`; identity in evaluation.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Xoshiro256pp,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        Self {
            p,
            rng: Xoshiro256pp::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Resets the internal RNG to a fresh stream derived from `seed`.
    ///
    /// The data-parallel trainer reseeds dropout per gradient chunk so
    /// the masks depend only on `(run seed, step, chunk)` — never on
    /// which worker executed the chunk or how many workers exist.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = Xoshiro256pp::seed_from_u64(seed);
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = Some(Tensor::full(input.rows(), input.cols(), 1.0));
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_fn(input.rows(), input.cols(), |_, _| {
            if self.rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = input * &mask;
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("Dropout::backward before forward");
        grad_out * mask
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
}

/// A feed-forward container applying layers in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(42)
    }

    /// Numerical-gradient check for Linear.
    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut r = rng();
        let mut lin = Linear::new(3, 2, &mut r);
        let x = init::xavier_uniform(4, 3, &mut r);
        let target = init::xavier_uniform(4, 2, &mut r);

        let loss_of = |lin: &mut Linear, x: &Tensor| {
            let y = lin.forward(x, true);
            (&y - &target).map(|v| v * v).data().iter().sum::<f32>()
        };

        // Analytic gradient.
        let y = lin.forward(&x, true);
        let dy = (&y - &target).map(|v| 2.0 * v);
        lin.zero_grad();
        let dx = lin.backward(&dy);

        // Finite differences on one weight and one input element.
        let eps = 1e-3;
        let base = loss_of(&mut lin, &x);

        let mut lin2 = lin.clone();
        let w = lin2.weight.get(1, 2);
        lin2.weight.set(1, 2, w + eps);
        let num_dw = (loss_of(&mut lin2, &x) - base) / eps;
        assert!(
            (num_dw - lin.grad_weight.get(1, 2)).abs() < 0.05 * num_dw.abs().max(1.0),
            "dW numeric {num_dw} vs analytic {}",
            lin.grad_weight.get(1, 2)
        );

        let mut x2 = x.clone();
        x2.set(0, 1, x.get(0, 1) + eps);
        let num_dx = (loss_of(&mut lin, &x2) - base) / eps;
        assert!(
            (num_dx - dx.get(0, 1)).abs() < 0.05 * num_dx.abs().max(1.0),
            "dX numeric {num_dx} vs analytic {}",
            dx.get(0, 1)
        );
    }

    #[test]
    fn relu_zeroes_negatives_and_their_grads() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(1, 4, vec![-1.0, 0.5, -0.1, 2.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.5, 0.0, 2.0]);
        let g = relu.backward(&Tensor::full(1, 4, 1.0));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn batchnorm_normalizes_batch_in_training() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let y = bn.forward(&x, true);
        for c in 0..2 {
            let col: Vec<f32> = (0..4).map(|r| y.get(r, c)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "column {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "column {c} var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(8, 1, (0..8).map(|i| i as f32).collect());
        for _ in 0..50 {
            bn.forward(&x, true);
        }
        // After many updates the running stats approximate the batch ones,
        // so eval output should be close to normalized too.
        let y = bn.forward(&x, false);
        assert!(y.mean().abs() < 0.2);
    }

    #[test]
    fn batchnorm_gradients_match_finite_differences() {
        let mut bn = BatchNorm1d::new(2);
        let mut r = rng();
        let x = init::xavier_uniform(6, 2, &mut r);
        let target = init::xavier_uniform(6, 2, &mut r);
        let y = bn.forward(&x, true);
        let dy = (&y - &target).map(|v| 2.0 * v);
        bn.zero_grad();
        let dx = bn.backward(&dy);

        let loss_of = |bn: &mut BatchNorm1d, x: &Tensor| {
            let y = bn.forward(x, true);
            (&y - &target).map(|v| v * v).data().iter().sum::<f32>()
        };
        let eps = 1e-3;
        let mut bn_probe = bn.clone();
        let base = loss_of(&mut bn_probe, &x);
        let mut x2 = x.clone();
        x2.set(2, 1, x.get(2, 1) + eps);
        let mut bn_probe2 = bn.clone();
        let num = (loss_of(&mut bn_probe2, &x2) - base) / eps;
        assert!(
            (num - dx.get(2, 1)).abs() < 0.1 * num.abs().max(1.0),
            "numeric {num} vs analytic {}",
            dx.get(2, 1)
        );
    }

    #[test]
    fn dropout_is_identity_in_eval() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(4, 4, 2.0);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_preserves_expectation_in_train() {
        let mut d = Dropout::new(0.3, 5);
        let x = Tensor::full(200, 50, 1.0);
        let y = d.forward(&x, true);
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Some elements must actually be dropped.
        assert!(y.data().contains(&0.0));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 8);
        let x = Tensor::full(4, 4, 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::full(4, 4, 1.0));
        assert_eq!(y, g, "forward and backward must share the mask");
    }

    #[test]
    fn sequential_chains_forward_and_backward() {
        let mut r = rng();
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(2, 4, &mut r)),
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 1, &mut r)),
        ]);
        let x = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), (3, 1));
        let dx = net.backward(&Tensor::full(3, 1, 1.0));
        assert_eq!(dx.shape(), (3, 2));
        let mut count = 0;
        net.visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 4, "two Linear layers × (W, b)");
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_before_forward_panics() {
        let mut relu = Relu::new();
        let _ = relu.backward(&Tensor::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn dropout_rejects_p_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
