//! Deterministic data-parallel gradient accumulation.
//!
//! The predictor models train with minibatch SGD. To parallelize a
//! minibatch without giving up reproducibility, the batch is split into
//! **fixed-size gradient chunks** (ghost batches). Each chunk runs a
//! full forward/backward pass on its own clone of the model, and the
//! partial results are reduced into the master model **in chunk order**.
//! Because the chunk boundaries depend only on `grad_chunk` — never on
//! the worker count — and the reduction order is fixed, the loss trace
//! is bit-identical whether the chunks execute on 1, 2, or 8 workers.
//!
//! Three details make this exact rather than merely approximate:
//!
//! * chunk clones are taken from the master snapshot, so per-chunk RNG
//!   state (dropout) does not depend on how many chunks a worker has
//!   already processed — callers reseed dropout from `(step, chunk)`;
//! * batch-norm statistics are computed per chunk (ghost batch norm)
//!   and the running buffers are merged by accumulating each clone's
//!   delta against the snapshot, again in chunk order;
//! * the minibatch loss is reduced in `f64` in chunk order.

use adrias_core::thread::map_chunks;

use crate::tensor::Tensor;

/// A model whose parameters, gradients, and running buffers can be
/// visited in a stable order, making it trainable by
/// [`accumulate_minibatch`].
///
/// `Clone` must deep-copy parameters, gradients, and RNG state; `Send +
/// Sync` let chunk clones run on scoped worker threads.
pub trait GradModel: Clone + Send + Sync {
    /// Visits every `(parameter, gradient)` pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Visits every non-trainable running buffer (e.g. batch-norm
    /// statistics) in a stable order. Defaults to no buffers.
    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        let _ = f;
    }

    /// Zeroes all accumulated parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.scale_assign(0.0));
    }
}

/// Aggregate throughput counters for a training run.
///
/// Counting happens outside the hot loop (one call per minibatch), so
/// collection costs nothing measurable and the counters are exact: the
/// chunk count is derived from the same `ceil(len / grad_chunk)` split
/// that [`accumulate_minibatch`] performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainStats {
    /// Completed epochs.
    pub epochs: u64,
    /// Minibatches processed.
    pub minibatches: u64,
    /// Gradient chunks dispatched across all minibatches.
    pub grad_chunks: u64,
    /// Samples seen (with repetition across epochs).
    pub samples: u64,
}

impl TrainStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one minibatch of `batch_len` samples split into chunks
    /// of at most `grad_chunk`.
    ///
    /// # Panics
    ///
    /// Panics if `grad_chunk` is zero.
    pub fn record_minibatch(&mut self, batch_len: usize, grad_chunk: usize) {
        assert!(grad_chunk > 0, "grad_chunk must be positive");
        self.minibatches += 1;
        self.grad_chunks += batch_len.div_ceil(grad_chunk) as u64;
        self.samples += batch_len as u64;
    }

    /// Records one completed epoch.
    pub fn record_epoch(&mut self) {
        self.epochs += 1;
    }

    /// Adds `other`'s counters into `self` (e.g. to combine the stats
    /// of several models trained by one stack).
    pub fn merge(&mut self, other: &TrainStats) {
        self.epochs += other.epochs;
        self.minibatches += other.minibatches;
        self.grad_chunks += other.grad_chunks;
        self.samples += other.samples;
    }
}

/// Resolves a configured worker count: `0` means "auto", which reads
/// the `ADRIAS_WORKERS` environment variable and falls back to the
/// number of available cores.
pub fn resolved_workers(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::env::var("ADRIAS_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Mixes seed components into a single RNG seed with a
/// splitmix64-style avalanche, so nearby `(seed, step, chunk)` tuples
/// yield unrelated dropout streams.
pub fn mix_seed(parts: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        h ^= p;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

/// Minibatches smaller than this many samples run on one worker
/// regardless of the configured count: at these sizes the scoped-thread
/// dispatch in [`map_chunks`] costs several times the forward/backward
/// work it distributes (the `train_step_workers_2` bench regressed
/// ~3.7× against serial before this floor). The threshold depends only
/// on `batch.len()`, and worker count never changes the reduction
/// order, so results stay bit-identical on either side of it.
pub const SERIAL_BATCH_FLOOR: usize = 256;

/// Runs one minibatch of data-parallel gradient accumulation.
///
/// `batch` is the sample indices of this minibatch; it is split into
/// chunks of at most `grad_chunk` samples. For every chunk, a clone of
/// `master` runs `pass(&mut clone, chunk_index, chunk_indices)`, which
/// must perform a forward/backward pass over exactly those samples and
/// return the chunk's mean loss. The clones' parameter gradients are
/// reduced into `master` weighted by chunk size (so the result is the
/// batch-mean gradient under ghost batch norm), running buffers are
/// merged by chunk-order delta accumulation, and the weighted mean loss
/// is returned.
///
/// The reduction is **bit-identical for any `workers` value**; see the
/// module docs for why. Batches below [`SERIAL_BATCH_FLOOR`] skip
/// thread dispatch entirely (a pure scheduling decision — the chunk
/// split and reduction order are unchanged).
///
/// # Panics
///
/// Panics if `batch` is empty or `grad_chunk` is zero.
pub fn accumulate_minibatch<M, F>(
    master: &mut M,
    batch: &[usize],
    grad_chunk: usize,
    workers: usize,
    pass: &F,
) -> f32
where
    M: GradModel,
    F: Fn(&mut M, usize, &[usize]) -> f32 + Sync,
{
    assert!(grad_chunk > 0, "grad_chunk must be positive");
    assert!(!batch.is_empty(), "empty minibatch");
    let workers = if batch.len() < SERIAL_BATCH_FLOOR {
        1
    } else {
        workers.max(1)
    };
    master.zero_grad();

    let mut snapshot = master.clone();
    let base_buffers = buffer_values(&mut snapshot);
    let chunks: Vec<(usize, &[usize])> = batch.chunks(grad_chunk).enumerate().collect();

    // (loss, samples, gradients, buffer values) per chunk, in chunk order.
    let results: Vec<(f32, usize, Vec<Tensor>, Vec<Tensor>)> =
        map_chunks(&chunks, workers, |assigned| {
            assigned
                .iter()
                .map(|&(chunk_index, idxs)| {
                    let mut clone = snapshot.clone();
                    let loss = pass(&mut clone, chunk_index, idxs);
                    let grads = take_grads(&mut clone);
                    let bufs = buffer_values(&mut clone);
                    (loss, idxs.len(), grads, bufs)
                })
                .collect()
        });

    let n_total = batch.len() as f32;
    let mut total_loss = 0.0f64;
    for (loss, n_chunk, grads, bufs) in &results {
        let w = *n_chunk as f32 / n_total;
        total_loss += f64::from(w) * f64::from(*loss);
        let mut i = 0;
        master.visit_params(&mut |_, g| {
            g.add_scaled_assign(&grads[i], w);
            i += 1;
        });
        let mut j = 0;
        master.visit_buffers(&mut |b| {
            // S ← S + (r_c − S₀): each chunk contributes its delta
            // against the shared snapshot, independent of the others.
            let mut delta = bufs[j].clone();
            delta.add_scaled_assign(&base_buffers[j], -1.0);
            b.add_assign(&delta);
            j += 1;
        });
    }
    total_loss as f32
}

fn take_grads<M: GradModel>(model: &mut M) -> Vec<Tensor> {
    let mut grads = Vec::new();
    model.visit_params(&mut |_, g| grads.push(std::mem::take(g)));
    grads
}

fn buffer_values<M: GradModel>(model: &mut M) -> Vec<Tensor> {
    let mut bufs = Vec::new();
    model.visit_buffers(&mut |b| bufs.push(b.clone()));
    bufs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Linear};
    use crate::loss::MseLoss;
    use adrias_core::rng::{SeedableRng, Xoshiro256pp};

    #[derive(Clone)]
    struct Toy {
        lin: Linear,
    }

    impl GradModel for Toy {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
            self.lin.visit_params(f);
        }
    }

    fn toy() -> (Toy, Tensor, Tensor) {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let model = Toy {
            lin: Linear::new(3, 1, &mut rng),
        };
        let x = crate::init::uniform(16, 3, 1.0, &mut rng);
        let y = Tensor::from_fn(16, 1, |r, _| x.get(r, 0) - x.get(r, 2));
        (model, x, y)
    }

    fn run(workers: usize) -> (f32, Vec<Tensor>, Vec<Tensor>) {
        run_sized(workers, 16)
    }

    fn run_sized(workers: usize, batch_len: usize) -> (f32, Vec<Tensor>, Vec<Tensor>) {
        let (mut model, x, y) = toy();
        let batch: Vec<usize> = (0..batch_len).map(|i| i % 16).collect();
        let loss = accumulate_minibatch(&mut model, &batch, 4, workers, &|m, _, idxs| {
            let rows: Vec<Tensor> = idxs.iter().map(|&i| x.rows_slice(i, i + 1)).collect();
            let refs: Vec<&Tensor> = rows.iter().collect();
            let xb = Tensor::vcat(&refs);
            let yb = Tensor::from_fn(idxs.len(), 1, |r, _| y.get(idxs[r], 0));
            let mut mse = MseLoss::new();
            let pred = m.lin.forward(&xb, true);
            let l = mse.forward(&pred, &yb);
            let g = mse.backward();
            m.lin.backward(&g);
            l
        });
        let mut params = Vec::new();
        let mut grads = Vec::new();
        model.visit_params(&mut |p, g| {
            params.push(p.clone());
            grads.push(g.clone());
        });
        (loss, params, grads)
    }

    #[test]
    fn loss_and_gradients_are_worker_count_invariant() {
        // Straddle SERIAL_BATCH_FLOOR: 16 stays below it (dispatch is
        // skipped), 300 is above it (threads really spawn) — the bits
        // must agree across worker counts on both sides.
        for batch_len in [16, 300] {
            let one = run_sized(1, batch_len);
            for workers in [2, 3, 8, 16] {
                let other = run_sized(workers, batch_len);
                assert_eq!(
                    one.0.to_bits(),
                    other.0.to_bits(),
                    "{workers} workers, batch {batch_len}"
                );
                assert_eq!(one.1, other.1, "params differ at {workers} workers");
                assert_eq!(one.2, other.2, "grads differ at {workers} workers");
            }
        }
    }

    #[test]
    fn serial_floor_is_bitwise_invisible() {
        // The floor only changes scheduling; a batch just below and the
        // same batch forced through multi-worker code paths (by
        // exceeding the floor with repeated indices) share chunk
        // boundaries, so per-chunk losses are reproducible either way.
        let below = run_sized(8, SERIAL_BATCH_FLOOR - 4);
        let below_again = run_sized(2, SERIAL_BATCH_FLOOR - 4);
        assert_eq!(below.0.to_bits(), below_again.0.to_bits());
        assert_eq!(below.1, below_again.1);
        let above = run_sized(8, SERIAL_BATCH_FLOOR + 4);
        let above_again = run_sized(2, SERIAL_BATCH_FLOOR + 4);
        assert_eq!(above.0.to_bits(), above_again.0.to_bits());
        assert_eq!(above.1, above_again.1);
    }

    #[test]
    fn accumulated_gradient_matches_manual_chunk_average() {
        let (_, grads_auto) = {
            let r = run(1);
            (r.0, r.2)
        };
        // Manual reduction: mean of per-chunk gradients weighted by size
        // (equal chunks here), computed with the same kernels.
        let (model, x, y) = toy();
        let mut expected: Vec<Tensor> = Vec::new();
        for c in 0..4 {
            let idxs: Vec<usize> = (c * 4..(c + 1) * 4).collect();
            let mut m = model.clone();
            let rows: Vec<Tensor> = idxs.iter().map(|&i| x.rows_slice(i, i + 1)).collect();
            let refs: Vec<&Tensor> = rows.iter().collect();
            let xb = Tensor::vcat(&refs);
            let yb = Tensor::from_fn(4, 1, |r, _| y.get(idxs[r], 0));
            let mut mse = MseLoss::new();
            let pred = m.lin.forward(&xb, true);
            mse.forward(&pred, &yb);
            m.lin.backward(&mse.backward());
            let mut i = 0;
            m.visit_params(&mut |_, g| {
                if expected.len() <= i {
                    expected.push(Tensor::zeros(g.rows(), g.cols()));
                }
                expected[i].add_scaled_assign(g, 0.25);
                i += 1;
            });
        }
        for (a, e) in grads_auto.iter().zip(&expected) {
            let diff = (a - e).norm();
            assert!(diff < 1e-6, "gradient mismatch: {diff}");
        }
    }

    #[test]
    fn train_stats_count_minibatches_chunks_and_samples() {
        let mut stats = TrainStats::new();
        stats.record_minibatch(10, 4); // 3 chunks
        stats.record_minibatch(8, 4); // 2 chunks
        stats.record_epoch();
        assert_eq!(stats.epochs, 1);
        assert_eq!(stats.minibatches, 2);
        assert_eq!(stats.grad_chunks, 5);
        assert_eq!(stats.samples, 18);

        let mut total = TrainStats::new();
        total.merge(&stats);
        total.merge(&stats);
        assert_eq!(total.grad_chunks, 10);
        assert_eq!(total.epochs, 2);
    }

    #[test]
    fn resolved_workers_prefers_explicit_config() {
        assert_eq!(resolved_workers(3), 3);
        assert!(resolved_workers(0) >= 1);
    }

    #[test]
    #[should_panic(expected = "empty minibatch")]
    fn empty_batch_rejected() {
        let (mut model, _, _) = toy();
        let _ = accumulate_minibatch(&mut model, &[], 4, 1, &|_, _, _| 0.0);
    }
}
