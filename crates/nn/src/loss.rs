//! Loss functions.

use crate::tensor::Tensor;

/// Mean-squared-error loss with cached backward pass.
///
/// # Examples
///
/// ```
/// use adrias_nn::{MseLoss, Tensor};
///
/// let mut loss = MseLoss::new();
/// let pred = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
/// let target = Tensor::from_vec(1, 2, vec![0.0, 2.0]);
/// assert_eq!(loss.forward(&pred, &target), 0.5);
/// let grad = loss.backward();
/// assert_eq!(grad.shape(), (1, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MseLoss {
    cached_diff: Option<Tensor>,
}

impl MseLoss {
    /// Creates an MSE loss.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes `mean((pred - target)²)` and caches the residual.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or empty inputs.
    pub fn forward(&mut self, pred: &Tensor, target: &Tensor) -> f32 {
        assert_eq!(
            pred.shape(),
            target.shape(),
            "loss shape mismatch: {:?} vs {:?}",
            pred.shape(),
            target.shape()
        );
        assert!(!pred.is_empty(), "loss of empty tensors");
        let diff = pred - target;
        let loss = diff.map(|v| v * v).mean();
        self.cached_diff = Some(diff);
        loss
    }

    /// Gradient of the loss w.r.t. the predictions.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MseLoss::forward`].
    pub fn backward(&self) -> Tensor {
        let diff = self
            .cached_diff
            .as_ref()
            .expect("MseLoss::backward before forward");
        let n = diff.len() as f32;
        diff.map(|v| 2.0 * v / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_for_perfect_prediction() {
        let mut l = MseLoss::new();
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(l.forward(&t, &t), 0.0);
        assert!(l.backward().data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn gradient_points_toward_target() {
        let mut l = MseLoss::new();
        let pred = Tensor::from_vec(1, 1, vec![3.0]);
        let target = Tensor::from_vec(1, 1, vec![1.0]);
        let loss = l.forward(&pred, &target);
        assert_eq!(loss, 4.0);
        // d/dpred mean((p-t)^2) = 2(p-t)/n = 4.
        assert_eq!(l.backward().get(0, 0), 4.0);
    }

    #[test]
    fn gradient_is_normalized_by_element_count() {
        let mut l = MseLoss::new();
        let pred = Tensor::full(2, 2, 2.0);
        let target = Tensor::zeros(2, 2);
        l.forward(&pred, &target);
        assert_eq!(l.backward().get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_before_forward_panics() {
        let l = MseLoss::new();
        let _ = l.backward();
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_rejected() {
        let mut l = MseLoss::new();
        let _ = l.forward(&Tensor::zeros(1, 2), &Tensor::zeros(2, 1));
    }
}
