//! Regression test for the dead-ReLU initialization fragility.
//!
//! With zero-initialized biases, a small Xavier-initialized layer can
//! start with every pre-activation negative for some seeds, so ReLU
//! blocks all gradient flow and the network never trains (this bit the
//! crate doctest at seed 0).  `init::positive_bias` now nudges dense
//! biases to +0.01; this test pins the fix across a whole band of seeds.

use adrias_core::rng::{Rng, SeedableRng, Xoshiro256pp};
use adrias_nn::{Layer, Linear, MseLoss, Relu, Tensor};

#[test]
fn tiny_relu_net_has_gradient_flow_for_seeds_0_to_32() {
    for seed in 0..32u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut l1 = Linear::new(4, 8, &mut rng);
        let mut relu = Relu::new();
        let mut l2 = Linear::new(8, 2, &mut rng);

        let x = Tensor::from_fn(6, 4, |_, _| rng.gen::<f32>() - 0.5);
        let t = Tensor::from_fn(6, 2, |_, _| rng.gen::<f32>() - 0.5);

        let h = relu.forward(&l1.forward(&x, true), true);
        assert!(
            h.data().iter().any(|&v| v > 0.0),
            "seed {seed}: every ReLU unit is dead at initialization"
        );

        let mut loss = MseLoss::new();
        loss.forward(&l2.forward(&h, true), &t);
        let grad = l2.backward(&loss.backward());
        l1.backward(&relu.backward(&grad));

        // The *first* layer must receive gradient — that is exactly what
        // a dead ReLU wall would block.
        let mut first_grad_norm = 0.0f32;
        l1.visit_params(&mut |_, g| first_grad_norm += g.norm());
        assert!(
            first_grad_norm > 0.0,
            "seed {seed}: no gradient reaches the first dense layer"
        );
    }
}
