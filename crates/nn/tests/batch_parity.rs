//! Batched vs per-sample parity for the forward and backward passes.
//!
//! The batched engine is only a *vectorization* of the per-sample maths:
//! every kernel walks the reduction dimension in increasing order and
//! never blocks over `k`, so a row of a batched output is the same `f32`
//! sequence of operations as the corresponding batch-1 row.  These tests
//! pin that contract to the PR's 1e-5 tolerance — and, where the
//! implementation guarantees it, to bitwise equality.

use adrias_core::rng::{Rng, SeedableRng, Xoshiro256pp};
use adrias_nn::{Layer, Linear, Lstm, NonLinearBlock, Tensor};

const TOL: f32 = 1e-5;

fn random_tensor<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.gen::<f32>() - 0.5)
}

fn assert_close(batched: &[f32], single: &[f32], what: &str) {
    assert_eq!(batched.len(), single.len(), "{what}: length mismatch");
    for (i, (&b, &s)) in batched.iter().zip(single).enumerate() {
        assert!(
            (b - s).abs() <= TOL,
            "{what}: element {i} diverged: batched {b} vs per-sample {s}"
        );
    }
}

#[test]
fn linear_forward_batched_matches_per_sample_bitwise() {
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let mut lin = Linear::new(6, 4, &mut rng);
    let batch = random_tensor(9, 6, &mut rng);

    let batched = lin.forward(&batch, false);
    for r in 0..batch.rows() {
        let one = lin.forward(&batch.rows_slice(r, r + 1), false);
        assert_eq!(
            batched.row(r),
            one.data(),
            "linear row {r} must be bit-identical to the batch-1 forward"
        );
    }
}

#[test]
fn linear_backward_batched_matches_per_sample_accumulation() {
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let batch = random_tensor(7, 5, &mut rng);
    let grad_out = random_tensor(7, 3, &mut rng);

    // Batched: one forward/backward over the whole minibatch.
    let mut batched = Linear::new(5, 3, &mut rng);
    let mut per_sample = batched.clone();
    batched.forward(&batch, false);
    let dx_batched = batched.backward(&grad_out);

    // Per-sample: accumulate the same gradients one row at a time.
    let mut dx_rows = Vec::new();
    for r in 0..batch.rows() {
        per_sample.forward(&batch.rows_slice(r, r + 1), false);
        dx_rows.push(per_sample.backward(&grad_out.rows_slice(r, r + 1)));
    }

    let mut grads_batched = Vec::new();
    batched.visit_params(&mut |_, g| grads_batched.push(g.clone()));
    let mut grads_single = Vec::new();
    per_sample.visit_params(&mut |_, g| grads_single.push(g.clone()));
    for (gb, gs) in grads_batched.iter().zip(&grads_single) {
        assert_close(gb.data(), gs.data(), "linear parameter gradient");
    }
    for (r, dx) in dx_rows.iter().enumerate() {
        assert_close(dx_batched.row(r), dx.data(), "linear input gradient");
    }
}

#[test]
fn lstm_forward_batched_matches_per_sample() {
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let mut lstm = Lstm::new(4, 6, &mut rng);
    let seq: Vec<Tensor> = (0..5).map(|_| random_tensor(8, 4, &mut rng)).collect();

    let batched = lstm.forward_last(&seq);
    for r in 0..batched.rows() {
        let one_seq: Vec<Tensor> = seq.iter().map(|x| x.rows_slice(r, r + 1)).collect();
        let one = lstm.forward_last(&one_seq);
        assert_close(batched.row(r), one.data(), "lstm hidden state");
    }
}

#[test]
fn lstm_backward_batched_matches_per_sample_accumulation() {
    let mut rng = Xoshiro256pp::seed_from_u64(19);
    let seq: Vec<Tensor> = (0..4).map(|_| random_tensor(6, 3, &mut rng)).collect();
    let grad_last = random_tensor(6, 5, &mut rng);

    let mut batched = Lstm::new(3, 5, &mut rng);
    let mut per_sample = batched.clone();

    batched.forward_last(&seq);
    batched.backward_last(&grad_last);

    for r in 0..grad_last.rows() {
        let one_seq: Vec<Tensor> = seq.iter().map(|x| x.rows_slice(r, r + 1)).collect();
        per_sample.forward_last(&one_seq);
        per_sample.backward_last(&grad_last.rows_slice(r, r + 1));
    }

    let mut grads_batched = Vec::new();
    batched.visit_params(&mut |_, g| grads_batched.push(g.clone()));
    let mut grads_single = Vec::new();
    per_sample.visit_params(&mut |_, g| grads_single.push(g.clone()));
    for (gb, gs) in grads_batched.iter().zip(&grads_single) {
        assert_close(gb.data(), gs.data(), "lstm parameter gradient");
    }
}

#[test]
fn nonlinear_block_eval_forward_batched_matches_per_sample_bitwise() {
    // The full block (Linear → ReLU → BatchNorm → Dropout) in eval mode:
    // batch-norm uses running statistics and dropout is the identity, so
    // every row is computed independently and parity is exact.
    let mut rng = Xoshiro256pp::seed_from_u64(23);
    let mut block = NonLinearBlock::new(5, 7, 0.1, &mut rng);
    // Warm the running statistics so eval mode is non-trivial.
    let warm = random_tensor(16, 5, &mut rng);
    block.forward(&warm, true);

    let batch = random_tensor(6, 5, &mut rng);
    let batched = block.forward(&batch, false);
    for r in 0..batch.rows() {
        let one = block.forward(&batch.rows_slice(r, r + 1), false);
        assert_eq!(
            batched.row(r),
            one.data(),
            "block row {r} must be bit-identical to the batch-1 forward"
        );
    }
}
