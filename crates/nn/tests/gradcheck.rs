//! Finite-difference gradient checks for the analytic backward passes.
//!
//! Every parameter of the smooth network paths — the dense layer under an
//! MSE head, the LSTM cell (all four gates live in the concatenated
//! `w_ih`/`w_hh`/`bias` blocks) and the loss backward itself — is verified
//! against central differences.  ReLU, train-mode batch-norm and dropout
//! are deliberately excluded: their kinks and stochastic masks make finite
//! differences meaningless.
//!
//! The numeric derivative accumulates the loss in `f64` (on top of the
//! `f32` forward) so the subtraction `L(θ+ε) − L(θ−ε)` is not drowned by
//! summation round-off.

use adrias_core::rng::{Rng, SeedableRng, Xoshiro256pp};
use adrias_nn::{Layer, Linear, Lstm, MseLoss, Tensor};

/// Central-difference step. Large enough to dominate `f32` forward
/// round-off, small enough that the `O(ε²)` curvature term stays below
/// the tolerance.
const EPS: f32 = 1e-2;
/// Required relative accuracy on every parameter.
const TOL: f64 = 1e-3;
/// Gradients smaller than this are compared absolutely (against
/// `TOL * FLOOR`) instead of relatively.
const FLOOR: f64 = 0.05;

fn rel_err(analytic: f64, numeric: f64) -> f64 {
    (analytic - numeric).abs() / analytic.abs().max(numeric.abs()).max(FLOOR)
}

/// Mean squared error accumulated in `f64`.
fn f64_mse(pred: &Tensor, target: &Tensor) -> f64 {
    let n = pred.len() as f64;
    pred.data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| {
            let d = f64::from(p) - f64::from(t);
            d * d
        })
        .sum::<f64>()
        / n
}

fn random_tensor<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.gen::<f32>() - 0.5)
}

/// A visitor over a model's `(param, grad)` tensor pairs.
type ParamVisitor<'a, M> = &'a dyn Fn(&mut M, &mut dyn FnMut(&mut Tensor, &mut Tensor));

/// Checks every parameter element of `model` against central differences.
///
/// * `visit` exposes the model's `(param, grad)` pairs;
/// * `run` performs forward + backward (populating analytic gradients) and
///   returns the `f64` loss;
/// * `eval` performs a forward pass only and returns the `f64` loss.
fn check_all_params<M: Clone>(
    model: &mut M,
    visit: ParamVisitor<'_, M>,
    run: &dyn Fn(&mut M) -> f64,
    eval: &dyn Fn(&mut M) -> f64,
    label: &str,
) {
    visit(model, &mut |_, g| g.scale_assign(0.0));
    run(model);

    let mut analytic: Vec<Tensor> = Vec::new();
    visit(model, &mut |_, g| analytic.push(g.clone()));

    let mut checked = 0usize;
    for (tensor_idx, grad) in analytic.iter().enumerate() {
        for elem_idx in 0..grad.len() {
            let numeric = {
                let mut losses = [0.0f64; 2];
                for (side, delta) in [EPS, -EPS].into_iter().enumerate() {
                    let mut probe = model.clone();
                    let mut seen = 0usize;
                    visit(&mut probe, &mut |p, _| {
                        if seen == tensor_idx {
                            p.data_mut()[elem_idx] += delta;
                        }
                        seen += 1;
                    });
                    losses[side] = eval(&mut probe);
                }
                (losses[0] - losses[1]) / (2.0 * f64::from(EPS))
            };
            let a = f64::from(grad.data()[elem_idx]);
            let err = rel_err(a, numeric);
            assert!(
                err < TOL,
                "{label}: param tensor {tensor_idx} element {elem_idx}: \
                 analytic {a:.6e} vs numeric {numeric:.6e} (rel err {err:.3e})"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "{label}: no parameters visited");
}

#[test]
fn dense_layer_gradients_match_central_differences() {
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut lin = Linear::new(4, 3, &mut rng);
    let x = random_tensor(5, 4, &mut rng);
    let t = random_tensor(5, 3, &mut rng);

    let run = {
        let (x, t) = (x.clone(), t.clone());
        move |m: &mut Linear| -> f64 {
            let pred = m.forward(&x, false);
            let mut loss = MseLoss::new();
            loss.forward(&pred, &t);
            m.backward(&loss.backward());
            f64_mse(&pred, &t)
        }
    };
    let eval = {
        let (x, t) = (x.clone(), t.clone());
        move |m: &mut Linear| -> f64 { f64_mse(&m.forward(&x, false), &t) }
    };
    check_all_params(&mut lin, &|m, f| m.visit_params(f), &run, &eval, "dense");
}

#[test]
fn lstm_gate_gradients_match_central_differences() {
    let mut rng = Xoshiro256pp::seed_from_u64(11);
    let mut lstm = Lstm::new(3, 4, &mut rng);
    let seq: Vec<Tensor> = (0..4).map(|_| random_tensor(2, 3, &mut rng)).collect();
    let t = random_tensor(2, 4, &mut rng);

    let run = {
        let (seq, t) = (seq.clone(), t.clone());
        move |m: &mut Lstm| -> f64 {
            let h = m.forward_last(&seq);
            let mut loss = MseLoss::new();
            loss.forward(&h, &t);
            m.backward_last(&loss.backward());
            f64_mse(&h, &t)
        }
    };
    let eval = {
        let (seq, t) = (seq.clone(), t.clone());
        move |m: &mut Lstm| -> f64 { f64_mse(&m.forward_last(&seq), &t) }
    };
    check_all_params(&mut lstm, &|m, f| m.visit_params(f), &run, &eval, "lstm");
}

#[test]
fn mse_backward_matches_central_differences() {
    let mut rng = Xoshiro256pp::seed_from_u64(13);
    let pred = random_tensor(3, 4, &mut rng);
    let t = random_tensor(3, 4, &mut rng);

    let mut loss = MseLoss::new();
    loss.forward(&pred, &t);
    let grad = loss.backward();

    for i in 0..pred.len() {
        let numeric = {
            let probe = |delta: f32| -> f64 {
                let mut p = pred.clone();
                p.data_mut()[i] += delta;
                f64_mse(&p, &t)
            };
            (probe(EPS) - probe(-EPS)) / (2.0 * f64::from(EPS))
        };
        let a = f64::from(grad.data()[i]);
        let err = rel_err(a, numeric);
        assert!(
            err < TOL,
            "mse backward element {i}: analytic {a:.6e} vs numeric {numeric:.6e} \
             (rel err {err:.3e})"
        );
    }
}
