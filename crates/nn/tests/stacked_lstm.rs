//! Integration tests for stacked LSTMs — the exact topology the Adrias
//! models use (two LSTM layers where the second consumes the full hidden
//! sequence of the first, with gradients flowing through every step).

use adrias_core::rng::Xoshiro256pp;
use adrias_core::rng::{Rng, SeedableRng};

use adrias_nn::{Adam, Layer, Linear, Lstm, MseLoss, Tensor};

fn uniform(rows: usize, cols: usize, rng: &mut Xoshiro256pp) -> Tensor {
    Tensor::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Forward through the stacked pair, reading out the last hidden state.
fn forward(l1: &mut Lstm, l2: &mut Lstm, head: &mut Linear, seq: &[Tensor]) -> Tensor {
    let h1 = l1.forward_seq(seq);
    let h2 = l2.forward_last(&h1);
    head.forward(&h2, true)
}

/// Backward: head → LSTM2 (last-state grad) → per-step grads → LSTM1.
fn backward(l1: &mut Lstm, l2: &mut Lstm, head: &mut Linear, d_out: &Tensor) {
    let d_h2 = head.backward(d_out);
    let d_seq = l2.backward_last(&d_h2);
    l1.backward_seq(&d_seq);
}

#[test]
fn stacked_gradients_match_finite_differences() {
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let mut l1 = Lstm::new(2, 3, &mut rng);
    let mut l2 = Lstm::new(3, 4, &mut rng);
    let mut head = Linear::new(4, 1, &mut rng);
    let seq: Vec<Tensor> = (0..5).map(|_| uniform(2, 2, &mut rng)).collect();
    let target = uniform(2, 1, &mut rng);

    let loss_of = |l1: &mut Lstm, l2: &mut Lstm, head: &mut Linear, seq: &[Tensor]| {
        let y = forward(l1, l2, head, seq);
        (&y - &target).map(|v| v * v).data().iter().sum::<f32>()
    };

    // Analytic gradient through the whole stack.
    let y = forward(&mut l1, &mut l2, &mut head, &seq);
    let d_y = (&y - &target).map(|v| 2.0 * v);
    l1.zero_grad();
    l2.zero_grad();
    head.zero_grad();
    backward(&mut l1, &mut l2, &mut head, &d_y);

    // Finite difference on one weight of the FIRST LSTM — this only
    // matches if gradients propagate correctly through the second LSTM's
    // full-sequence input.
    let eps = 1e-3;
    let base = loss_of(&mut l1.clone(), &mut l2.clone(), &mut head.clone(), &seq);
    let mut analytic = 0.0;
    let mut probe1 = l1.clone();
    {
        let mut first = true;
        probe1.visit_params(&mut |p, g| {
            if first {
                let v = p.get(1, 1);
                p.set(1, 1, v + eps);
                analytic = g.get(1, 1);
                first = false;
            }
        });
    }
    let numeric = (loss_of(&mut probe1, &mut l2.clone(), &mut head.clone(), &seq) - base) / eps;
    assert!(
        (numeric - analytic).abs() < 0.08 * numeric.abs().max(0.5),
        "stacked grad mismatch: numeric {numeric} vs analytic {analytic}"
    );
}

#[test]
fn stacked_pair_learns_a_temporal_task() {
    // Predict 0.5·(x_first - x_last) of a scalar sequence: requires
    // retaining information across the whole sequence.
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut l1 = Lstm::new(1, 8, &mut rng);
    let mut l2 = Lstm::new(8, 8, &mut rng);
    let mut head = Linear::new(8, 1, &mut rng);
    let mut opt = Adam::new(5e-3);
    let mut loss_fn = MseLoss::new();

    let n = 48;
    let t_len = 7;
    let seqs: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..t_len).map(|_| rng.gen_range(-0.8..0.8)).collect())
        .collect();
    let batch: Vec<Tensor> = (0..t_len)
        .map(|t| Tensor::from_fn(n, 1, |row, _| seqs[row][t]))
        .collect();
    let target = Tensor::from_fn(n, 1, |row, _| 0.5 * (seqs[row][0] - seqs[row][t_len - 1]));

    let mut last = f32::MAX;
    for _ in 0..400 {
        let y = forward(&mut l1, &mut l2, &mut head, &batch);
        last = loss_fn.forward(&y, &target);
        let d_y = loss_fn.backward();
        l1.zero_grad();
        l2.zero_grad();
        head.zero_grad();
        backward(&mut l1, &mut l2, &mut head, &d_y);
        opt.begin_step();
        head.visit_params(&mut |p, g| opt.update(p, g));
        l2.visit_params(&mut |p, g| opt.update(p, g));
        l1.visit_params(&mut |p, g| opt.update(p, g));
    }
    assert!(last < 0.01, "stacked LSTM failed the temporal task: {last}");
}

#[test]
fn per_step_gradients_reach_early_inputs() {
    // Supplying a gradient at EVERY step must produce a larger gradient
    // on early inputs than supplying it only at the last step.
    let mut rng = Xoshiro256pp::seed_from_u64(21);
    let mut lstm = Lstm::new(2, 4, &mut rng);
    let seq: Vec<Tensor> = (0..6).map(|_| uniform(3, 2, &mut rng)).collect();

    let h = lstm.forward_seq(&seq);
    let all_grads: Vec<Tensor> = h
        .iter()
        .map(|t| Tensor::full(t.rows(), t.cols(), 1.0))
        .collect();
    lstm.zero_grad();
    let d_all = lstm.backward_seq(&all_grads);

    let _ = lstm.forward_seq(&seq);
    lstm.zero_grad();
    let d_last = lstm.backward_last(&Tensor::full(3, 4, 1.0));

    assert!(
        d_all[0].norm() > d_last[0].norm(),
        "per-step supervision should strengthen early-step gradients"
    );
}
