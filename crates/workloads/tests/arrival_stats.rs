//! Statistical contract of the arrival generators: seeded moment and
//! coefficient-of-variation checks for the open-loop processes, the
//! closed-loop concurrency invariant, and bitwise seed determinism for
//! every generator — each as a shrinking property over the seed space,
//! so a failing distributional claim reports the smallest seed that
//! breaks it.

use adrias_core::prop::prelude::*;
use adrias_workloads::{
    ArrivalProcess, ArrivalSource, ClosedLoopSource, DiurnalSource, MmppSource, PoissonSource,
    TraceSource,
};

fn drain(src: &mut dyn ArrivalSource) -> Vec<f64> {
    let mut out = Vec::new();
    while let Some(t) = src.next_time() {
        out.push(t);
    }
    out
}

/// Inter-arrival gaps of an instant sequence (first gap from t = 0).
fn gaps(times: &[f64]) -> Vec<f64> {
    let mut prev = 0.0;
    times
        .iter()
        .map(|t| {
            let g = t - prev;
            prev = *t;
            g
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Coefficient of variation: σ/μ of the gap distribution.
fn cv(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt() / m
}

proptest! {
    /// Poisson gaps: mean ≈ 1/λ and CV ≈ 1, for every seed. Horizon
    /// 3000 s at λ = 1/s gives ~3000 gaps, so a 10 % tolerance is ~5σ.
    #[test]
    fn poisson_gap_mean_is_inverse_rate_and_cv_is_one(seed in 0u64..10_000) {
        let times = drain(&mut PoissonSource::new(1.0, 3000.0, seed));
        prop_assert!(times.len() > 2000, "only {} arrivals", times.len());
        let g = gaps(&times);
        let m = mean(&g);
        prop_assert!((m - 1.0).abs() < 0.1, "gap mean {m} far from 1/λ = 1");
        let c = cv(&g);
        prop_assert!((c - 1.0).abs() < 0.1, "gap CV {c} far from 1");
    }

    /// MMPP burstiness: mixing a slow and a fast state pushes the gap
    /// CV strictly above the Poisson value of 1.
    #[test]
    fn mmpp_gap_cv_exceeds_one(seed in 0u64..10_000) {
        let mut src = MmppSource::new([0.2, 8.0], [40.0, 40.0], 4000.0, seed);
        let times = drain(&mut src);
        prop_assert!(times.len() > 500, "only {} arrivals", times.len());
        let c = cv(&gaps(&times));
        prop_assert!(c > 1.2, "MMPP gap CV {c} not bursty");
    }

    /// Diurnal rate tracking: with rate(t) = base·(1 + amp·sin(2πt/P)),
    /// the first half of each period (sin ≥ 0) must collect markedly
    /// more arrivals than the second half — the expected ratio at
    /// amp = 0.8 is (1 + 2·amp/π)/(1 − 2·amp/π) ≈ 3.
    #[test]
    fn diurnal_arrivals_track_the_modulated_rate(seed in 0u64..10_000) {
        let period = 200.0;
        let mut src = DiurnalSource::new(2.0, 0.8, period, 4000.0, seed);
        let times = drain(&mut src);
        prop_assert!(times.len() > 2000, "only {} arrivals", times.len());
        let (mut rising, mut falling) = (0usize, 0usize);
        for t in &times {
            if (t % period) < period / 2.0 {
                rising += 1;
            } else {
                falling += 1;
            }
        }
        prop_assert!(
            rising as f64 > 1.5 * falling as f64,
            "peak half {rising} vs trough half {falling}: rate not tracked"
        );
    }

    /// Closed-loop concurrency invariant: with N think-time clients,
    /// the number of submissions awaiting completion never exceeds N,
    /// and total issue accounting closes exactly.
    #[test]
    fn closed_loop_in_flight_never_exceeds_clients(
        clients in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut src = ClosedLoopSource::new(clients, 1.0, 4.0, 300.0, seed);
        let mut running: Vec<f64> = Vec::new();
        let mut completed = 0u64;
        loop {
            match src.next_time() {
                Some(t) => {
                    running.push(t + 5.0);
                    prop_assert!(
                        src.in_flight() <= clients,
                        "{} in flight with {clients} clients",
                        src.in_flight()
                    );
                }
                None => {
                    if src.exhausted() {
                        break;
                    }
                    // Every client is busy: complete the earliest.
                    running.sort_by(|a, b| b.total_cmp(a));
                    let done = running.pop().expect("in-flight submission exists");
                    src.on_complete(done);
                    completed += 1;
                }
            }
            prop_assert!(running.len() <= clients);
        }
        for done in running.drain(..) {
            src.on_complete(done);
            completed += 1;
        }
        prop_assert!(src.exhausted());
        prop_assert_eq!(completed, src.issued());
        prop_assert!(src.issued() >= clients as u64, "each client submits at least once");
    }

    /// Every generator's emitted stream is a pure function of its seed:
    /// same seed → bitwise-identical instants, and (for the seeded
    /// generators) a different seed perturbs the stream.
    #[test]
    fn generators_are_bitwise_seed_deterministic(seed in 0u64..10_000) {
        fn bits(times: &[f64]) -> Vec<u64> {
            times.iter().map(|t| t.to_bits()).collect()
        }
        let build: Vec<fn(u64) -> Box<dyn ArrivalSource>> = vec![
            |s| Box::new(PoissonSource::new(0.8, 400.0, s)),
            |s| Box::new(DiurnalSource::new(0.8, 0.5, 100.0, 400.0, s)),
            |s| Box::new(MmppSource::new([0.3, 4.0], [25.0, 25.0], 400.0, s)),
            |s| Box::new(ArrivalProcess::paper(30.0).source(400.0, s)),
            |s| Box::new(ClosedLoopSource::new(3, 2.0, 9.0, 400.0, s)),
        ];
        for make in &build {
            let a = drain(&mut *make(seed));
            let b = drain(&mut *make(seed));
            prop_assert_eq!(bits(&a), bits(&b));
            let c = drain(&mut *make(seed ^ 0x5EED_F00D));
            prop_assert!(
                bits(&a) != bits(&c) || a.is_empty(),
                "seed change left the stream bit-identical"
            );
        }
        // Trace replay is seedless by construction: it replays its
        // input verbatim.
        let trace = vec![0.5, 1.5, 9.0];
        let replayed = drain(&mut TraceSource::new(trace.clone()));
        prop_assert_eq!(bits(&replayed), bits(&trace));
    }
}
