//! Application signatures.
//!
//! The performance-prediction model receives, for every known
//! application, a *signature* `k`: the sequence of monitored metrics
//! captured while the application ran **in isolation on remote memory**
//! (§V-B2). The signature is the model's handle on the inherent
//! characteristics of the application; when Adrias sees an app with no
//! stored signature it schedules it remote-first and records one (§V-C).

use adrias_telemetry::{Metric, MetricVec};

/// The isolated-remote-run metric sequence identifying one application.
///
/// # Examples
///
/// ```
/// use adrias_telemetry::MetricVec;
/// use adrias_workloads::AppSignature;
///
/// let sig = AppSignature::new("lr", vec![MetricVec::zero(); 24]);
/// assert_eq!(sig.app_name(), "lr");
/// assert_eq!(sig.len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppSignature {
    app_name: String,
    rows: Vec<MetricVec>,
}

impl AppSignature {
    /// Creates a signature for `app_name` from metric rows (oldest first).
    pub fn new(app_name: impl Into<String>, rows: Vec<MetricVec>) -> Self {
        Self {
            app_name: app_name.into(),
            rows,
        }
    }

    /// Name of the application this signature identifies.
    pub fn app_name(&self) -> &str {
        &self.app_name
    }

    /// Number of sampling instants in the signature.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the signature holds no samples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Metric rows, oldest first.
    pub fn rows(&self) -> &[MetricVec] {
        &self.rows
    }

    /// Resamples the signature to exactly `len` rows by nearest-neighbour
    /// index mapping, so signatures of differently-sized apps can share
    /// one model input shape.
    ///
    /// # Panics
    ///
    /// Panics if the signature is empty or `len` is zero.
    pub fn resampled(&self, len: usize) -> AppSignature {
        assert!(!self.rows.is_empty(), "cannot resample an empty signature");
        assert!(len > 0, "target length must be non-zero");
        let rows = (0..len)
            .map(|i| {
                let src = i * self.rows.len() / len;
                self.rows[src.min(self.rows.len() - 1)]
            })
            .collect();
        AppSignature {
            app_name: self.app_name.clone(),
            rows,
        }
    }

    /// Per-metric mean over the signature.
    pub fn mean_vec(&self) -> MetricVec {
        let mut acc = MetricVec::zero();
        if self.rows.is_empty() {
            return acc;
        }
        for row in &self.rows {
            acc = acc.add(row);
        }
        acc.scale(1.0 / self.rows.len() as f32)
    }

    /// Column for one metric, oldest first.
    pub fn column(&self, metric: Metric) -> Vec<f32> {
        self.rows.iter().map(|r| r.get(metric)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32) -> MetricVec {
        let mut m = MetricVec::zero();
        m.set(Metric::MemLoads, v);
        m
    }

    #[test]
    fn resample_up_and_down() {
        let sig = AppSignature::new("a", (0..10).map(|i| row(i as f32)).collect());
        let down = sig.resampled(5);
        assert_eq!(down.len(), 5);
        assert_eq!(down.column(Metric::MemLoads), vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        let up = sig.resampled(20);
        assert_eq!(up.len(), 20);
        assert_eq!(up.rows()[0], row(0.0));
        assert_eq!(up.rows()[19], row(9.0));
    }

    #[test]
    fn resample_preserves_name() {
        let sig = AppSignature::new("kmeans", vec![row(1.0)]);
        assert_eq!(sig.resampled(4).app_name(), "kmeans");
    }

    #[test]
    #[should_panic(expected = "empty signature")]
    fn resample_empty_panics() {
        let sig = AppSignature::new("a", Vec::new());
        let _ = sig.resampled(4);
    }

    #[test]
    fn mean_vec_averages_rows() {
        let sig = AppSignature::new("a", vec![row(2.0), row(6.0)]);
        assert_eq!(sig.mean_vec().get(Metric::MemLoads), 4.0);
    }

    #[test]
    fn empty_signature_reports_empty() {
        let sig = AppSignature::new("a", Vec::new());
        assert!(sig.is_empty());
        assert_eq!(sig.mean_vec(), MetricVec::zero());
    }
}
