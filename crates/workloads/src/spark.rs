//! The 17 Spark/HiBench best-effort analytics workloads.
//!
//! The paper evaluates 17 Spark applications from the HiBench suite with
//! the small dataset (§IV-A). Each entry below is a synthetic profile
//! calibrated to the characterization results:
//!
//! * isolated remote/local penalties follow Fig. 4 — `nweight` and `lr`
//!   suffer ≈2×, `gmm`/`pca` stay below 10 %, suite average ≈20 %;
//! * LLC contention dominates most apps (R6); `nweight`, `sort` and
//!   `kmeans` additionally show stacking interference on CPU/L2 (R7);
//! * base runtimes sit in the 30–120 s range typical of HiBench-small.

use crate::profile::{Sensitivity, WorkloadClass, WorkloadProfile};

/// Names of the 17 HiBench-derived applications, in canonical order.
pub const APP_NAMES: [&str; 17] = [
    "wordcount",
    "sort",
    "terasort",
    "kmeans",
    "bayes",
    "gbt",
    "lr",
    "linear",
    "als",
    "pca",
    "gmm",
    "rf",
    "svd",
    "svm",
    "nweight",
    "pagerank",
    "lda",
];

struct Spec {
    name: &'static str,
    runtime_s: f32,
    cpu: f32,
    l2_mb: f32,
    llc_mb: f32,
    bw_gbps: f32,
    footprint_gb: f32,
    sens: Sensitivity,
    remote_penalty: f32,
    stacking: bool,
}

const fn sens(cpu: f32, l2: f32, llc: f32, mem_bw: f32) -> Sensitivity {
    Sensitivity {
        cpu,
        l2,
        llc,
        mem_bw,
    }
}

/// Calibrated per-application constants (see module docs).
const SPECS: [Spec; 17] = [
    Spec {
        name: "wordcount",
        runtime_s: 45.0,
        cpu: 2.0,
        l2_mb: 1.2,
        llc_mb: 1.5,
        bw_gbps: 0.9,
        footprint_gb: 6.0,
        sens: sens(0.18, 0.08, 0.42, 0.30),
        remote_penalty: 1.15,
        stacking: false,
    },
    Spec {
        name: "sort",
        runtime_s: 55.0,
        cpu: 2.0,
        l2_mb: 1.6,
        llc_mb: 2.5,
        bw_gbps: 1.6,
        footprint_gb: 10.0,
        sens: sens(0.22, 0.18, 0.55, 0.48),
        remote_penalty: 1.35,
        stacking: true,
    },
    Spec {
        name: "terasort",
        runtime_s: 80.0,
        cpu: 2.5,
        l2_mb: 1.5,
        llc_mb: 2.8,
        bw_gbps: 1.8,
        footprint_gb: 12.0,
        sens: sens(0.20, 0.10, 0.52, 0.50),
        remote_penalty: 1.22,
        stacking: false,
    },
    Spec {
        name: "kmeans",
        runtime_s: 70.0,
        cpu: 2.5,
        l2_mb: 1.8,
        llc_mb: 2.2,
        bw_gbps: 1.4,
        footprint_gb: 8.0,
        sens: sens(0.25, 0.20, 0.50, 0.42),
        remote_penalty: 1.30,
        stacking: true,
    },
    Spec {
        name: "bayes",
        runtime_s: 50.0,
        cpu: 2.0,
        l2_mb: 1.0,
        llc_mb: 1.8,
        bw_gbps: 1.0,
        footprint_gb: 7.0,
        sens: sens(0.15, 0.07, 0.45, 0.32),
        remote_penalty: 1.12,
        stacking: false,
    },
    Spec {
        name: "gbt",
        runtime_s: 95.0,
        cpu: 3.0,
        l2_mb: 1.1,
        llc_mb: 1.2,
        bw_gbps: 0.7,
        footprint_gb: 6.0,
        sens: sens(0.28, 0.06, 0.35, 0.22),
        remote_penalty: 1.12,
        stacking: false,
    },
    Spec {
        name: "lr",
        runtime_s: 60.0,
        cpu: 2.5,
        l2_mb: 1.4,
        llc_mb: 3.0,
        bw_gbps: 2.2,
        footprint_gb: 14.0,
        sens: sens(0.20, 0.10, 0.48, 0.62),
        remote_penalty: 1.90,
        stacking: false,
    },
    Spec {
        name: "linear",
        runtime_s: 65.0,
        cpu: 2.5,
        l2_mb: 1.3,
        llc_mb: 2.5,
        bw_gbps: 1.9,
        footprint_gb: 12.0,
        sens: sens(0.18, 0.09, 0.46, 0.55),
        remote_penalty: 1.35,
        stacking: false,
    },
    Spec {
        name: "als",
        runtime_s: 85.0,
        cpu: 2.5,
        l2_mb: 1.2,
        llc_mb: 1.5,
        bw_gbps: 0.8,
        footprint_gb: 7.0,
        sens: sens(0.24, 0.08, 0.38, 0.26),
        remote_penalty: 1.10,
        stacking: false,
    },
    Spec {
        name: "pca",
        runtime_s: 75.0,
        cpu: 2.5,
        l2_mb: 1.0,
        llc_mb: 1.0,
        bw_gbps: 0.6,
        footprint_gb: 5.0,
        sens: sens(0.26, 0.05, 0.30, 0.18),
        remote_penalty: 1.08,
        stacking: false,
    },
    Spec {
        name: "gmm",
        runtime_s: 90.0,
        cpu: 3.0,
        l2_mb: 0.9,
        llc_mb: 0.9,
        bw_gbps: 0.5,
        footprint_gb: 5.0,
        sens: sens(0.27, 0.05, 0.28, 0.15),
        remote_penalty: 1.05,
        stacking: false,
    },
    Spec {
        name: "rf",
        runtime_s: 100.0,
        cpu: 3.0,
        l2_mb: 1.1,
        llc_mb: 1.4,
        bw_gbps: 0.7,
        footprint_gb: 6.0,
        sens: sens(0.26, 0.07, 0.36, 0.20),
        remote_penalty: 1.12,
        stacking: false,
    },
    Spec {
        name: "svd",
        runtime_s: 70.0,
        cpu: 2.5,
        l2_mb: 1.2,
        llc_mb: 2.0,
        bw_gbps: 1.2,
        footprint_gb: 9.0,
        sens: sens(0.20, 0.09, 0.44, 0.38),
        remote_penalty: 1.20,
        stacking: false,
    },
    Spec {
        name: "svm",
        runtime_s: 60.0,
        cpu: 2.5,
        l2_mb: 1.3,
        llc_mb: 2.1,
        bw_gbps: 1.1,
        footprint_gb: 8.0,
        sens: sens(0.21, 0.10, 0.46, 0.34),
        remote_penalty: 1.18,
        stacking: false,
    },
    Spec {
        name: "nweight",
        runtime_s: 110.0,
        cpu: 2.5,
        l2_mb: 2.0,
        llc_mb: 3.5,
        bw_gbps: 2.4,
        footprint_gb: 16.0,
        sens: sens(0.30, 0.24, 0.58, 0.65),
        remote_penalty: 2.00,
        stacking: true,
    },
    Spec {
        name: "pagerank",
        runtime_s: 90.0,
        cpu: 2.2,
        l2_mb: 1.5,
        llc_mb: 2.8,
        bw_gbps: 1.7,
        footprint_gb: 11.0,
        sens: sens(0.19, 0.11, 0.50, 0.45),
        remote_penalty: 1.28,
        stacking: false,
    },
    Spec {
        name: "lda",
        runtime_s: 105.0,
        cpu: 2.5,
        l2_mb: 1.0,
        llc_mb: 1.1,
        bw_gbps: 0.6,
        footprint_gb: 5.0,
        sens: sens(0.25, 0.06, 0.32, 0.17),
        remote_penalty: 1.10,
        stacking: false,
    },
];

fn profile_from(spec: &Spec) -> WorkloadProfile {
    WorkloadProfile::builder(spec.name, WorkloadClass::BestEffort)
        .base_runtime_s(spec.runtime_s)
        .cpu_cores(spec.cpu)
        .l2_mb(spec.l2_mb)
        .llc_mb(spec.llc_mb)
        .mem_bw_gbps(spec.bw_gbps)
        .footprint_gb(spec.footprint_gb)
        .sensitivity(spec.sens)
        .remote_penalty(spec.remote_penalty)
        .stacking(spec.stacking)
        .build()
}

/// All 17 BE application profiles, in canonical order.
///
/// # Examples
///
/// ```
/// let suite = adrias_workloads::spark::suite();
/// let mean_penalty: f32 =
///     suite.iter().map(|w| w.remote_penalty()).sum::<f32>() / suite.len() as f32;
/// // Suite-average remote degradation ≈ 20 % (Fig. 4).
/// assert!((1.1..1.4).contains(&mean_penalty));
/// ```
pub fn suite() -> Vec<WorkloadProfile> {
    SPECS.iter().map(profile_from).collect()
}

/// The profile for one application by name, if it exists.
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    SPECS
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .map(profile_from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_seventeen_apps() {
        let suite = suite();
        assert_eq!(suite.len(), 17);
        for name in APP_NAMES {
            assert!(suite.iter().any(|w| w.name() == name), "missing app {name}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SPECS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn remote_penalties_match_fig4_extremes() {
        assert!(by_name("nweight").unwrap().remote_penalty() >= 1.9);
        assert!(by_name("lr").unwrap().remote_penalty() >= 1.8);
        assert!(by_name("gmm").unwrap().remote_penalty() <= 1.10);
        assert!(by_name("pca").unwrap().remote_penalty() <= 1.10);
    }

    #[test]
    fn suite_average_penalty_is_about_twenty_percent() {
        let suite = suite();
        let mean: f32 = suite.iter().map(|w| w.remote_penalty()).sum::<f32>() / suite.len() as f32;
        assert!(
            (1.12..=1.35).contains(&mean),
            "suite mean penalty {mean} outside the 20%-ish band"
        );
    }

    #[test]
    fn stacking_apps_match_r7() {
        for name in ["nweight", "sort", "kmeans"] {
            assert!(by_name(name).unwrap().stacking(), "{name} should stack");
        }
        assert!(!by_name("gmm").unwrap().stacking());
    }

    #[test]
    fn llc_sensitivity_dominates_for_most_apps() {
        let suite = suite();
        let llc_dominant = suite
            .iter()
            .filter(|w| {
                let s = w.sensitivity();
                s.llc >= s.cpu && s.llc >= s.l2
            })
            .count();
        assert!(llc_dominant >= 12, "only {llc_dominant} LLC-dominant apps");
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(by_name("NWEIGHT").is_some());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn runtimes_are_hibench_small_scale() {
        for w in suite() {
            let rt = w.base_runtime_s();
            assert!((30.0..=120.0).contains(&rt), "{}: {rt}", w.name());
        }
    }
}
