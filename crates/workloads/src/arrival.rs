//! Application arrival processes for scenario generation.
//!
//! The paper's trace-collection scenarios spawn a new application after a
//! random interval drawn uniformly from `{5, X}` seconds, with `X`
//! ranging from 20 (heavily congested) to 60 (relaxed) — §V-B1.

use adrias_core::rng::Rng;

/// A uniform-interval arrival process.
///
/// # Examples
///
/// ```
/// use adrias_workloads::ArrivalProcess;
/// use adrias_core::rng::SeedableRng;
///
/// let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(3);
/// let arrivals = ArrivalProcess::new(5.0, 40.0);
/// let times = arrivals.times_until(300.0, &mut rng);
/// assert!(!times.is_empty());
/// assert!(times.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalProcess {
    min_interval_s: f64,
    max_interval_s: f64,
}

impl ArrivalProcess {
    /// Creates a process with inter-arrival times uniform in
    /// `[min_interval_s, max_interval_s]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not `0 < min <= max`.
    pub fn new(min_interval_s: f64, max_interval_s: f64) -> Self {
        assert!(
            min_interval_s > 0.0 && min_interval_s <= max_interval_s,
            "invalid arrival bounds [{min_interval_s}, {max_interval_s}]"
        );
        Self {
            min_interval_s,
            max_interval_s,
        }
    }

    /// The paper's `{5, max}` convention.
    pub fn paper(max_interval_s: f64) -> Self {
        Self::new(5.0, max_interval_s)
    }

    /// Lower inter-arrival bound, seconds.
    pub fn min_interval_s(&self) -> f64 {
        self.min_interval_s
    }

    /// Upper inter-arrival bound, seconds.
    pub fn max_interval_s(&self) -> f64 {
        self.max_interval_s
    }

    /// Samples the next inter-arrival gap.
    pub fn next_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.min_interval_s..=self.max_interval_s)
    }

    /// All arrival instants strictly before `horizon_s`, starting from an
    /// initial gap at time zero.
    pub fn times_until<R: Rng + ?Sized>(&self, horizon_s: f64, rng: &mut R) -> Vec<f64> {
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += self.next_interval(rng);
            if t >= horizon_s {
                return out;
            }
            out.push(t);
        }
    }

    /// Expected number of arrivals per hour.
    pub fn expected_hourly_rate(&self) -> f64 {
        3600.0 / ((self.min_interval_s + self.max_interval_s) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    #[test]
    fn intervals_respect_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let p = ArrivalProcess::paper(20.0);
        for _ in 0..1000 {
            let dt = p.next_interval(&mut rng);
            assert!((5.0..=20.0).contains(&dt));
        }
    }

    #[test]
    fn heavy_scenarios_spawn_more_apps() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let heavy = ArrivalProcess::paper(20.0).times_until(3600.0, &mut rng);
        let relaxed = ArrivalProcess::paper(60.0).times_until(3600.0, &mut rng);
        assert!(
            heavy.len() > relaxed.len(),
            "heavy {} <= relaxed {}",
            heavy.len(),
            relaxed.len()
        );
    }

    #[test]
    fn hourly_rate_matches_mean_interval() {
        let p = ArrivalProcess::paper(40.0);
        // Mean gap 22.5 s → 160 arrivals/hour.
        assert!((p.expected_hourly_rate() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn times_are_sorted_and_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let times = ArrivalProcess::paper(30.0).times_until(600.0, &mut rng);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times.iter().all(|&t| t < 600.0));
    }

    #[test]
    #[should_panic(expected = "invalid arrival bounds")]
    fn rejects_inverted_bounds() {
        let _ = ArrivalProcess::new(10.0, 5.0);
    }
}
