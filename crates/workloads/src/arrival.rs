//! Application arrival processes for scenario generation.
//!
//! The paper's trace-collection scenarios spawn a new application after a
//! random interval drawn uniformly from `{5, X}` seconds, with `X`
//! ranging from 20 (heavily congested) to 60 (relaxed) — §V-B1. That
//! uniform process ([`ArrivalProcess`]) is what the committed corpora
//! replay.
//!
//! For production-traffic evaluation the module additionally provides a
//! family of *streaming* generators behind the [`ArrivalSource`] trait,
//! consumed one instant at a time by the event-heap engine so a
//! million-arrival run never materialises its schedule:
//!
//! * [`UniformSource`] — the paper's uniform-gap process, streamed;
//! * [`PoissonSource`] — homogeneous Poisson (exponential gaps, CV ≈ 1);
//! * [`DiurnalSource`] — rate-modulated Poisson following a sinusoidal
//!   day/night profile, sampled by Lewis–Shedler thinning;
//! * [`MmppSource`] — bursty 2-state Markov-modulated Poisson (CV > 1);
//! * [`TraceSource`] — replay of a recorded arrival-instant trace;
//! * [`ClosedLoopSource`] — N think-time clients whose next submission
//!   depends on completion feedback ([`ArrivalSource::on_complete`]).
//!
//! Every generator owns its own seeded PRNG stream, so its emitted
//! instants are bitwise reproducible from the seed alone.

use adrias_core::rng::{Rng, RngCore, SeedableRng, Xoshiro256pp};

/// A uniform-interval arrival process.
///
/// # Examples
///
/// ```
/// use adrias_workloads::ArrivalProcess;
/// use adrias_core::rng::SeedableRng;
///
/// let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(3);
/// let arrivals = ArrivalProcess::new(5.0, 40.0);
/// let times = arrivals.times_until(300.0, &mut rng);
/// assert!(!times.is_empty());
/// assert!(times.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalProcess {
    min_interval_s: f64,
    max_interval_s: f64,
}

impl ArrivalProcess {
    /// Creates a process with inter-arrival times uniform in
    /// `[min_interval_s, max_interval_s]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not `0 < min <= max`.
    pub fn new(min_interval_s: f64, max_interval_s: f64) -> Self {
        assert!(
            min_interval_s > 0.0 && min_interval_s <= max_interval_s,
            "invalid arrival bounds [{min_interval_s}, {max_interval_s}]"
        );
        Self {
            min_interval_s,
            max_interval_s,
        }
    }

    /// The paper's `{5, max}` convention.
    pub fn paper(max_interval_s: f64) -> Self {
        Self::new(5.0, max_interval_s)
    }

    /// Lower inter-arrival bound, seconds.
    pub fn min_interval_s(&self) -> f64 {
        self.min_interval_s
    }

    /// Upper inter-arrival bound, seconds.
    pub fn max_interval_s(&self) -> f64 {
        self.max_interval_s
    }

    /// Samples the next inter-arrival gap.
    pub fn next_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.min_interval_s..=self.max_interval_s)
    }

    /// All arrival instants in the half-open horizon `[0, horizon_s)`,
    /// starting from an initial gap at time zero.
    ///
    /// The horizon boundary is exclusive: an instant that lands exactly
    /// on `horizon_s` is *not* emitted, so `times_until(h, _)` composed
    /// with `times_until` from `h` onward never double-counts a
    /// boundary arrival.
    pub fn times_until<R: Rng + ?Sized>(&self, horizon_s: f64, rng: &mut R) -> Vec<f64> {
        let mut t = 0.0;
        let mut out = Vec::new();
        loop {
            t += self.next_interval(rng);
            // Half-open [0, horizon): `>=`, never `>`, so a gap sequence
            // summing exactly to the horizon excludes the boundary hit.
            if t >= horizon_s {
                return out;
            }
            out.push(t);
        }
    }

    /// Streams this process as an [`ArrivalSource`] over `[0, horizon_s)`
    /// with its own PRNG seeded from `seed`.
    pub fn source(&self, horizon_s: f64, seed: u64) -> UniformSource {
        UniformSource {
            process: *self,
            horizon_s,
            t: 0.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
            done: false,
        }
    }

    /// Expected number of arrivals per hour.
    pub fn expected_hourly_rate(&self) -> f64 {
        3600.0 / ((self.min_interval_s + self.max_interval_s) / 2.0)
    }
}

/// A stream of application arrival instants, consumed one at a time by
/// the event-heap engine.
///
/// Open-loop sources (Poisson, diurnal, MMPP, uniform, trace replay)
/// emit a fixed instant sequence independent of the system; the
/// closed-loop source reacts to completion feedback. Implementations
/// must be bitwise deterministic: the exact emitted sequence is a pure
/// function of the constructor arguments (seed included) and the
/// sequence of [`ArrivalSource::on_complete`] calls.
pub trait ArrivalSource {
    /// The next arrival instant, seconds. `None` means nothing is
    /// available *right now* — which is final iff
    /// [`ArrivalSource::exhausted`] also reports `true` (a closed-loop
    /// source with every client in flight returns `None` transiently).
    fn next_time(&mut self) -> Option<f64>;

    /// Completion feedback: an application spawned by this source
    /// finished at `finished_s`. Returns `true` when the completion made
    /// a new arrival available (closed-loop think-time clients); open-
    /// loop sources ignore the call and return `false`.
    fn on_complete(&mut self, finished_s: f64) -> bool {
        let _ = finished_s;
        false
    }

    /// `true` once no further arrival can ever be produced.
    fn exhausted(&self) -> bool;

    /// Short static label naming the generator family, recorded on the
    /// engine's run span so exports say where traffic came from.
    fn label(&self) -> &'static str {
        "generated"
    }
}

/// Draws an exponential gap with the given rate from `rng`.
///
/// `u` is uniform in `[0, 1)`, so `1 - u` is in `(0, 1]` and the gap is
/// finite and non-negative.
fn exp_gap<R: RngCore + ?Sized>(rng: &mut R, rate_per_s: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate_per_s
}

/// The paper's uniform-gap process streamed over `[0, horizon_s)`.
/// Built by [`ArrivalProcess::source`].
#[derive(Debug, Clone)]
pub struct UniformSource {
    process: ArrivalProcess,
    horizon_s: f64,
    t: f64,
    rng: Xoshiro256pp,
    done: bool,
}

impl ArrivalSource for UniformSource {
    fn next_time(&mut self) -> Option<f64> {
        if self.done {
            return None;
        }
        self.t += self.process.next_interval(&mut self.rng);
        if self.t >= self.horizon_s {
            self.done = true;
            return None;
        }
        Some(self.t)
    }

    fn exhausted(&self) -> bool {
        self.done
    }

    fn label(&self) -> &'static str {
        "uniform"
    }
}

/// Homogeneous Poisson arrivals at `rate_per_s` over `[0, horizon_s)`:
/// i.i.d. exponential gaps, so the gap mean is `1/λ` and the gap
/// coefficient of variation is 1.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    rate_per_s: f64,
    horizon_s: f64,
    t: f64,
    rng: Xoshiro256pp,
    done: bool,
}

impl PoissonSource {
    /// Creates the source.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` is not strictly positive or `horizon_s` is
    /// negative.
    pub fn new(rate_per_s: f64, horizon_s: f64, seed: u64) -> Self {
        assert!(rate_per_s > 0.0, "arrival rate must be positive");
        assert!(horizon_s >= 0.0, "horizon must be non-negative");
        Self {
            rate_per_s,
            horizon_s,
            t: 0.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
            done: false,
        }
    }

    /// The configured rate, arrivals per second.
    pub fn rate_per_s(&self) -> f64 {
        self.rate_per_s
    }
}

impl ArrivalSource for PoissonSource {
    fn next_time(&mut self) -> Option<f64> {
        if self.done {
            return None;
        }
        self.t += exp_gap(&mut self.rng, self.rate_per_s);
        if self.t >= self.horizon_s {
            self.done = true;
            return None;
        }
        Some(self.t)
    }

    fn exhausted(&self) -> bool {
        self.done
    }

    fn label(&self) -> &'static str {
        "poisson"
    }
}

/// Diurnal rate-modulated Poisson arrivals: the instantaneous rate is
/// `λ(t) = base · (1 + amplitude · sin(2πt / period))`, sampled exactly
/// by Lewis–Shedler thinning against the peak rate
/// `λ_max = base · (1 + amplitude)`.
#[derive(Debug, Clone)]
pub struct DiurnalSource {
    base_rate_per_s: f64,
    amplitude: f64,
    period_s: f64,
    horizon_s: f64,
    t: f64,
    rng: Xoshiro256pp,
    done: bool,
}

impl DiurnalSource {
    /// Creates the source.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate_per_s` or `period_s` is not strictly
    /// positive, or `amplitude` is outside `[0, 1]`.
    pub fn new(
        base_rate_per_s: f64,
        amplitude: f64,
        period_s: f64,
        horizon_s: f64,
        seed: u64,
    ) -> Self {
        assert!(base_rate_per_s > 0.0, "base rate must be positive");
        assert!((0.0..=1.0).contains(&amplitude), "amplitude outside [0,1]");
        assert!(period_s > 0.0, "period must be positive");
        Self {
            base_rate_per_s,
            amplitude,
            period_s,
            horizon_s,
            t: 0.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
            done: false,
        }
    }

    /// The instantaneous rate at `t_s`, arrivals per second.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let phase = core::f64::consts::TAU * t_s / self.period_s;
        self.base_rate_per_s * (1.0 + self.amplitude * phase.sin())
    }
}

impl ArrivalSource for DiurnalSource {
    fn next_time(&mut self) -> Option<f64> {
        if self.done {
            return None;
        }
        let peak = self.base_rate_per_s * (1.0 + self.amplitude);
        loop {
            // Candidate from the homogeneous peak-rate process; accept
            // with probability λ(t)/λ_max (thinning).
            self.t += exp_gap(&mut self.rng, peak);
            if self.t >= self.horizon_s {
                self.done = true;
                return None;
            }
            if self.rng.gen_bool(self.rate_at(self.t) / peak) {
                return Some(self.t);
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.done
    }

    fn label(&self) -> &'static str {
        "diurnal"
    }
}

/// Bursty 2-state Markov-modulated Poisson process: arrivals at
/// `rates[state]` while the hidden state holds, with exponentially
/// distributed sojourns of mean `mean_sojourn_s[state]`. Mixing a slow
/// and a fast state makes the gap coefficient of variation exceed 1 —
/// the burstiness knob open Poisson arrivals lack.
#[derive(Debug, Clone)]
pub struct MmppSource {
    rates: [f64; 2],
    switch_rate: [f64; 2],
    state: usize,
    horizon_s: f64,
    t: f64,
    rng: Xoshiro256pp,
    done: bool,
}

impl MmppSource {
    /// Creates the source starting in state 0.
    ///
    /// # Panics
    ///
    /// Panics if any rate or mean sojourn is not strictly positive.
    pub fn new(rates: [f64; 2], mean_sojourn_s: [f64; 2], horizon_s: f64, seed: u64) -> Self {
        assert!(
            rates.iter().all(|r| *r > 0.0),
            "MMPP state rates must be positive"
        );
        assert!(
            mean_sojourn_s.iter().all(|s| *s > 0.0),
            "MMPP sojourns must be positive"
        );
        Self {
            rates,
            switch_rate: [1.0 / mean_sojourn_s[0], 1.0 / mean_sojourn_s[1]],
            state: 0,
            horizon_s,
            t: 0.0,
            rng: Xoshiro256pp::seed_from_u64(seed),
            done: false,
        }
    }
}

impl ArrivalSource for MmppSource {
    fn next_time(&mut self) -> Option<f64> {
        if self.done {
            return None;
        }
        loop {
            // Competing exponentials: next arrival in the current state
            // vs the state switch. Memorylessness makes the redraw after
            // a switch exact.
            let arrival_in = exp_gap(&mut self.rng, self.rates[self.state]);
            let switch_in = exp_gap(&mut self.rng, self.switch_rate[self.state]);
            if arrival_in <= switch_in {
                self.t += arrival_in;
                if self.t >= self.horizon_s {
                    self.done = true;
                    return None;
                }
                return Some(self.t);
            }
            self.t += switch_in;
            if self.t >= self.horizon_s {
                self.done = true;
                return None;
            }
            self.state = 1 - self.state;
        }
    }

    fn exhausted(&self) -> bool {
        self.done
    }

    fn label(&self) -> &'static str {
        "mmpp"
    }
}

/// Replays a recorded arrival-instant trace (e.g. the arrivals observed
/// in an earlier engine run — see `adrias_scenarios::traces`).
#[derive(Debug, Clone)]
pub struct TraceSource {
    times: Vec<f64>,
    next: usize,
}

impl TraceSource {
    /// Creates a replay source over `times`.
    ///
    /// # Panics
    ///
    /// Panics if `times` is not sorted non-decreasingly.
    pub fn new(times: Vec<f64>) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace times must be sorted"
        );
        Self { times, next: 0 }
    }

    /// Number of instants left to replay.
    pub fn remaining(&self) -> usize {
        self.times.len() - self.next
    }
}

impl ArrivalSource for TraceSource {
    fn next_time(&mut self) -> Option<f64> {
        let t = *self.times.get(self.next)?;
        self.next += 1;
        Some(t)
    }

    fn exhausted(&self) -> bool {
        self.next == self.times.len()
    }

    fn label(&self) -> &'static str {
        "trace"
    }
}

/// A closed-loop think-time arrival process: `clients` independent
/// clients each submit one application, wait for its completion
/// (reported via [`ArrivalSource::on_complete`]), think for a uniform
/// `[think_min_s, think_max_s]` interval, and submit again — so at most
/// `clients` submissions are ever in flight, the classic closed-loop
/// concurrency invariant. Clients whose next submission would land at
/// or beyond `horizon_s` retire.
#[derive(Debug, Clone)]
pub struct ClosedLoopSource {
    clients: usize,
    think_min_s: f64,
    think_max_s: f64,
    horizon_s: f64,
    /// Pending submission instants, sorted descending so the earliest
    /// pops from the back.
    ready: Vec<f64>,
    in_flight: usize,
    issued: u64,
    rng: Xoshiro256pp,
}

impl ClosedLoopSource {
    /// Creates the source; every client starts with an initial think
    /// interval, so first submissions stagger over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero or the think bounds are not
    /// `0 <= min <= max`.
    pub fn new(
        clients: usize,
        think_min_s: f64,
        think_max_s: f64,
        horizon_s: f64,
        seed: u64,
    ) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(
            think_min_s >= 0.0 && think_min_s <= think_max_s,
            "invalid think bounds [{think_min_s}, {think_max_s}]"
        );
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut ready: Vec<f64> = (0..clients)
            .map(|_| rng.gen_range(think_min_s..=think_max_s))
            .filter(|t| *t < horizon_s)
            .collect();
        ready.sort_by(|a, b| b.total_cmp(a));
        Self {
            clients,
            think_min_s,
            think_max_s,
            horizon_s,
            ready,
            in_flight: 0,
            issued: 0,
            rng,
        }
    }

    /// The configured client count — the hard concurrency ceiling.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Submissions currently awaiting completion feedback.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total submissions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl ArrivalSource for ClosedLoopSource {
    fn next_time(&mut self) -> Option<f64> {
        let t = self.ready.pop()?;
        self.in_flight += 1;
        self.issued += 1;
        Some(t)
    }

    fn on_complete(&mut self, finished_s: f64) -> bool {
        if self.in_flight == 0 {
            return false;
        }
        self.in_flight -= 1;
        let next = finished_s + self.rng.gen_range(self.think_min_s..=self.think_max_s);
        if next >= self.horizon_s {
            return false;
        }
        // Keep the descending order so the earliest instant stays at the
        // back; client counts are small, so a linear insert is fine.
        let pos = self
            .ready
            .iter()
            .position(|r| *r < next)
            .unwrap_or(self.ready.len());
        self.ready.insert(pos, next);
        true
    }

    fn exhausted(&self) -> bool {
        self.ready.is_empty() && self.in_flight == 0
    }

    fn label(&self) -> &'static str {
        "closed_loop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    #[test]
    fn intervals_respect_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let p = ArrivalProcess::paper(20.0);
        for _ in 0..1000 {
            let dt = p.next_interval(&mut rng);
            assert!((5.0..=20.0).contains(&dt));
        }
    }

    #[test]
    fn heavy_scenarios_spawn_more_apps() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let heavy = ArrivalProcess::paper(20.0).times_until(3600.0, &mut rng);
        let relaxed = ArrivalProcess::paper(60.0).times_until(3600.0, &mut rng);
        assert!(
            heavy.len() > relaxed.len(),
            "heavy {} <= relaxed {}",
            heavy.len(),
            relaxed.len()
        );
    }

    #[test]
    fn hourly_rate_matches_mean_interval() {
        let p = ArrivalProcess::paper(40.0);
        // Mean gap 22.5 s → 160 arrivals/hour.
        assert!((p.expected_hourly_rate() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn times_are_sorted_and_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let times = ArrivalProcess::paper(30.0).times_until(600.0, &mut rng);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!(times.iter().all(|&t| t < 600.0));
    }

    /// The horizon is half-open: a degenerate process whose gaps are
    /// exactly 5 s lands an arrival precisely on a multiple-of-5
    /// horizon, and that boundary instant must be excluded — `[0, 15)`
    /// keeps 5 and 10 only, however the gap arithmetic rounds.
    #[test]
    fn horizon_boundary_is_excluded() {
        let p = ArrivalProcess::new(5.0, 5.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let times = p.times_until(15.0, &mut rng);
        assert_eq!(times, vec![5.0, 10.0]);
        // The streaming form agrees with the batch form.
        let mut src = p.source(15.0, 77);
        let mut streamed = Vec::new();
        while let Some(t) = src.next_time() {
            streamed.push(t);
        }
        assert!(src.exhausted());
        assert_eq!(streamed, vec![5.0, 10.0]);
        // Zero-width horizon yields nothing at all.
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert!(p.times_until(0.0, &mut rng).is_empty());
        assert!(
            p.times_until(5.0, &mut rng).is_empty(),
            "first gap == horizon"
        );
    }

    #[test]
    #[should_panic(expected = "invalid arrival bounds")]
    fn rejects_inverted_bounds() {
        let _ = ArrivalProcess::new(10.0, 5.0);
    }

    fn collect<S: ArrivalSource>(src: &mut S) -> Vec<f64> {
        let mut out = Vec::new();
        while let Some(t) = src.next_time() {
            out.push(t);
        }
        out
    }

    #[test]
    fn poisson_times_are_sorted_seeded_and_bounded() {
        let mut a = PoissonSource::new(0.5, 2000.0, 42);
        let mut b = PoissonSource::new(0.5, 2000.0, 42);
        let ta = collect(&mut a);
        let tb = collect(&mut b);
        assert_eq!(ta.len(), tb.len());
        assert!(ta.iter().zip(&tb).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(ta.windows(2).all(|w| w[0] <= w[1]));
        assert!(ta.iter().all(|t| *t < 2000.0));
        assert!(a.exhausted());
        // Roughly rate·horizon arrivals.
        assert!((ta.len() as f64 - 1000.0).abs() < 150.0, "got {}", ta.len());
    }

    #[test]
    fn mmpp_switches_states_and_stays_bounded() {
        let mut src = MmppSource::new([0.2, 8.0], [50.0, 50.0], 4000.0, 3);
        let times = collect(&mut src);
        assert!(src.exhausted());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|t| *t < 4000.0));
        // Far more than the slow state alone (0.2/s · 4000 s = 800 would
        // be the all-fast bound; all-slow is 800·0.025). A mixed run
        // sits in between.
        assert!(times.len() > 1000, "only {} arrivals", times.len());
    }

    #[test]
    fn trace_source_replays_exactly() {
        let mut src = TraceSource::new(vec![1.0, 4.0, 4.0, 9.5]);
        assert_eq!(src.remaining(), 4);
        assert_eq!(collect(&mut src), vec![1.0, 4.0, 4.0, 9.5]);
        assert!(src.exhausted());
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "trace times must be sorted")]
    fn trace_source_rejects_unsorted_times() {
        let _ = TraceSource::new(vec![5.0, 1.0]);
    }

    #[test]
    fn every_source_reports_its_family_label() {
        assert_eq!(
            ArrivalProcess::paper(20.0).source(10.0, 1).label(),
            "uniform"
        );
        assert_eq!(PoissonSource::new(0.5, 10.0, 1).label(), "poisson");
        assert_eq!(
            DiurnalSource::new(0.5, 0.5, 60.0, 10.0, 1).label(),
            "diurnal"
        );
        assert_eq!(
            MmppSource::new([0.2, 8.0], [50.0, 50.0], 10.0, 1).label(),
            "mmpp"
        );
        assert_eq!(TraceSource::new(vec![1.0]).label(), "trace");
        assert_eq!(
            ClosedLoopSource::new(1, 1.0, 2.0, 10.0, 1).label(),
            "closed_loop"
        );
    }

    #[test]
    fn closed_loop_caps_concurrency_at_client_count() {
        let mut src = ClosedLoopSource::new(4, 1.0, 3.0, 500.0, 9);
        let mut in_flight = Vec::new();
        // Drive the loop: each submission "runs" for 7 s then completes.
        while let Some(t) = src.next_time() {
            in_flight.push(t + 7.0);
            assert!(src.in_flight() <= src.clients());
            if src.in_flight() == src.clients() {
                in_flight.sort_by(|a, b| b.total_cmp(a));
                let done = in_flight.pop().unwrap();
                assert!(src.on_complete(done) || done + 1.0 >= 500.0);
            }
        }
        while let Some(done) = in_flight.pop() {
            src.on_complete(done);
        }
        assert!(src.exhausted());
        assert!(src.issued() > 50, "only {} submissions", src.issued());
    }
}
