//! Workload models for the Adrias reproduction.
//!
//! The paper evaluates three families of in-memory cloud workloads on the
//! ThymesisFlow testbed (§IV-A):
//!
//! * **Best-effort (BE)** — 17 Spark analytics jobs from the HiBench
//!   suite, characterized by total execution time ([`spark`]);
//! * **Latency-critical (LC)** — Redis and Memcached serving a
//!   memtier-style closed-loop load, characterized by 99th/99.9th
//!   percentile response time ([`keyvalue`]);
//! * **Interference micro-benchmarks** — iBench-style resource trashers
//!   targeting CPU, L2, LLC and memory bandwidth ([`ibench`]).
//!
//! Since the real applications cannot run here, each workload is a
//! [`WorkloadProfile`]: a set of resource demands and interference
//! sensitivities calibrated to the behaviour the paper reports
//! (Figs. 3–5, 9–10). The testbed simulator in `adrias-sim` consumes
//! these profiles to produce performance counters and per-application
//! progress.
//!
//! # Examples
//!
//! ```
//! use adrias_workloads::{spark, WorkloadClass};
//!
//! let suite = spark::suite();
//! assert_eq!(suite.len(), 17);
//! assert!(suite.iter().all(|w| w.class() == WorkloadClass::BestEffort));
//! // nweight suffers the worst remote-memory penalty (≈2×, Fig. 4).
//! let nweight = spark::by_name("nweight").unwrap();
//! assert!(nweight.remote_penalty() >= 1.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod catalog;
pub mod ibench;
pub mod keyvalue;
pub mod profile;
pub mod signature;
pub mod spark;

pub use arrival::{
    ArrivalProcess, ArrivalSource, ClosedLoopSource, DiurnalSource, MmppSource, PoissonSource,
    TraceSource, UniformSource,
};
pub use catalog::WorkloadCatalog;
pub use ibench::IbenchKind;
pub use keyvalue::{LatencyEnv, LoadSpec};
pub use profile::{MemoryMode, ResourceDemand, Sensitivity, WorkloadClass, WorkloadProfile};
pub use signature::AppSignature;
