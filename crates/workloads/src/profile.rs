//! Workload profiles: resource demands and interference sensitivities.

use std::fmt;

/// Memory allocation mode decided by the orchestrator for one deployment.
///
/// ThymesisFlow exposes the lender's memory as a CPU-less NUMA node on the
/// borrower; an application is bound to either local DRAM or that remote
/// node via cgroups (§III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryMode {
    /// Local DRAM on the borrower node.
    #[default]
    Local,
    /// Disaggregated (remote) memory reached over the ThymesisFlow link.
    Remote,
}

impl MemoryMode {
    /// Both modes, in `[Local, Remote]` order.
    pub const BOTH: [MemoryMode; 2] = [MemoryMode::Local, MemoryMode::Remote];

    /// The opposite mode.
    pub fn other(self) -> MemoryMode {
        match self {
            MemoryMode::Local => MemoryMode::Remote,
            MemoryMode::Remote => MemoryMode::Local,
        }
    }

    /// One-hot encoding `[local, remote]` used as model input.
    pub fn one_hot(self) -> [f32; 2] {
        match self {
            MemoryMode::Local => [1.0, 0.0],
            MemoryMode::Remote => [0.0, 1.0],
        }
    }
}

impl fmt::Display for MemoryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryMode::Local => f.write_str("local"),
            MemoryMode::Remote => f.write_str("remote"),
        }
    }
}

/// Classification of a workload, mirroring §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Throughput-oriented batch analytics (Spark/HiBench).
    BestEffort,
    /// Tail-latency-bound services (Redis, Memcached).
    LatencyCritical,
    /// iBench-style interference micro-benchmark.
    Interference,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::BestEffort => f.write_str("BE"),
            WorkloadClass::LatencyCritical => f.write_str("LC"),
            WorkloadClass::Interference => f.write_str("iBench"),
        }
    }
}

/// Steady-state resource demand of one running workload instance.
///
/// The simulator sums demands across resident workloads and compares the
/// totals against node capacities to derive contention pressures.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceDemand {
    /// Logical cores kept busy.
    pub cpu_cores: f32,
    /// L2 working-set pressure, in MiB across used cores.
    pub l2_mb: f32,
    /// Last-level-cache working set, in MiB.
    pub llc_mb: f32,
    /// Memory bandwidth consumed, in Gbit/s.
    pub mem_bw_gbps: f32,
    /// Resident memory footprint, in GiB.
    pub footprint_gb: f32,
}

/// How strongly a workload's performance reacts to contention on each
/// shared resource (dimensionless weights; 0 = insensitive).
///
/// Calibrated per application from the heatmap of Fig. 5: LLC contention
/// dominates for most Spark jobs (R6), in-memory stores react mostly to
/// memory-bandwidth contention, and a few applications additionally
/// exhibit *stacking* effects on CPU/L2 (R7).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sensitivity {
    /// Slowdown per unit of CPU over-subscription.
    pub cpu: f32,
    /// Slowdown per unit of L2 pressure.
    pub l2: f32,
    /// Slowdown per unit of LLC pressure.
    pub llc: f32,
    /// Slowdown per unit of memory-bandwidth pressure.
    pub mem_bw: f32,
}

/// A complete description of one deployable workload.
///
/// Profiles are immutable after construction; build them with
/// [`WorkloadProfile::builder`].
///
/// # Examples
///
/// ```
/// use adrias_workloads::{WorkloadClass, WorkloadProfile};
///
/// let w = WorkloadProfile::builder("toy", WorkloadClass::BestEffort)
///     .base_runtime_s(60.0)
///     .remote_penalty(1.3)
///     .cpu_cores(4.0)
///     .llc_mb(4.0)
///     .mem_bw_gbps(1.0)
///     .build();
/// assert_eq!(w.name(), "toy");
/// assert_eq!(w.demand().cpu_cores, 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    name: String,
    class: WorkloadClass,
    demand: ResourceDemand,
    sensitivity: Sensitivity,
    base_runtime_s: f32,
    base_p99_ms: f32,
    remote_penalty: f32,
    stacking: bool,
}

impl WorkloadProfile {
    /// Starts building a profile for `name` of the given `class`.
    pub fn builder(name: impl Into<String>, class: WorkloadClass) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                class,
                demand: ResourceDemand::default(),
                sensitivity: Sensitivity::default(),
                base_runtime_s: 60.0,
                base_p99_ms: 1.0,
                remote_penalty: 1.0,
                stacking: false,
            },
        }
    }

    /// Unique workload name (e.g. `nweight`, `redis`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workload class (BE / LC / interference).
    pub fn class(&self) -> WorkloadClass {
        self.class
    }

    /// Steady-state resource demand.
    pub fn demand(&self) -> &ResourceDemand {
        &self.demand
    }

    /// Interference sensitivities.
    pub fn sensitivity(&self) -> &Sensitivity {
        &self.sensitivity
    }

    /// Execution time in isolation on local DRAM, seconds (BE apps).
    pub fn base_runtime_s(&self) -> f32 {
        self.base_runtime_s
    }

    /// 99th-percentile response time in isolation on local DRAM,
    /// milliseconds (LC apps).
    pub fn base_p99_ms(&self) -> f32 {
        self.base_p99_ms
    }

    /// Isolated remote/local slowdown ratio (≥ 1), per Fig. 4.
    pub fn remote_penalty(&self) -> f32 {
        self.remote_penalty
    }

    /// Whether the app shows *stacking interference* (R7): contention on
    /// low levels of the hierarchy (CPU, L2) widens the local-vs-remote
    /// gap instead of affecting both modes equally.
    pub fn stacking(&self) -> bool {
        self.stacking
    }

    /// Whether this is a latency-critical service.
    pub fn is_latency_critical(&self) -> bool {
        self.class == WorkloadClass::LatencyCritical
    }

    /// Whether this is a best-effort batch job.
    pub fn is_best_effort(&self) -> bool {
        self.class == WorkloadClass::BestEffort
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.class)
    }
}

/// Builder for [`WorkloadProfile`] (see `C-BUILDER`).
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    /// Sets logical-core demand.
    pub fn cpu_cores(mut self, v: f32) -> Self {
        self.profile.demand.cpu_cores = v;
        self
    }

    /// Sets L2 working-set demand (MiB).
    pub fn l2_mb(mut self, v: f32) -> Self {
        self.profile.demand.l2_mb = v;
        self
    }

    /// Sets LLC working-set demand (MiB).
    pub fn llc_mb(mut self, v: f32) -> Self {
        self.profile.demand.llc_mb = v;
        self
    }

    /// Sets memory-bandwidth demand (Gbit/s).
    pub fn mem_bw_gbps(mut self, v: f32) -> Self {
        self.profile.demand.mem_bw_gbps = v;
        self
    }

    /// Sets resident footprint (GiB).
    pub fn footprint_gb(mut self, v: f32) -> Self {
        self.profile.demand.footprint_gb = v;
        self
    }

    /// Sets interference sensitivities.
    pub fn sensitivity(mut self, s: Sensitivity) -> Self {
        self.profile.sensitivity = s;
        self
    }

    /// Sets the isolated local-DRAM runtime (seconds, BE).
    pub fn base_runtime_s(mut self, v: f32) -> Self {
        self.profile.base_runtime_s = v;
        self
    }

    /// Sets the isolated local-DRAM p99 (milliseconds, LC).
    pub fn base_p99_ms(mut self, v: f32) -> Self {
        self.profile.base_p99_ms = v;
        self
    }

    /// Sets the isolated remote/local slowdown ratio.
    ///
    /// # Panics
    ///
    /// Panics (at [`build`](Self::build)) if the ratio is below 1.
    pub fn remote_penalty(mut self, v: f32) -> Self {
        self.profile.remote_penalty = v;
        self
    }

    /// Marks the app as exhibiting stacking interference (R7).
    pub fn stacking(mut self, v: bool) -> Self {
        self.profile.stacking = v;
        self
    }

    /// Finalizes the profile.
    ///
    /// # Panics
    ///
    /// Panics if the remote penalty is below 1 or any demand is negative.
    pub fn build(self) -> WorkloadProfile {
        let p = self.profile;
        assert!(
            p.remote_penalty >= 1.0,
            "remote penalty must be >= 1, got {} for {}",
            p.remote_penalty,
            p.name
        );
        assert!(
            p.demand.cpu_cores >= 0.0
                && p.demand.l2_mb >= 0.0
                && p.demand.llc_mb >= 0.0
                && p.demand.mem_bw_gbps >= 0.0
                && p.demand.footprint_gb >= 0.0,
            "demands must be non-negative for {}",
            p.name
        );
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_other_flips() {
        assert_eq!(MemoryMode::Local.other(), MemoryMode::Remote);
        assert_eq!(MemoryMode::Remote.other(), MemoryMode::Local);
    }

    #[test]
    fn mode_one_hot_is_exclusive() {
        assert_eq!(MemoryMode::Local.one_hot(), [1.0, 0.0]);
        assert_eq!(MemoryMode::Remote.one_hot(), [0.0, 1.0]);
    }

    #[test]
    fn mode_displays_lowercase() {
        assert_eq!(MemoryMode::Local.to_string(), "local");
        assert_eq!(MemoryMode::Remote.to_string(), "remote");
    }

    #[test]
    fn builder_populates_all_fields() {
        let w = WorkloadProfile::builder("x", WorkloadClass::LatencyCritical)
            .cpu_cores(2.0)
            .l2_mb(0.5)
            .llc_mb(3.0)
            .mem_bw_gbps(0.8)
            .footprint_gb(16.0)
            .base_p99_ms(1.5)
            .remote_penalty(1.05)
            .sensitivity(Sensitivity {
                cpu: 0.1,
                l2: 0.05,
                llc: 0.2,
                mem_bw: 0.6,
            })
            .stacking(false)
            .build();
        assert!(w.is_latency_critical());
        assert!(!w.is_best_effort());
        assert_eq!(w.demand().footprint_gb, 16.0);
        assert_eq!(w.sensitivity().mem_bw, 0.6);
        assert_eq!(w.base_p99_ms(), 1.5);
        assert_eq!(w.to_string(), "x (LC)");
    }

    #[test]
    #[should_panic(expected = "remote penalty")]
    fn builder_rejects_sub_unit_penalty() {
        let _ = WorkloadProfile::builder("bad", WorkloadClass::BestEffort)
            .remote_penalty(0.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn builder_rejects_negative_demand() {
        let _ = WorkloadProfile::builder("bad", WorkloadClass::BestEffort)
            .cpu_cores(-1.0)
            .build();
    }
}
