//! The workload catalog used by scenario generation.

use adrias_core::rng::Rng;

use crate::ibench;
use crate::keyvalue;
use crate::profile::{WorkloadClass, WorkloadProfile};
use crate::spark;

/// The pool of deployable workloads: 17 BE Spark apps, 2 LC stores and
/// the 4 iBench micro-benchmarks.
///
/// Scenario generation picks uniformly from this pool (§V-B1: "within
/// each interval we pick a random benchmark either from the examined
/// applications, or from the iBench pool").
///
/// # Examples
///
/// ```
/// use adrias_workloads::WorkloadCatalog;
///
/// let catalog = WorkloadCatalog::paper();
/// assert_eq!(catalog.len(), 23);
/// assert_eq!(catalog.best_effort().count(), 17);
/// assert_eq!(catalog.latency_critical().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadCatalog {
    entries: Vec<WorkloadProfile>,
}

impl WorkloadCatalog {
    /// The full catalog from the paper's evaluation.
    pub fn paper() -> Self {
        let mut entries = spark::suite();
        entries.extend(keyvalue::suite());
        entries.extend(ibench::all_profiles());
        Self { entries }
    }

    /// A catalog restricted to the given profiles.
    pub fn from_profiles(entries: Vec<WorkloadProfile>) -> Self {
        Self { entries }
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[WorkloadProfile] {
        &self.entries
    }

    /// Looks up a profile by name.
    pub fn by_name(&self, name: &str) -> Option<&WorkloadProfile> {
        self.entries.iter().find(|w| w.name() == name)
    }

    /// Iterates over best-effort entries.
    pub fn best_effort(&self) -> impl Iterator<Item = &WorkloadProfile> + '_ {
        self.entries
            .iter()
            .filter(|w| w.class() == WorkloadClass::BestEffort)
    }

    /// Iterates over latency-critical entries.
    pub fn latency_critical(&self) -> impl Iterator<Item = &WorkloadProfile> + '_ {
        self.entries
            .iter()
            .filter(|w| w.class() == WorkloadClass::LatencyCritical)
    }

    /// Iterates over interference micro-benchmarks.
    pub fn interference(&self) -> impl Iterator<Item = &WorkloadProfile> + '_ {
        self.entries
            .iter()
            .filter(|w| w.class() == WorkloadClass::Interference)
    }

    /// Picks a uniformly random entry.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> &WorkloadProfile {
        assert!(!self.entries.is_empty(), "catalog is empty");
        &self.entries[rng.gen_range(0..self.entries.len())]
    }

    /// Picks a uniformly random entry of one class, if any exists.
    pub fn pick_class<R: Rng + ?Sized>(
        &self,
        class: WorkloadClass,
        rng: &mut R,
    ) -> Option<&WorkloadProfile> {
        let of_class: Vec<&WorkloadProfile> =
            self.entries.iter().filter(|w| w.class() == class).collect();
        if of_class.is_empty() {
            None
        } else {
            Some(of_class[rng.gen_range(0..of_class.len())])
        }
    }
}

impl Default for WorkloadCatalog {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    #[test]
    fn paper_catalog_composition() {
        let c = WorkloadCatalog::paper();
        assert_eq!(c.best_effort().count(), 17);
        assert_eq!(c.latency_critical().count(), 2);
        assert_eq!(c.interference().count(), 4);
        assert_eq!(c.len(), 23);
        assert!(!c.is_empty());
    }

    #[test]
    fn lookup_by_name() {
        let c = WorkloadCatalog::paper();
        assert_eq!(c.by_name("redis").unwrap().name(), "redis");
        assert!(c.by_name("nope").is_none());
    }

    #[test]
    fn pick_visits_every_entry_eventually() {
        let c = WorkloadCatalog::paper();
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(c.pick(&mut rng).name().to_owned());
        }
        assert_eq!(seen.len(), c.len());
    }

    #[test]
    fn pick_class_respects_class() {
        let c = WorkloadCatalog::paper();
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        for _ in 0..100 {
            let w = c
                .pick_class(WorkloadClass::LatencyCritical, &mut rng)
                .unwrap();
            assert!(w.is_latency_critical());
        }
        let empty = WorkloadCatalog::from_profiles(Vec::new());
        assert!(empty
            .pick_class(WorkloadClass::BestEffort, &mut rng)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "catalog is empty")]
    fn pick_from_empty_panics() {
        let empty = WorkloadCatalog::from_profiles(Vec::new());
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = empty.pick(&mut rng);
    }
}
