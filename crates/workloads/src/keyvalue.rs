//! Latency-critical in-memory key-value stores: Redis and Memcached.
//!
//! The paper drives both stores with `memtier_benchmark` in a closed loop
//! (4 threads × 200 clients, SET:GET 1:10) and studies the 99th/99.9th
//! response-time percentiles (§IV-A). This module models that setup:
//!
//! * [`redis`] / [`memcached`] — LC workload profiles;
//! * [`LoadSpec`] — the memtier-style load description;
//! * [`LatencyEnv`] — the contention environment a request sees;
//! * [`sample_latencies`] / [`tail_latency`] — a lognormal request-latency
//!   generator whose tail inflates with contention, load and (past the
//!   saturation knee) with remote-link pressure, reproducing R4/R5: local
//!   and remote are nearly identical in isolation, but remote collapses
//!   once the channel saturates.

use adrias_core::rng::Rng;

use adrias_telemetry::dist;
use adrias_telemetry::stats;

use crate::profile::{MemoryMode, Sensitivity, WorkloadClass, WorkloadProfile};

/// Ratio between the 99th percentile and the median of the baseline
/// lognormal request-latency distribution (`exp(2.326 · σ₀)` for
/// σ₀ = 0.45).
const BASELINE_P99_OVER_MEDIAN: f32 = 2.85;

/// Baseline lognormal shape parameter.
const BASELINE_SIGMA: f64 = 0.45;

/// The Redis LC profile.
///
/// In-memory stores perform many small reads/writes with poor on-chip
/// locality (pointer chasing), so they are mostly sensitive to
/// memory-bandwidth contention and comparatively cache-insensitive (R6).
pub fn redis() -> WorkloadProfile {
    WorkloadProfile::builder("redis", WorkloadClass::LatencyCritical)
        .base_p99_ms(1.2)
        .base_runtime_s(270.0)
        .cpu_cores(2.0)
        .l2_mb(0.6)
        .llc_mb(4.0)
        .mem_bw_gbps(0.8)
        .footprint_gb(32.0)
        .sensitivity(Sensitivity {
            cpu: 0.15,
            l2: 0.05,
            llc: 0.12,
            mem_bw: 0.55,
        })
        .remote_penalty(1.06)
        .build()
}

/// The Memcached LC profile.
pub fn memcached() -> WorkloadProfile {
    WorkloadProfile::builder("memcached", WorkloadClass::LatencyCritical)
        .base_p99_ms(0.55)
        .base_runtime_s(320.0)
        .cpu_cores(2.0)
        .l2_mb(0.5)
        .llc_mb(3.0)
        .mem_bw_gbps(1.0)
        .footprint_gb(24.0)
        .sensitivity(Sensitivity {
            cpu: 0.12,
            l2: 0.04,
            llc: 0.10,
            mem_bw: 0.45,
        })
        .remote_penalty(1.04)
        .build()
}

/// Both LC profiles, `[redis, memcached]`.
pub fn suite() -> Vec<WorkloadProfile> {
    vec![redis(), memcached()]
}

/// A memtier-style closed-loop load description (§IV-A).
///
/// # Examples
///
/// ```
/// use adrias_workloads::LoadSpec;
///
/// let spec = LoadSpec::paper_default(10_000);
/// assert_eq!(spec.total_clients(), 800);
/// assert_eq!(spec.total_requests(), 8_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Number of load-generation threads.
    pub threads: u32,
    /// Clients per thread.
    pub clients_per_thread: u32,
    /// SET operations per `set_get.1` GET operations.
    pub set_get: (u32, u32),
    /// Requests issued by each client.
    pub requests_per_client: u64,
}

impl LoadSpec {
    /// The paper's configuration: 4 threads × 200 clients, SET:GET 1:10.
    pub fn paper_default(requests_per_client: u64) -> Self {
        Self {
            threads: 4,
            clients_per_thread: 200,
            set_get: (1, 10),
            requests_per_client,
        }
    }

    /// A spec with the same shape but a different client count (used for
    /// the load sweeps of Fig. 3).
    pub fn with_total_clients(mut self, total: u32) -> Self {
        self.threads = 4;
        self.clients_per_thread = (total / 4).max(1);
        self
    }

    /// Total concurrent clients.
    pub fn total_clients(&self) -> u32 {
        self.threads * self.clients_per_thread
    }

    /// Total requests across all clients.
    pub fn total_requests(&self) -> u64 {
        u64::from(self.total_clients()) * self.requests_per_client
    }

    /// Fraction of operations that are SETs.
    pub fn set_fraction(&self) -> f32 {
        let (s, g) = self.set_get;
        s as f32 / (s + g) as f32
    }
}

impl Default for LoadSpec {
    fn default() -> Self {
        Self::paper_default(10_000)
    }
}

/// The contention environment in which requests are served.
///
/// Pressures are dimensionless over-subscription ratios produced by the
/// testbed simulator: `0` means an idle resource, `1` means demand equals
/// capacity. `link_utilization` and `link_latency_cycles` describe the
/// ThymesisFlow channel and only matter in remote mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyEnv {
    /// Memory mode of the store under study.
    pub mode: MemoryMode,
    /// CPU over-subscription pressure.
    pub cpu_pressure: f32,
    /// L2 pressure.
    pub l2_pressure: f32,
    /// LLC pressure.
    pub llc_pressure: f32,
    /// Local memory-bandwidth pressure.
    pub mem_bw_pressure: f32,
    /// Offered/delivered utilization of the remote link (0–1+).
    pub link_utilization: f32,
    /// Average channel latency in cycles (≈350 idle, ≈900 saturated).
    pub link_latency_cycles: f32,
}

impl LatencyEnv {
    /// An idle system in the given memory mode.
    pub fn idle(mode: MemoryMode) -> Self {
        Self {
            mode,
            cpu_pressure: 0.0,
            l2_pressure: 0.0,
            llc_pressure: 0.0,
            mem_bw_pressure: 0.0,
            link_utilization: 0.0,
            link_latency_cycles: 350.0,
        }
    }
}

/// Nominal capacity (operations per second) of a store profile under the
/// paper's default load: ≈30 kops/s for Redis and ≈100 kops/s for
/// Memcached at 800 clients, with headroom before queueing effects bite.
fn capacity_ops(profile: &WorkloadProfile) -> f32 {
    match profile.name() {
        "memcached" => 200_000.0,
        _ => 60_000.0,
    }
}

/// Multiplier applied to the median request latency by the environment.
fn median_inflation(profile: &WorkloadProfile, env: &LatencyEnv) -> f32 {
    let s = profile.sensitivity();
    let mut f = 1.0
        + s.cpu * env.cpu_pressure
        + s.l2 * env.l2_pressure
        + s.llc * env.llc_pressure
        + s.mem_bw * env.mem_bw_pressure;
    if env.mode == MemoryMode::Remote {
        f *= profile.remote_penalty();
    }
    f
}

/// Multiplier applied on top for remote-link effects (R5): negligible
/// until the channel saturates, then growing with both queueing delay
/// (latency ratio) and over-subscription.
fn link_inflation(profile: &WorkloadProfile, env: &LatencyEnv) -> f32 {
    if env.mode == MemoryMode::Local {
        return 1.0;
    }
    // In-memory stores issue small dependent accesses with little
    // bandwidth pressure, so they feel the channel mostly through its
    // queueing delay; over-subscription adds a bounded term (LC services
    // are comparatively resistant to interference, R5).
    let latency_ratio = (env.link_latency_cycles / 350.0).max(1.0);
    let overload = (env.link_utilization - 0.85).clamp(0.0, 1.0);
    1.0 + profile.sensitivity().mem_bw * (0.5 * (latency_ratio - 1.0) + overload)
}

/// Closed-loop load factor: tail latency grows as offered load approaches
/// the store's (possibly degraded) capacity.
fn load_inflation(load: &LoadSpec, degradation: f32) -> f32 {
    // Offered ops/s from a closed loop of `c` clients each waiting for a
    // response taking ~median latency; normalized so the paper's default
    // 800 clients land at the nominal operating point (ρ ≈ 0.5).
    // Closed-loop clients self-limit: each waits for its response before
    // issuing the next request, so effective utilization saturates well
    // below 1 even under heavy degradation.
    let rho_nominal = 0.5 * (load.total_clients() as f32 / 800.0) * degradation;
    let rho = rho_nominal.min(0.9);
    (1.0 - 0.5) / (1.0 - rho)
}

/// Samples `n` request latencies (milliseconds) for `profile` under
/// `load` in environment `env`.
///
/// The distribution is lognormal; contention inflates the median, and the
/// shape parameter widens slightly with total inflation so that p99.9
/// grows faster than p99 under pressure, as observed with memtier.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// use adrias_workloads::keyvalue::{redis, sample_latencies};
/// use adrias_workloads::{LatencyEnv, LoadSpec, MemoryMode};
/// use adrias_core::rng::SeedableRng;
///
/// let mut rng = adrias_core::rng::Xoshiro256pp::seed_from_u64(1);
/// let lat = sample_latencies(
///     &redis(),
///     &LoadSpec::default(),
///     &LatencyEnv::idle(MemoryMode::Local),
///     1000,
///     &mut rng,
/// );
/// assert_eq!(lat.len(), 1000);
/// assert!(lat.iter().all(|&l| l > 0.0));
/// ```
pub fn sample_latencies<R: Rng + ?Sized>(
    profile: &WorkloadProfile,
    load: &LoadSpec,
    env: &LatencyEnv,
    n: usize,
    rng: &mut R,
) -> Vec<f32> {
    assert!(n > 0, "must sample at least one request");
    let median_ms = profile.base_p99_ms() / BASELINE_P99_OVER_MEDIAN;
    let contention = median_inflation(profile, env) * link_inflation(profile, env);
    let inflation = contention * load_inflation(load, contention);
    let mu = f64::from(median_ms * inflation).ln();
    let sigma = BASELINE_SIGMA * (1.0 + 0.15 * f64::from(inflation - 1.0).min(2.0));
    (0..n)
        .map(|_| dist::lognormal(rng, mu, sigma) as f32)
        .collect()
}

/// Tail-latency summary of one measurement interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailLatency {
    /// Mean response time, ms.
    pub mean_ms: f32,
    /// 99th percentile, ms.
    pub p99_ms: f32,
    /// 99.9th percentile, ms.
    pub p999_ms: f32,
    /// Wall-clock time to serve the whole load, seconds.
    pub total_time_s: f32,
}

/// Measures tail latency for `profile` under `load` in `env`, using
/// `samples` simulated requests.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn tail_latency<R: Rng + ?Sized>(
    profile: &WorkloadProfile,
    load: &LoadSpec,
    env: &LatencyEnv,
    samples: usize,
    rng: &mut R,
) -> TailLatency {
    let lat = sample_latencies(profile, load, env, samples, rng);
    let contention = median_inflation(profile, env) * link_inflation(profile, env);
    let throughput = capacity_ops(profile) / contention;
    TailLatency {
        mean_ms: stats::mean(&lat),
        p99_ms: stats::percentile(&lat, 99.0),
        p999_ms: stats::percentile(&lat, 99.9),
        total_time_s: load.total_requests() as f32 / throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(0xAD41A5)
    }

    #[test]
    fn profiles_are_latency_critical() {
        for p in suite() {
            assert!(p.is_latency_critical());
            assert!(p.base_p99_ms() > 0.0);
        }
    }

    #[test]
    fn load_spec_counts() {
        let spec = LoadSpec::paper_default(40_000);
        assert_eq!(spec.total_clients(), 800);
        assert_eq!(spec.total_requests(), 32_000_000);
        assert!((spec.set_fraction() - 1.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    fn local_and_remote_idle_p99_are_close() {
        // R4: in isolation, local and remote tail-latency curves overlap.
        let mut r = rng();
        let spec = LoadSpec::default();
        let local = tail_latency(
            &redis(),
            &spec,
            &LatencyEnv::idle(MemoryMode::Local),
            20_000,
            &mut r,
        );
        let remote = tail_latency(
            &redis(),
            &spec,
            &LatencyEnv::idle(MemoryMode::Remote),
            20_000,
            &mut r,
        );
        let ratio = remote.p99_ms / local.p99_ms;
        assert!(
            (0.95..=1.25).contains(&ratio),
            "idle remote/local p99 ratio {ratio}"
        );
    }

    #[test]
    fn saturated_link_hurts_remote_much_more() {
        // R5: past the saturation knee remote collapses, local does not.
        let mut r = rng();
        let spec = LoadSpec::default();
        let mut env = LatencyEnv::idle(MemoryMode::Remote);
        env.link_utilization = 1.0;
        env.link_latency_cycles = 900.0;
        let saturated = tail_latency(&redis(), &spec, &env, 20_000, &mut r);
        let idle = tail_latency(
            &redis(),
            &spec,
            &LatencyEnv::idle(MemoryMode::Remote),
            20_000,
            &mut r,
        );
        assert!(
            saturated.p99_ms > 1.5 * idle.p99_ms,
            "saturation should inflate p99: {} vs {}",
            saturated.p99_ms,
            idle.p99_ms
        );
    }

    #[test]
    fn membw_pressure_dominates_cache_pressure_for_stores() {
        // R6: in-memory databases react to memBw, not LLC, contention.
        let mut r = rng();
        let spec = LoadSpec::default();
        let mut cache_env = LatencyEnv::idle(MemoryMode::Local);
        cache_env.llc_pressure = 1.0;
        let mut bw_env = LatencyEnv::idle(MemoryMode::Local);
        bw_env.mem_bw_pressure = 1.0;
        let cache = tail_latency(&memcached(), &spec, &cache_env, 20_000, &mut r);
        let bw = tail_latency(&memcached(), &spec, &bw_env, 20_000, &mut r);
        assert!(bw.p99_ms > cache.p99_ms);
    }

    #[test]
    fn more_clients_mean_higher_tail() {
        let mut r = rng();
        let light = LoadSpec::default().with_total_clients(200);
        let heavy = LoadSpec::default().with_total_clients(1400);
        let env = LatencyEnv::idle(MemoryMode::Local);
        let l = tail_latency(&redis(), &light, &env, 20_000, &mut r);
        let h = tail_latency(&redis(), &heavy, &env, 20_000, &mut r);
        assert!(h.p99_ms > l.p99_ms);
    }

    #[test]
    fn p999_exceeds_p99() {
        let mut r = rng();
        let t = tail_latency(
            &redis(),
            &LoadSpec::default(),
            &LatencyEnv::idle(MemoryMode::Local),
            50_000,
            &mut r,
        );
        assert!(t.p999_ms > t.p99_ms);
        assert!(t.p99_ms > t.mean_ms);
        assert!(t.total_time_s > 0.0);
    }

    #[test]
    fn idle_p99_is_near_calibrated_value() {
        let mut r = rng();
        let t = tail_latency(
            &redis(),
            &LoadSpec::default(),
            &LatencyEnv::idle(MemoryMode::Local),
            50_000,
            &mut r,
        );
        let ratio = t.p99_ms / redis().base_p99_ms();
        assert!(
            (0.8..=1.3).contains(&ratio),
            "calibration drifted: p99 {} vs base {}",
            t.p99_ms,
            redis().base_p99_ms()
        );
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_samples_rejected() {
        let mut r = rng();
        let _ = sample_latencies(
            &redis(),
            &LoadSpec::default(),
            &LatencyEnv::idle(MemoryMode::Local),
            0,
            &mut r,
        );
    }
}
