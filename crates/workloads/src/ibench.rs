//! iBench-style interference micro-benchmarks.
//!
//! The paper uses the iBench suite to trash one shared resource at a time
//! (CPU, L2 cache, LLC, memory bandwidth) at a configurable intensity
//! (1–32 concurrent instances). They serve two roles: the axes of the
//! characterization sweeps (Figs. 2 and 5) and supplementary interference
//! in the randomized training scenarios (§V-B1).

use std::fmt;
use std::str::FromStr;

use crate::profile::{Sensitivity, WorkloadClass, WorkloadProfile};

/// The shared resource an iBench micro-benchmark targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IbenchKind {
    /// Pure compute pressure.
    Cpu,
    /// Private L2-cache pressure.
    L2,
    /// Last-level-cache pressure.
    Llc,
    /// Memory-bandwidth pressure.
    MemBw,
}

impl IbenchKind {
    /// All kinds in the order used by the paper's heatmap (Fig. 5).
    pub const ALL: [IbenchKind; 4] = [
        IbenchKind::Cpu,
        IbenchKind::L2,
        IbenchKind::Llc,
        IbenchKind::MemBw,
    ];

    /// Lower-case label used in figures (e.g. `memBw`).
    pub fn label(self) -> &'static str {
        match self {
            IbenchKind::Cpu => "cpu",
            IbenchKind::L2 => "l2",
            IbenchKind::Llc => "l3",
            IbenchKind::MemBw => "memBw",
        }
    }
}

impl fmt::Display for IbenchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an [`IbenchKind`] from an unknown label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIbenchKindError {
    label: String,
}

impl fmt::Display for ParseIbenchKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown ibench kind `{}`", self.label)
    }
}

impl std::error::Error for ParseIbenchKindError {}

impl FromStr for IbenchKind {
    type Err = ParseIbenchKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IbenchKind::ALL
            .iter()
            .copied()
            .find(|k| k.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseIbenchKindError {
                label: s.to_owned(),
            })
    }
}

/// Builds the profile of **one** micro-benchmark instance of `kind`.
///
/// Intensity in the paper is expressed as a *count* of concurrent
/// instances; deploy `n` copies of this profile to model intensity `n`.
/// Micro-benchmarks run until explicitly removed, so the nominal runtime
/// is effectively unbounded (a large constant here).
///
/// # Examples
///
/// ```
/// use adrias_workloads::ibench::{profile, IbenchKind};
///
/// let membw = profile(IbenchKind::MemBw);
/// assert!(membw.demand().mem_bw_gbps > 0.5);
/// let cpu = profile(IbenchKind::Cpu);
/// assert_eq!(cpu.demand().mem_bw_gbps, 0.0);
/// ```
pub fn profile(kind: IbenchKind) -> WorkloadProfile {
    let builder = WorkloadProfile::builder(format!("ibench-{kind}"), WorkloadClass::Interference)
        .base_runtime_s(3600.0)
        .remote_penalty(1.0);
    let builder = match kind {
        // One iBench "instance" saturates several SMT lanes; the paper's
        // sweeps reach visible CPU pressure with 16 instances on a
        // 64-logical-core node.
        IbenchKind::Cpu => builder.cpu_cores(4.0).sensitivity(Sensitivity {
            cpu: 0.05,
            ..Sensitivity::default()
        }),
        IbenchKind::L2 => builder.cpu_cores(0.5).l2_mb(2.0).sensitivity(Sensitivity {
            l2: 0.05,
            ..Sensitivity::default()
        }),
        IbenchKind::Llc => builder
            .cpu_cores(0.5)
            .llc_mb(2.5)
            .mem_bw_gbps(0.2)
            .sensitivity(Sensitivity {
                llc: 0.05,
                ..Sensitivity::default()
            }),
        IbenchKind::MemBw => builder
            .cpu_cores(0.5)
            .llc_mb(0.5)
            .mem_bw_gbps(2.0)
            .footprint_gb(2.0)
            .sensitivity(Sensitivity {
                mem_bw: 0.05,
                ..Sensitivity::default()
            }),
    };
    builder.build()
}

/// Profiles for all four kinds, in [`IbenchKind::ALL`] order.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    IbenchKind::ALL.iter().map(|&k| profile(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in IbenchKind::ALL {
            assert_eq!(k.label().parse::<IbenchKind>().unwrap(), k);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "l9".parse::<IbenchKind>().unwrap_err();
        assert!(err.to_string().contains("l9"));
    }

    #[test]
    fn each_kind_pressures_its_own_resource() {
        let cpu = profile(IbenchKind::Cpu);
        assert!(cpu.demand().cpu_cores >= 1.0);
        assert_eq!(cpu.demand().llc_mb, 0.0);

        let l2 = profile(IbenchKind::L2);
        assert!(l2.demand().l2_mb > 0.0);
        assert_eq!(l2.demand().mem_bw_gbps, 0.0);

        let llc = profile(IbenchKind::Llc);
        assert!(llc.demand().llc_mb > 0.0);

        let membw = profile(IbenchKind::MemBw);
        assert!(membw.demand().mem_bw_gbps > 0.0);
    }

    #[test]
    fn profiles_are_interference_class() {
        for p in all_profiles() {
            assert_eq!(p.class(), WorkloadClass::Interference);
            assert!(p.name().starts_with("ibench-"));
        }
    }

    #[test]
    fn microbenchmarks_run_long() {
        for p in all_profiles() {
            assert!(p.base_runtime_s() >= 600.0);
        }
    }
}
