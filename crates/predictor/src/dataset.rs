//! Datasets for the two prediction models.
//!
//! The offline phase of Adrias (§V-B1) turns collected traces into
//! training data:
//!
//! * [`SystemStateDataset`] — sliding windows over a metric trace: a
//!   120 s history window as input, the per-metric mean over the next
//!   120 s as target;
//! * [`PerfRecord`] / [`PerfDataset`] — one record per application
//!   deployment: the history window at arrival, the actual future metric
//!   means (over the first 120 s and over the whole execution — used by
//!   the ablation of Fig. 13b), the memory mode and the measured
//!   performance.
//!
//! History windows are mean-pooled from 1 Hz to [`SEQ_LEN`] steps before
//! entering the LSTMs.

use std::collections::HashMap;

use adrias_core::rng::Rng;
use adrias_core::rng::SliceRandom;

use adrias_nn::Tensor;
use adrias_telemetry::{Metric, MetricSample, MetricVec, METRIC_COUNT};
use adrias_workloads::{AppSignature, MemoryMode};

use crate::norm::{Normalizer, ScalarNormalizer};

/// History window length, seconds (the paper's `r`).
pub const HISTORY_S: usize = 120;
/// Forecast horizon, seconds (the paper's `z`).
pub const HORIZON_S: usize = 120;
/// LSTM sequence length after mean-pooling the 1 Hz window.
pub const SEQ_LEN: usize = 24;

/// Mean-pools `rows` into exactly `target_len` rows.
///
/// # Panics
///
/// Panics if `rows` is empty or `target_len` is zero.
pub fn pool_rows(rows: &[MetricVec], target_len: usize) -> Vec<MetricVec> {
    let mut out = Vec::with_capacity(target_len);
    pool_rows_into(rows, target_len, &mut out);
    out
}

/// Allocation-free body of [`pool_rows`]: pools into a reused buffer.
///
/// `pool_rows` delegates here so the two can never drift — the inference
/// fast lane relies on this producing bit-identical rows.
///
/// # Panics
///
/// Panics if `rows` is empty or `target_len` is zero.
pub(crate) fn pool_rows_into(rows: &[MetricVec], target_len: usize, out: &mut Vec<MetricVec>) {
    assert!(!rows.is_empty(), "cannot pool an empty window");
    assert!(target_len > 0, "target length must be non-zero");
    out.clear();
    for i in 0..target_len {
        let lo = i * rows.len() / target_len;
        let hi = (((i + 1) * rows.len()) / target_len)
            .max(lo + 1)
            .min(rows.len());
        let mut acc = MetricVec::zero();
        for r in &rows[lo..hi] {
            acc = acc.add(r);
        }
        out.push(acc.scale(1.0 / (hi - lo) as f32));
    }
}

/// Per-metric mean of a set of rows.
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn mean_rows(rows: &[MetricVec]) -> MetricVec {
    assert!(!rows.is_empty(), "cannot average an empty window");
    let mut acc = MetricVec::zero();
    for r in rows {
        acc = acc.add(r);
    }
    acc.scale(1.0 / rows.len() as f32)
}

/// Stacks same-length windows into per-timestep batch tensors.
///
/// Input: `B` windows of `T` rows each; output: `T` tensors of shape
/// `B × METRIC_COUNT`.
pub(crate) fn seq_tensors(windows: &[Vec<MetricVec>]) -> Vec<Tensor> {
    assert!(!windows.is_empty(), "empty batch");
    let t_len = windows[0].len();
    assert!(
        windows.iter().all(|w| w.len() == t_len),
        "ragged windows in batch"
    );
    (0..t_len)
        .map(|t| {
            Tensor::from_fn(windows.len(), METRIC_COUNT, |b, c| {
                windows[b][t].get(Metric::ALL[c])
            })
        })
        .collect()
}

/// One supervised sample for the system-state model.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStateSample {
    /// Pooled history window ([`SEQ_LEN`] rows, unnormalized).
    pub history: Vec<MetricVec>,
    /// Per-metric mean over the horizon (unnormalized).
    pub target: MetricVec,
}

/// Sliding-window dataset for the system-state model.
#[derive(Debug, Clone)]
pub struct SystemStateDataset {
    samples: Vec<SystemStateSample>,
    normalizer: Normalizer,
}

impl SystemStateDataset {
    /// Builds samples from one contiguous 1 Hz trace with the given
    /// window `stride` (seconds between consecutive samples).
    ///
    /// Traces shorter than `HISTORY_S + HORIZON_S` produce no samples;
    /// combine traces with [`SystemStateDataset::from_traces`].
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero or no sample can be extracted from any
    /// trace.
    pub fn from_traces(traces: &[Vec<MetricSample>], stride: usize) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        let mut samples = Vec::new();
        for trace in traces {
            let rows: Vec<MetricVec> = trace.iter().map(|s| *s.vec()).collect();
            if rows.len() < HISTORY_S + HORIZON_S {
                continue;
            }
            let mut t = HISTORY_S;
            while t + HORIZON_S <= rows.len() {
                samples.push(SystemStateSample {
                    history: pool_rows(&rows[t - HISTORY_S..t], SEQ_LEN),
                    target: mean_rows(&rows[t..t + HORIZON_S]),
                });
                t += stride;
            }
        }
        assert!(
            !samples.is_empty(),
            "no system-state samples: traces too short (need {} s)",
            HISTORY_S + HORIZON_S
        );
        let normalizer = Normalizer::fit_windows(samples.iter().map(|s| s.history.as_slice()));
        Self {
            samples,
            normalizer,
        }
    }

    /// Builds a dataset directly from prepared samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: Vec<SystemStateSample>) -> Self {
        assert!(!samples.is_empty(), "empty dataset");
        let normalizer = Normalizer::fit_windows(samples.iter().map(|s| s.history.as_slice()));
        Self {
            samples,
            normalizer,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    pub fn samples(&self) -> &[SystemStateSample] {
        &self.samples
    }

    /// The fitted per-metric normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Shuffled train/test split (the paper uses 60 %/40 %).
    ///
    /// Both splits keep the normalizer fitted on the **training** part.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac < 1` or if either side would be
    /// empty.
    pub fn split<R: Rng + ?Sized>(&self, train_frac: f64, rng: &mut R) -> (Self, Self) {
        assert!(
            (0.0..1.0).contains(&train_frac) && train_frac > 0.0,
            "train fraction must be in (0,1)"
        );
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        idx.shuffle(rng);
        let cut = ((self.samples.len() as f64) * train_frac).round() as usize;
        assert!(
            cut > 0 && cut < self.samples.len(),
            "split leaves an empty side ({} samples, cut {cut})",
            self.samples.len()
        );
        let train_samples: Vec<_> = idx[..cut]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        let test_samples: Vec<_> = idx[cut..]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        let normalizer =
            Normalizer::fit_windows(train_samples.iter().map(|s| s.history.as_slice()));
        (
            Self {
                samples: train_samples,
                normalizer: normalizer.clone(),
            },
            Self {
                samples: test_samples,
                normalizer,
            },
        )
    }

    /// Builds normalized batch tensors for the given sample indices:
    /// `(sequence, target)` where `sequence` is [`SEQ_LEN`] tensors of
    /// `B × 7` and `target` is `B × 7`.
    ///
    /// # Panics
    ///
    /// Panics if `idxs` is empty or out of bounds.
    pub fn batch(&self, idxs: &[usize]) -> (Vec<Tensor>, Tensor) {
        assert!(!idxs.is_empty(), "empty batch");
        let windows: Vec<Vec<MetricVec>> = idxs
            .iter()
            .map(|&i| self.normalizer.normalize_window(&self.samples[i].history))
            .collect();
        let seq = seq_tensors(&windows);
        let target = Tensor::from_fn(idxs.len(), METRIC_COUNT, |b, c| {
            self.normalizer
                .normalize(&self.samples[idxs[b]].target)
                .get(Metric::ALL[c])
        });
        (seq, target)
    }
}

/// One application-deployment record collected during trace scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Application name (keys the signature store).
    pub app: String,
    /// The memory mode it was deployed in.
    pub mode: MemoryMode,
    /// 1 Hz history window covering the [`HISTORY_S`] seconds before
    /// arrival.
    pub history: Vec<MetricVec>,
    /// Actual per-metric mean over the first [`HORIZON_S`] seconds after
    /// arrival.
    pub future_120: MetricVec,
    /// Actual per-metric mean over the whole execution.
    pub future_exec: MetricVec,
    /// Measured performance: execution time in seconds (BE) or p99 in
    /// milliseconds (LC).
    pub perf: f32,
}

/// Dataset for the performance model.
#[derive(Debug, Clone)]
pub struct PerfDataset {
    records: Vec<PerfRecord>,
    signatures: HashMap<String, Vec<MetricVec>>,
    metric_norm: Normalizer,
    target_norm: ScalarNormalizer,
}

impl PerfDataset {
    /// Builds a dataset from deployment records and the signature store.
    ///
    /// Records whose application has no signature are dropped (Adrias
    /// schedules unknown apps remote-first to capture one, §V-C).
    /// Targets are log-transformed before z-normalization.
    ///
    /// # Panics
    ///
    /// Panics if no record survives, or any record has an empty history
    /// or non-positive performance.
    pub fn new(records: Vec<PerfRecord>, signatures: &[AppSignature]) -> Self {
        let sig_map: HashMap<String, Vec<MetricVec>> = signatures
            .iter()
            .map(|s| {
                (
                    s.app_name().to_owned(),
                    s.resampled(SEQ_LEN).rows().to_vec(),
                )
            })
            .collect();
        let records: Vec<PerfRecord> = records
            .into_iter()
            .filter(|r| sig_map.contains_key(&r.app))
            .collect();
        assert!(!records.is_empty(), "no records with known signatures");
        for r in &records {
            assert!(
                !r.history.is_empty(),
                "record for {} has empty history",
                r.app
            );
            assert!(r.perf > 0.0, "record for {} has non-positive perf", r.app);
        }
        let metric_norm = Normalizer::fit_windows(
            records
                .iter()
                .map(|r| r.history.as_slice())
                .chain(sig_map.values().map(|v| v.as_slice())),
        );
        let targets: Vec<f32> = records.iter().map(|r| r.perf.ln()).collect();
        let target_norm = ScalarNormalizer::fit(&targets);
        Self {
            records,
            signatures: sig_map,
            metric_norm,
            target_norm,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records.
    pub fn records(&self) -> &[PerfRecord] {
        &self.records
    }

    /// The fitted metric normalizer.
    pub fn metric_norm(&self) -> &Normalizer {
        &self.metric_norm
    }

    /// The fitted (log-space) target normalizer.
    pub fn target_norm(&self) -> &ScalarNormalizer {
        &self.target_norm
    }

    /// The pooled signature rows for `app`, if known.
    pub fn signature(&self, app: &str) -> Option<&[MetricVec]> {
        self.signatures.get(app).map(Vec::as_slice)
    }

    /// Signature store in pooled form (name → [`SEQ_LEN`] rows).
    pub fn signatures(&self) -> &HashMap<String, Vec<MetricVec>> {
        &self.signatures
    }

    /// Shuffled train/test split; normalizers refit on the training part.
    ///
    /// # Panics
    ///
    /// Panics unless both sides end up non-empty.
    pub fn split<R: Rng + ?Sized>(&self, train_frac: f64, rng: &mut R) -> (Self, Self) {
        let mut idx: Vec<usize> = (0..self.records.len()).collect();
        idx.shuffle(rng);
        let cut = ((self.records.len() as f64) * train_frac).round() as usize;
        assert!(
            cut > 0 && cut < self.records.len(),
            "split leaves an empty side"
        );
        let sigs: Vec<AppSignature> = self
            .signatures
            .iter()
            .map(|(name, rows)| AppSignature::new(name.clone(), rows.clone()))
            .collect();
        let train: Vec<_> = idx[..cut]
            .iter()
            .map(|&i| self.records[i].clone())
            .collect();
        let test: Vec<_> = idx[cut..]
            .iter()
            .map(|&i| self.records[i].clone())
            .collect();
        let train_ds = Self::new(train, &sigs);
        // Test set reuses the training normalizers.
        let mut test_ds = Self::new(test, &sigs);
        test_ds.metric_norm = train_ds.metric_norm.clone();
        test_ds.target_norm = train_ds.target_norm;
        (train_ds, test_ds)
    }

    /// Deterministic index-based holdout split: every `every_k`-th
    /// record (indices `k-1, 2k-1, …`) becomes the held-out side, the
    /// rest train. No RNG is involved, so the same dataset yields the
    /// same split everywhere — the property the online swap gate needs
    /// to stay seed- and worker-invariant. Normalizers refit on the
    /// training side and are shared by the holdout side.
    ///
    /// Returns `None` if either side would be empty.
    ///
    /// # Panics
    ///
    /// Panics if `every_k < 2` (the holdout would swallow everything).
    pub fn split_holdout(&self, every_k: usize) -> Option<(Self, Self)> {
        assert!(every_k >= 2, "every_k must be at least 2, got {every_k}");
        let mut train = Vec::new();
        let mut hold = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            if (i + 1) % every_k == 0 {
                hold.push(r.clone());
            } else {
                train.push(r.clone());
            }
        }
        if train.is_empty() || hold.is_empty() {
            return None;
        }
        let sigs: Vec<AppSignature> = self
            .signatures
            .iter()
            .map(|(name, rows)| AppSignature::new(name.clone(), rows.clone()))
            .collect();
        let train_ds = Self::new(train, &sigs);
        let mut hold_ds = Self::new(hold, &sigs);
        hold_ds.metric_norm = train_ds.metric_norm.clone();
        hold_ds.target_norm = train_ds.target_norm;
        Some((train_ds, hold_ds))
    }

    /// Splits by application: records of `app` become the test set
    /// (leave-one-out validation of Fig. 15).
    ///
    /// Returns `None` if either side would be empty.
    pub fn split_leave_out(&self, app: &str) -> Option<(Self, Self)> {
        let (test, train): (Vec<_>, Vec<_>) =
            self.records.iter().cloned().partition(|r| r.app == app);
        if test.is_empty() || train.is_empty() {
            return None;
        }
        let sigs: Vec<AppSignature> = self
            .signatures
            .iter()
            .map(|(name, rows)| AppSignature::new(name.clone(), rows.clone()))
            .collect();
        let train_ds = Self::new(train, &sigs);
        let mut test_ds = Self::new(test, &sigs);
        test_ds.metric_norm = train_ds.metric_norm.clone();
        test_ds.target_norm = train_ds.target_norm;
        Some((train_ds, test_ds))
    }

    /// Pooled, normalized history window of record `i`.
    pub(crate) fn history_window(&self, i: usize) -> Vec<MetricVec> {
        self.metric_norm
            .normalize_window(&pool_rows(&self.records[i].history, SEQ_LEN))
    }

    /// Pooled, normalized signature window of record `i`.
    pub(crate) fn signature_window(&self, i: usize) -> Vec<MetricVec> {
        let rows = &self.signatures[&self.records[i].app];
        self.metric_norm.normalize_window(rows)
    }

    /// Normalized (log-space) target of record `i`.
    pub(crate) fn target(&self, i: usize) -> f32 {
        self.target_norm.normalize(self.records[i].perf.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_core::rng::SeedableRng;
    use adrias_core::rng::Xoshiro256pp;

    fn rowv(v: f32) -> MetricVec {
        let mut m = MetricVec::zero();
        m.set(Metric::LlcLoads, v);
        m.set(Metric::LinkLatency, 350.0 + v);
        m
    }

    fn trace(len: usize) -> Vec<MetricSample> {
        (0..len)
            .map(|t| MetricSample::new(t as f64, rowv(t as f32)))
            .collect()
    }

    #[test]
    fn pool_rows_divisible_case() {
        let rows: Vec<MetricVec> = (0..120).map(|i| rowv(i as f32)).collect();
        let pooled = pool_rows(&rows, SEQ_LEN);
        assert_eq!(pooled.len(), SEQ_LEN);
        // First chunk covers rows 0..5 → mean 2.0.
        assert!((pooled[0].get(Metric::LlcLoads) - 2.0).abs() < 1e-5);
        assert!((pooled[23].get(Metric::LlcLoads) - 117.0).abs() < 1e-5);
    }

    #[test]
    fn pool_rows_ragged_case() {
        let rows: Vec<MetricVec> = (0..7).map(|i| rowv(i as f32)).collect();
        let pooled = pool_rows(&rows, 3);
        assert_eq!(pooled.len(), 3);
    }

    #[test]
    fn system_dataset_window_count() {
        let ds = SystemStateDataset::from_traces(&[trace(360)], 10);
        // t runs 120, 130, ..., 240 → 13 samples.
        assert_eq!(ds.len(), 13);
        assert_eq!(ds.samples()[0].history.len(), SEQ_LEN);
    }

    #[test]
    fn short_traces_are_skipped() {
        let ds = SystemStateDataset::from_traces(&[trace(100), trace(360)], 60);
        assert!(!ds.is_empty());
    }

    #[test]
    fn system_targets_are_horizon_means() {
        let ds = SystemStateDataset::from_traces(&[trace(240)], 120);
        // Single sample: history rows 0..120, target mean of rows 120..240
        // → (120 + 239)/2 = 179.5.
        assert_eq!(ds.len(), 1);
        assert!((ds.samples()[0].target.get(Metric::LlcLoads) - 179.5).abs() < 1e-3);
    }

    #[test]
    fn system_split_is_disjoint_and_sized() {
        let ds = SystemStateDataset::from_traces(&[trace(1000)], 5);
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let (train, test) = ds.split(0.6, &mut rng);
        assert_eq!(train.len() + test.len(), ds.len());
        let expected = ((ds.len() as f64) * 0.6).round() as usize;
        assert_eq!(train.len(), expected);
    }

    #[test]
    fn system_batch_shapes() {
        let ds = SystemStateDataset::from_traces(&[trace(400)], 10);
        let (seq, target) = ds.batch(&[0, 1, 2]);
        assert_eq!(seq.len(), SEQ_LEN);
        assert_eq!(seq[0].shape(), (3, METRIC_COUNT));
        assert_eq!(target.shape(), (3, METRIC_COUNT));
    }

    fn perf_record(app: &str, mode: MemoryMode, perf: f32) -> PerfRecord {
        PerfRecord {
            app: app.to_owned(),
            mode,
            history: (0..HISTORY_S).map(|i| rowv(i as f32)).collect(),
            future_120: rowv(10.0),
            future_exec: rowv(12.0),
            perf,
        }
    }

    fn signatures() -> Vec<AppSignature> {
        vec![
            AppSignature::new("a", (0..30).map(|i| rowv(i as f32)).collect()),
            AppSignature::new("b", (0..50).map(|i| rowv(2.0 * i as f32)).collect()),
        ]
    }

    #[test]
    fn perf_dataset_drops_unknown_apps() {
        let records = vec![
            perf_record("a", MemoryMode::Local, 60.0),
            perf_record("zz", MemoryMode::Local, 50.0),
            perf_record("b", MemoryMode::Remote, 90.0),
        ];
        let ds = PerfDataset::new(records, &signatures());
        assert_eq!(ds.len(), 2);
        assert!(ds.signature("a").is_some());
        assert!(ds.signature("zz").is_none());
    }

    #[test]
    fn perf_dataset_target_normalization_round_trips() {
        let records = vec![
            perf_record("a", MemoryMode::Local, 60.0),
            perf_record("a", MemoryMode::Remote, 120.0),
            perf_record("b", MemoryMode::Local, 30.0),
        ];
        let ds = PerfDataset::new(records, &signatures());
        let z = ds.target(1);
        let back = ds.target_norm().denormalize(z).exp();
        assert!((back - 120.0).abs() < 0.1);
    }

    #[test]
    fn leave_one_out_partitions_by_app() {
        let records = vec![
            perf_record("a", MemoryMode::Local, 60.0),
            perf_record("a", MemoryMode::Remote, 100.0),
            perf_record("b", MemoryMode::Local, 30.0),
        ];
        let ds = PerfDataset::new(records, &signatures());
        let (train, test) = ds.split_leave_out("a").unwrap();
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 2);
        assert!(test.records().iter().all(|r| r.app == "a"));
        assert!(ds.split_leave_out("zz").is_none());
    }

    #[test]
    #[should_panic(expected = "no records with known signatures")]
    fn perf_dataset_rejects_all_unknown() {
        let records = vec![perf_record("zz", MemoryMode::Local, 50.0)];
        let _ = PerfDataset::new(records, &signatures());
    }

    #[test]
    fn holdout_split_is_deterministic_and_index_based() {
        let records: Vec<PerfRecord> = (0..10)
            .map(|i| {
                perf_record(
                    if i % 2 == 0 { "a" } else { "b" },
                    MemoryMode::Local,
                    50.0 + i as f32,
                )
            })
            .collect();
        let ds = PerfDataset::new(records, &signatures());
        let (train, hold) = ds.split_holdout(3).unwrap();
        // Indices 2, 5, 8 held out.
        assert_eq!(hold.len(), 3);
        assert_eq!(train.len(), 7);
        assert_eq!(hold.records()[0].perf, 52.0);
        assert_eq!(hold.records()[1].perf, 55.0);
        assert_eq!(hold.records()[2].perf, 58.0);
        // Holdout reuses the training normalizers.
        assert_eq!(
            hold.target_norm().normalize(1.0),
            train.target_norm().normalize(1.0)
        );
        // Repeat split is identical (no RNG involved).
        let (train2, hold2) = ds.split_holdout(3).unwrap();
        assert_eq!(train.records(), train2.records());
        assert_eq!(hold.records(), hold2.records());
        // A holdout that would leave a side empty is refused.
        let two = PerfDataset::new(
            vec![perf_record("a", MemoryMode::Local, 60.0)],
            &signatures(),
        );
        assert!(two.split_holdout(3).is_none());
    }
}
