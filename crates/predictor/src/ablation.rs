//! Stacked-model ablation (Fig. 13b) and generalization studies (Fig. 15).
//!
//! The key design question the paper answers experimentally: should the
//! performance model be trained/tested with the *actual* future system
//! state, or with the `Ŝ` *propagated* from the system-state model? The
//! `{train, test}` pairs of Fig. 13b are reproduced by
//! [`run_ablation_matrix`]. Fig. 15's per-application leave-one-out study
//! is reproduced by [`leave_one_out`].

use adrias_telemetry::MetricVec;

use crate::dataset::PerfDataset;
use crate::eval::RegressionReport;
use crate::perf_model::{PerfModel, PerfModelConfig};
use crate::system_model::SystemStateModel;

/// Where the `Ŝ` input of the performance model comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SHatSource {
    /// `Ŝ` is not fed (zeros) — the `{None, None}` variant.
    None,
    /// Actual metric means over the first 120 s after arrival
    /// (`{120, ·}` with ground truth).
    Actual120,
    /// Actual metric means over the whole execution (`{exec, ·}`) — the
    /// non-pragmatic upper bound.
    ActualExec,
    /// Propagated prediction from the system-state model (`{·, Ŝ}`) —
    /// the only variant available at run time.
    Propagated,
}

impl SHatSource {
    /// Label used in the Fig. 13b axis.
    pub fn label(self) -> &'static str {
        match self {
            SHatSource::None => "None",
            SHatSource::Actual120 => "120",
            SHatSource::ActualExec => "exec",
            SHatSource::Propagated => "S_hat",
        }
    }

    /// Materializes the `Ŝ` vector for every record of `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if this is [`SHatSource::Propagated`] and `system_model` is
    /// `None` or untrained.
    pub fn materialize(
        self,
        dataset: &PerfDataset,
        system_model: Option<&mut SystemStateModel>,
    ) -> Vec<Option<MetricVec>> {
        match self {
            SHatSource::None => vec![None; dataset.len()],
            SHatSource::Actual120 => dataset
                .records()
                .iter()
                .map(|r| Some(r.future_120))
                .collect(),
            SHatSource::ActualExec => dataset
                .records()
                .iter()
                .map(|r| Some(r.future_exec))
                .collect(),
            SHatSource::Propagated => {
                let model =
                    system_model.expect("propagated Ŝ requires a trained system-state model");
                assert!(model.is_trained(), "system-state model is untrained");
                dataset
                    .records()
                    .iter()
                    .map(|r| Some(model.predict(&r.history)))
                    .collect()
            }
        }
    }
}

/// One cell of the Fig. 13b matrix: `Ŝ` source used in training vs
/// testing, and the resulting accuracy.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// `Ŝ` source during training.
    pub train_source: SHatSource,
    /// `Ŝ` source during testing.
    pub test_source: SHatSource,
    /// Test-set accuracy.
    pub report: RegressionReport,
}

/// Runs the `{train, test}` ablation matrix of Fig. 13b.
///
/// Trains one fresh [`PerfModel`] per requested pair. `system_model`
/// must be trained if any pair involves [`SHatSource::Propagated`].
pub fn run_ablation_matrix(
    pairs: &[(SHatSource, SHatSource)],
    train: &PerfDataset,
    test: &PerfDataset,
    cfg: PerfModelConfig,
    mut system_model: Option<&mut SystemStateModel>,
) -> Vec<AblationCell> {
    pairs
        .iter()
        .map(|&(train_source, test_source)| {
            let train_hats = train_source.materialize(train, system_model.as_deref_mut());
            let test_hats = test_source.materialize(test, system_model.as_deref_mut());
            let mut model = PerfModel::new(cfg);
            model.train(train, &train_hats);
            let report = model.evaluate(test, &test_hats);
            AblationCell {
                train_source,
                test_source,
                report,
            }
        })
        .collect()
}

/// Per-application leave-one-out result (Fig. 15a).
#[derive(Debug, Clone)]
pub struct LeaveOneOutCell {
    /// Application excluded from training and used as the test set.
    pub app: String,
    /// Accuracy on the held-out application.
    pub report: RegressionReport,
}

/// Leave-one-out validation: for each application, train on every other
/// application's records and evaluate on the held-out one.
///
/// Applications with no usable split (e.g. they are the only app) are
/// skipped.
pub fn leave_one_out(
    dataset: &PerfDataset,
    apps: &[&str],
    cfg: PerfModelConfig,
    source: SHatSource,
    mut system_model: Option<&mut SystemStateModel>,
) -> Vec<LeaveOneOutCell> {
    apps.iter()
        .filter_map(|&app| {
            let (train, test) = dataset.split_leave_out(app)?;
            let train_hats = source.materialize(&train, system_model.as_deref_mut());
            let test_hats = source.materialize(&test, system_model.as_deref_mut());
            let mut model = PerfModel::new(cfg);
            model.train(&train, &train_hats);
            let report = model.evaluate(&test, &test_hats);
            Some(LeaveOneOutCell {
                app: app.to_owned(),
                report,
            })
        })
        .collect()
}

/// Accuracy as a function of available training samples (Fig. 15b).
///
/// For each requested size, trains on the first `n` records (in dataset
/// order) and evaluates on `test`.
pub fn sample_count_sweep(
    train: &PerfDataset,
    test: &PerfDataset,
    sizes: &[usize],
    cfg: PerfModelConfig,
    source: SHatSource,
    mut system_model: Option<&mut SystemStateModel>,
) -> Vec<(usize, RegressionReport)> {
    use adrias_workloads::AppSignature;
    let sigs: Vec<AppSignature> = train
        .signatures()
        .iter()
        .map(|(name, rows)| AppSignature::new(name.clone(), rows.clone()))
        .collect();
    sizes
        .iter()
        .filter(|&&n| n >= 2 && n <= train.len())
        .map(|&n| {
            let subset = PerfDataset::new(train.records()[..n].to_vec(), &sigs);
            let train_hats = source.materialize(&subset, system_model.as_deref_mut());
            let test_hats = source.materialize(test, system_model.as_deref_mut());
            let mut model = PerfModel::new(cfg);
            model.train(&subset, &train_hats);
            (n, model.evaluate(test, &test_hats))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{PerfRecord, HISTORY_S};
    use adrias_core::rng::Xoshiro256pp;
    use adrias_core::rng::{Rng, SeedableRng};
    use adrias_telemetry::Metric;
    use adrias_workloads::{AppSignature, MemoryMode};

    fn synthetic(n: usize, seed: u64) -> PerfDataset {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let apps = ["a", "b", "c"];
        let mut records = Vec::new();
        for _ in 0..n {
            let ai = rng.gen_range(0..apps.len());
            let mode = if rng.gen_bool(0.5) {
                MemoryMode::Local
            } else {
                MemoryMode::Remote
            };
            let load = rng.gen_range(0.0f32..1.5);
            let history: Vec<MetricVec> = (0..HISTORY_S)
                .map(|_| {
                    let mut v = MetricVec::zero();
                    v.set(Metric::MemLoads, 1e7 * (1.0 + load));
                    v
                })
                .collect();
            let mut fut = MetricVec::zero();
            fut.set(Metric::MemLoads, 1e7 * (1.0 + load));
            let perf = 50.0
                * (1.0 + 0.4 * load)
                * if mode == MemoryMode::Remote { 1.5 } else { 1.0 }
                * (1.0 + ai as f32 * 0.2);
            records.push(PerfRecord {
                app: apps[ai].to_owned(),
                mode,
                history,
                future_120: fut,
                future_exec: fut,
                perf,
            });
        }
        let sigs: Vec<AppSignature> = apps
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut v = MetricVec::zero();
                v.set(Metric::LlcLoads, (i as f32 + 1.0) * 1e8);
                AppSignature::new(*name, vec![v; 10])
            })
            .collect();
        PerfDataset::new(records, &sigs)
    }

    fn fast_cfg() -> PerfModelConfig {
        PerfModelConfig {
            epochs: 6,
            hidden: 6,
            block_width: 8,
            ..PerfModelConfig::tiny()
        }
    }

    #[test]
    fn labels_match_paper_axis() {
        assert_eq!(SHatSource::None.label(), "None");
        assert_eq!(SHatSource::Actual120.label(), "120");
        assert_eq!(SHatSource::ActualExec.label(), "exec");
        assert_eq!(SHatSource::Propagated.label(), "S_hat");
    }

    #[test]
    fn materialize_shapes_match_dataset() {
        let ds = synthetic(30, 0);
        assert_eq!(SHatSource::None.materialize(&ds, None).len(), 30);
        let a120 = SHatSource::Actual120.materialize(&ds, None);
        assert!(a120.iter().all(Option::is_some));
        let aexec = SHatSource::ActualExec.materialize(&ds, None);
        assert_eq!(aexec.len(), 30);
    }

    #[test]
    #[should_panic(expected = "requires a trained system-state model")]
    fn propagated_requires_model() {
        let ds = synthetic(10, 1);
        let _ = SHatSource::Propagated.materialize(&ds, None);
    }

    #[test]
    fn ablation_matrix_produces_one_cell_per_pair() {
        let ds = synthetic(80, 2);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let (train, test) = ds.split(0.6, &mut rng);
        let pairs = [
            (SHatSource::None, SHatSource::None),
            (SHatSource::Actual120, SHatSource::Actual120),
        ];
        let cells = run_ablation_matrix(&pairs, &train, &test, fast_cfg(), None);
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.report.r2.is_finite());
        }
    }

    #[test]
    fn leave_one_out_skips_impossible_apps() {
        let ds = synthetic(60, 4);
        let cells = leave_one_out(&ds, &["a", "zz"], fast_cfg(), SHatSource::Actual120, None);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].app, "a");
    }

    #[test]
    fn sample_sweep_respects_bounds() {
        let ds = synthetic(60, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let (train, test) = ds.split(0.7, &mut rng);
        let sweep = sample_count_sweep(
            &train,
            &test,
            &[1, 10, 20, 10_000],
            fast_cfg(),
            SHatSource::Actual120,
            None,
        );
        let ns: Vec<usize> = sweep.iter().map(|(n, _)| *n).collect();
        assert_eq!(ns, vec![10, 20]);
    }
}
