//! Persistence for trained models.
//!
//! A deployed Adrias instance trains its models in the offline phase and
//! loads them at orchestrator start-up. Models are serialized to a
//! line-oriented text format built on [`adrias_nn::serialize`]: a config
//! header, the normalizer statistics, and every parameter tensor in
//! stable visitation order.

use std::fmt;

use adrias_nn::serialize::{read_tensors, write_tensors, ParseTensorError};
use adrias_nn::Tensor;
use adrias_telemetry::{Metric, MetricVec};

use crate::norm::Normalizer;
use crate::perf_model::{PerfModel, PerfModelConfig};
use crate::system_model::{SystemStateModel, SystemStateModelConfig};

/// Error returned when loading a persisted model fails.
#[derive(Debug)]
pub enum LoadModelError {
    /// The header line was missing or malformed.
    BadHeader(String),
    /// The tensor section failed to parse.
    BadTensors(ParseTensorError),
    /// Parameter count or shapes do not match the declared config.
    ShapeMismatch {
        /// Which tensor disagreed.
        slot: String,
    },
    /// The model type tag does not match the loader.
    WrongKind {
        /// Tag found in the header.
        found: String,
        /// Tag the loader expected.
        expected: &'static str,
    },
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadModelError::BadHeader(line) => write!(f, "malformed model header `{line}`"),
            LoadModelError::BadTensors(e) => write!(f, "malformed tensor section: {e}"),
            LoadModelError::ShapeMismatch { slot } => {
                write!(f, "parameter shape mismatch at `{slot}`")
            }
            LoadModelError::WrongKind { found, expected } => {
                write!(
                    f,
                    "model kind `{found}` does not match expected `{expected}`"
                )
            }
        }
    }
}

impl std::error::Error for LoadModelError {}

/// Error returned when serializing a model fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaveModelError {
    /// The model has not been trained, so there is nothing to persist.
    Untrained,
}

impl fmt::Display for SaveModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveModelError::Untrained => write!(f, "cannot save an untrained model"),
        }
    }
}

impl std::error::Error for SaveModelError {}

impl From<ParseTensorError> for LoadModelError {
    fn from(e: ParseTensorError) -> Self {
        LoadModelError::BadTensors(e)
    }
}

fn normalizer_tensors(norm: &Normalizer) -> (Tensor, Tensor) {
    let mean = Tensor::from_fn(1, Metric::ALL.len(), |_, c| norm.mean(Metric::ALL[c]));
    let std = Tensor::from_fn(1, Metric::ALL.len(), |_, c| norm.std(Metric::ALL[c]));
    (mean, std)
}

fn normalizer_from(mean: &Tensor, std: &Tensor) -> Result<Normalizer, LoadModelError> {
    if mean.shape() != (1, Metric::ALL.len()) || std.shape() != (1, Metric::ALL.len()) {
        return Err(LoadModelError::ShapeMismatch {
            slot: "normalizer".to_owned(),
        });
    }
    // Reconstruct by fitting on two synthetic rows that reproduce the
    // exact mean/std: mean ± std per metric.
    let mut lo = MetricVec::zero();
    let mut hi = MetricVec::zero();
    for m in Metric::ALL {
        lo.set(m, mean.get(0, m.index()) - std.get(0, m.index()));
        hi.set(m, mean.get(0, m.index()) + std.get(0, m.index()));
    }
    Ok(Normalizer::fit(&[lo, hi]))
}

/// Serializes a trained system-state model.
///
/// # Errors
///
/// Returns [`SaveModelError::Untrained`] if the model has not been
/// trained.
pub fn save_system_model(model: &mut SystemStateModel) -> Result<String, SaveModelError> {
    let norm = model
        .normalizer_for_persist()
        .ok_or(SaveModelError::Untrained)?;
    let cfg = *model.config();
    let mut header = format!(
        "adrias-model system {} {} {} {} {} {} {}\n",
        cfg.hidden,
        cfg.block_width,
        cfg.dropout,
        cfg.learning_rate,
        cfg.epochs,
        cfg.batch_size,
        cfg.seed
    );
    let (mean, std) = normalizer_tensors(&norm);
    let mut named: Vec<(String, Tensor)> =
        vec![("norm_mean".into(), mean), ("norm_std".into(), std)];
    let mut idx = 0usize;
    model.visit_params_for_persist(&mut |p| {
        named.push((format!("p{idx}"), p.clone()));
        idx += 1;
    });
    let refs: Vec<(&str, &Tensor)> = named.iter().map(|(n, t)| (n.as_str(), t)).collect();
    header.push_str(&write_tensors(&refs));
    Ok(header)
}

/// Restores a system-state model saved by [`save_system_model`].
///
/// # Errors
///
/// Returns [`LoadModelError`] on malformed input or mismatched shapes.
pub fn load_system_model(text: &str) -> Result<SystemStateModel, LoadModelError> {
    let (header, rest) = text
        .split_once('\n')
        .ok_or_else(|| LoadModelError::BadHeader(text.to_owned()))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    match parts.as_slice() {
        ["adrias-model", kind, ..] if *kind != "system" => {
            return Err(LoadModelError::WrongKind {
                found: (*kind).to_owned(),
                expected: "system",
            });
        }
        _ => {}
    }
    let ["adrias-model", _, hidden, block, dropout, lr, epochs, batch, seed] = parts[..] else {
        return Err(LoadModelError::BadHeader(header.to_owned()));
    };
    let parse_err = || LoadModelError::BadHeader(header.to_owned());
    let cfg = SystemStateModelConfig {
        hidden: hidden.parse().map_err(|_| parse_err())?,
        block_width: block.parse().map_err(|_| parse_err())?,
        dropout: dropout.parse().map_err(|_| parse_err())?,
        learning_rate: lr.parse().map_err(|_| parse_err())?,
        epochs: epochs.parse().map_err(|_| parse_err())?,
        batch_size: batch.parse().map_err(|_| parse_err())?,
        seed: seed.parse().map_err(|_| parse_err())?,
        // Training-only parallelism knobs are not part of the
        // architecture and are not persisted.
        ..Default::default()
    };
    let tensors = read_tensors(rest)?;
    let mut model = SystemStateModel::new(cfg);
    let norm = restore_params(tensors, |f| model.visit_params_for_persist_mut(f))?;
    model.set_normalizer_for_persist(norm);
    Ok(model)
}

/// Serializes a trained performance model.
///
/// # Errors
///
/// Returns [`SaveModelError::Untrained`] if the model has not been
/// trained.
pub fn save_perf_model(model: &mut PerfModel) -> Result<String, SaveModelError> {
    let (norm, target) = model.norms_for_persist().ok_or(SaveModelError::Untrained)?;
    let cfg = *model.config();
    let mut header = format!(
        "adrias-model perf {} {} {} {} {} {} {} {} {}\n",
        cfg.hidden,
        cfg.block_width,
        cfg.dropout,
        cfg.learning_rate,
        cfg.epochs,
        cfg.batch_size,
        cfg.seed,
        target.0,
        target.1
    );
    let (mean, std) = normalizer_tensors(&norm);
    let mut named: Vec<(String, Tensor)> =
        vec![("norm_mean".into(), mean), ("norm_std".into(), std)];
    let mut idx = 0usize;
    model.visit_params_for_persist(&mut |p| {
        named.push((format!("p{idx}"), p.clone()));
        idx += 1;
    });
    let refs: Vec<(&str, &Tensor)> = named.iter().map(|(n, t)| (n.as_str(), t)).collect();
    header.push_str(&write_tensors(&refs));
    Ok(header)
}

/// Restores a performance model saved by [`save_perf_model`].
///
/// # Errors
///
/// Returns [`LoadModelError`] on malformed input or mismatched shapes.
pub fn load_perf_model(text: &str) -> Result<PerfModel, LoadModelError> {
    let (header, rest) = text
        .split_once('\n')
        .ok_or_else(|| LoadModelError::BadHeader(text.to_owned()))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    match parts.as_slice() {
        ["adrias-model", kind, ..] if *kind != "perf" => {
            return Err(LoadModelError::WrongKind {
                found: (*kind).to_owned(),
                expected: "perf",
            });
        }
        _ => {}
    }
    let ["adrias-model", _, hidden, block, dropout, lr, epochs, batch, seed, t_mean, t_std] =
        parts[..]
    else {
        return Err(LoadModelError::BadHeader(header.to_owned()));
    };
    let parse_err = || LoadModelError::BadHeader(header.to_owned());
    let cfg = PerfModelConfig {
        hidden: hidden.parse().map_err(|_| parse_err())?,
        block_width: block.parse().map_err(|_| parse_err())?,
        dropout: dropout.parse().map_err(|_| parse_err())?,
        learning_rate: lr.parse().map_err(|_| parse_err())?,
        epochs: epochs.parse().map_err(|_| parse_err())?,
        batch_size: batch.parse().map_err(|_| parse_err())?,
        seed: seed.parse().map_err(|_| parse_err())?,
        // Training-only parallelism knobs are not part of the
        // architecture and are not persisted.
        ..Default::default()
    };
    let target_mean: f32 = t_mean.parse().map_err(|_| parse_err())?;
    let target_std: f32 = t_std.parse().map_err(|_| parse_err())?;
    let tensors = read_tensors(rest)?;
    let mut model = PerfModel::new(cfg);
    let norm = restore_params(tensors, |f| model.visit_params_for_persist_mut(f))?;
    model.set_norms_for_persist(norm, (target_mean, target_std));
    Ok(model)
}

fn restore_params(
    tensors: Vec<(String, Tensor)>,
    mut visit: impl FnMut(&mut dyn FnMut(&mut Tensor)),
) -> Result<Normalizer, LoadModelError> {
    let mut mean = None;
    let mut std = None;
    let mut params = Vec::new();
    for (name, t) in tensors {
        match name.as_str() {
            "norm_mean" => mean = Some(t),
            "norm_std" => std = Some(t),
            _ => params.push((name, t)),
        }
    }
    let mean = mean.ok_or(LoadModelError::ShapeMismatch {
        slot: "norm_mean".to_owned(),
    })?;
    let std = std.ok_or(LoadModelError::ShapeMismatch {
        slot: "norm_std".to_owned(),
    })?;
    let norm = normalizer_from(&mean, &std)?;

    let mut cursor = 0usize;
    let mut error: Option<LoadModelError> = None;
    visit(&mut |p: &mut Tensor| {
        if error.is_some() {
            return;
        }
        match params.get(cursor) {
            Some((name, t)) if t.shape() == p.shape() => {
                *p = t.clone();
                let _ = name;
            }
            Some((name, _)) => {
                error = Some(LoadModelError::ShapeMismatch { slot: name.clone() });
            }
            None => {
                error = Some(LoadModelError::ShapeMismatch {
                    slot: format!("p{cursor} (missing)"),
                });
            }
        }
        cursor += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    if cursor != params.len() {
        return Err(LoadModelError::ShapeMismatch {
            slot: format!(
                "trailing parameters ({} loaded, {} provided)",
                cursor,
                params.len()
            ),
        });
    }
    Ok(norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{PerfRecord, SystemStateDataset, HISTORY_S};
    use crate::PerfDataset;
    use adrias_telemetry::MetricSample;
    use adrias_workloads::{AppSignature, MemoryMode};

    fn rowv(x: f32) -> MetricVec {
        let mut v = MetricVec::zero();
        v.set(Metric::LlcLoads, 1e8 * (1.0 + x));
        v.set(Metric::MemLoads, 4e7 * (1.0 + 0.5 * x));
        v.set(Metric::LinkLatency, 350.0 + 100.0 * x);
        v
    }

    fn trained_system_model() -> SystemStateModel {
        let trace: Vec<MetricSample> = (0..420)
            .map(|t| MetricSample::new(t as f64, rowv(((t as f32) * 0.03).sin())))
            .collect();
        let ds = SystemStateDataset::from_traces(&[trace], 20);
        let mut model = SystemStateModel::new(SystemStateModelConfig {
            epochs: 3,
            hidden: 6,
            block_width: 8,
            ..SystemStateModelConfig::tiny()
        });
        model.train(&ds);
        model
    }

    #[test]
    fn system_model_round_trips() {
        let mut model = trained_system_model();
        let text = save_system_model(&mut model).expect("trained");
        let mut restored = load_system_model(&text).expect("loads");
        let window: Vec<MetricVec> = (0..HISTORY_S).map(|t| rowv((t as f32) * 0.01)).collect();
        let a = model.predict(&window);
        let b = restored.predict(&window);
        for m in Metric::ALL {
            assert!(
                (a.get(m) - b.get(m)).abs() <= 1e-3 * a.get(m).abs().max(1.0),
                "{m}: {} vs {}",
                a.get(m),
                b.get(m)
            );
        }
    }

    #[test]
    fn perf_model_round_trips() {
        let records: Vec<PerfRecord> = (0..24)
            .map(|i| {
                let x = i as f32 / 24.0;
                PerfRecord {
                    app: "a".into(),
                    mode: if i % 2 == 0 {
                        MemoryMode::Local
                    } else {
                        MemoryMode::Remote
                    },
                    history: vec![rowv(x); HISTORY_S],
                    future_120: rowv(x),
                    future_exec: rowv(x),
                    perf: 50.0 + 20.0 * x,
                }
            })
            .collect();
        let sig = AppSignature::new("a", vec![rowv(0.3); 10]);
        let ds = PerfDataset::new(records, std::slice::from_ref(&sig));
        let hats: Vec<Option<MetricVec>> =
            ds.records().iter().map(|r| Some(r.future_120)).collect();
        let mut model = PerfModel::new(PerfModelConfig {
            epochs: 3,
            hidden: 5,
            block_width: 8,
            ..PerfModelConfig::tiny()
        });
        model.train(&ds, &hats);

        let text = save_perf_model(&mut model).expect("trained");
        let mut restored = load_perf_model(&text).expect("loads");
        let window = vec![rowv(0.4); HISTORY_S];
        let a = model.predict(&window, &sig, MemoryMode::Remote, Some(&rowv(0.4)));
        let b = restored.predict(&window, &sig, MemoryMode::Remote, Some(&rowv(0.4)));
        assert!((a - b).abs() <= 1e-3 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn kind_mismatch_is_reported() {
        let mut model = trained_system_model();
        let text = save_system_model(&mut model).expect("trained");
        let err = load_perf_model(&text).unwrap_err();
        assert!(matches!(err, LoadModelError::WrongKind { .. }), "{err}");
    }

    #[test]
    fn truncated_input_is_reported() {
        let mut model = trained_system_model();
        let text = save_system_model(&mut model).expect("trained");
        let lines: Vec<&str> = text.lines().collect();
        let truncated = lines[..lines.len() / 2].join("\n");
        assert!(load_system_model(&truncated).is_err());
    }

    #[test]
    fn garbage_header_is_reported() {
        let err = load_system_model("nonsense\n").unwrap_err();
        assert!(err.to_string().contains("malformed"));
    }
}
