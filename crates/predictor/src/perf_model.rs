//! The application-performance prediction model (Fig. 11b).
//!
//! Inputs per deployment: the history window `S`, the application
//! signature `k` (both LSTM-encoded), the candidate memory mode (one-hot)
//! and the predicted future system state `Ŝ`. Output: predicted execution
//! time (BE) or p99 (LC), modeled in log space.
//!
//! The paper trains one *universal* BE model over all 17 Spark apps and
//! one LC model over Redis + Memcached, rather than one model per
//! application (§V-B2).

use adrias_core::rng::SeedableRng;
use adrias_core::rng::SliceRandom;
use adrias_core::rng::Xoshiro256pp;

use adrias_nn::{
    accumulate_minibatch, mix_seed, resolved_workers, Adam, GradModel, Layer, Linear, Lstm,
    LstmScratch, MseLoss, NonLinearBlock, Tensor, TrainStats,
};
use adrias_telemetry::{Metric, MetricVec, METRIC_COUNT};
use adrias_workloads::{AppSignature, MemoryMode};

use crate::dataset::{pool_rows, pool_rows_into, seq_tensors, PerfDataset, SEQ_LEN};
use crate::eval::RegressionReport;
use crate::norm::{Normalizer, ScalarNormalizer};
use crate::scratch::PerfScratch;

/// Width of the non-sequence side input: mode one-hot (2) + `Ŝ` (7).
const SIDE_WIDTH: usize = 2 + METRIC_COUNT;

/// Hyper-parameters for [`PerfModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModelConfig {
    /// Hidden width of each LSTM stream.
    pub hidden: usize,
    /// Width of the non-linear blocks.
    pub block_width: usize,
    /// Dropout probability inside the blocks.
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Data-parallel worker threads for training. `0` means auto: the
    /// `ADRIAS_WORKERS` environment variable, else the available cores.
    /// The loss trace is bit-identical for every value.
    pub workers: usize,
    /// Samples per gradient chunk (ghost batch). Chunk boundaries
    /// depend only on this value — never on `workers` — which is what
    /// makes the parallel loss trace deterministic. Batch-norm runs on
    /// ghost-chunk statistics, so very small chunks degrade accuracy;
    /// 16 is stable at this corpus scale.
    pub grad_chunk: usize,
}

impl Default for PerfModelConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            block_width: 48,
            dropout: 0.1,
            learning_rate: 2e-3,
            epochs: 40,
            batch_size: 32,
            seed: 0xBEEF,
            workers: 0,
            grad_chunk: 16,
        }
    }
}

impl PerfModelConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden: 10,
            block_width: 16,
            dropout: 0.05,
            epochs: 20,
            batch_size: 16,
            ..Self::default()
        }
    }
}

/// The universal performance predictor.
#[derive(Debug, Clone)]
pub struct PerfModel {
    cfg: PerfModelConfig,
    lstm_s1: Lstm,
    lstm_s2: Lstm,
    lstm_k1: Lstm,
    lstm_k2: Lstm,
    blocks: Vec<NonLinearBlock>,
    out: Linear,
    metric_norm: Option<Normalizer>,
    target_norm: Option<ScalarNormalizer>,
    train_stats: Option<TrainStats>,
    version: u64,
}

impl PerfModel {
    /// Creates an untrained model.
    pub fn new(cfg: PerfModelConfig) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
        let lstm_s1 = Lstm::new(METRIC_COUNT, cfg.hidden, &mut rng);
        let lstm_s2 = Lstm::new(cfg.hidden, cfg.hidden, &mut rng);
        let lstm_k1 = Lstm::new(METRIC_COUNT, cfg.hidden, &mut rng);
        let lstm_k2 = Lstm::new(cfg.hidden, cfg.hidden, &mut rng);
        let concat = 2 * cfg.hidden + SIDE_WIDTH;
        let blocks = vec![
            NonLinearBlock::new(concat, cfg.block_width, cfg.dropout, &mut rng),
            NonLinearBlock::new(cfg.block_width, cfg.block_width, cfg.dropout, &mut rng),
            NonLinearBlock::new(cfg.block_width, cfg.block_width, cfg.dropout, &mut rng),
        ];
        let out = Linear::new(cfg.block_width, 1, &mut rng);
        Self {
            cfg,
            lstm_s1,
            lstm_s2,
            lstm_k1,
            lstm_k2,
            blocks,
            out,
            metric_norm: None,
            target_norm: None,
            train_stats: None,
            version: 0,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &PerfModelConfig {
        &self.cfg
    }

    /// Whether [`PerfModel::train`] has run.
    pub fn is_trained(&self) -> bool {
        self.metric_norm.is_some()
    }

    /// Overrides the worker-thread count used by batched inference
    /// (`0` = auto via `ADRIAS_WORKERS`/parallelism). Results are
    /// bit-identical at any setting; this only tunes dispatch.
    pub fn set_workers(&mut self, workers: usize) {
        self.cfg.workers = workers;
    }

    /// Work counters from the most recent [`PerfModel::train`] call
    /// (`None` before training, and for models restored from a
    /// persisted snapshot).
    pub fn last_train_stats(&self) -> Option<TrainStats> {
        self.train_stats
    }

    /// The model's version id. `0` for a freshly constructed model;
    /// the online-adaptation loop bumps it on every fine-tuned
    /// candidate so swap audits can name incumbent and candidate.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Sets the version id (used when deriving a fine-tuned candidate
    /// from an incumbent).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Overrides the epoch budget for subsequent [`PerfModel::train`]
    /// calls — online fine-tuning passes run far fewer epochs than the
    /// original offline fit.
    pub fn set_epochs(&mut self, epochs: usize) {
        self.cfg.epochs = epochs;
    }

    fn forward(
        &mut self,
        seq_s: &[Tensor],
        seq_k: &[Tensor],
        side: &Tensor,
        train: bool,
    ) -> Tensor {
        let h_s = self.lstm_s2.forward_last(&self.lstm_s1.forward_seq(seq_s));
        let h_k = self.lstm_k2.forward_last(&self.lstm_k1.forward_seq(seq_k));
        let mut x = h_s.hcat(&h_k).hcat(side);
        for b in &mut self.blocks {
            x = b.forward(&x, train);
        }
        self.out.forward(&x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) {
        let mut g = self.out.backward(grad_out);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        let h = self.cfg.hidden;
        let d_h_s = g.columns(0, h);
        let d_h_k = g.columns(h, 2 * h);
        let d_seq_s = self.lstm_s2.backward_last(&d_h_s);
        self.lstm_s1.backward_seq(&d_seq_s);
        let d_seq_k = self.lstm_k2.backward_last(&d_h_k);
        self.lstm_k1.backward_seq(&d_seq_k);
    }

    fn zero_grad(&mut self) {
        self.lstm_s1.zero_grad();
        self.lstm_s2.zero_grad();
        self.lstm_k1.zero_grad();
        self.lstm_k2.zero_grad();
        for b in &mut self.blocks {
            b.zero_grad();
        }
        self.out.zero_grad();
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.lstm_s1.visit_params(f);
        self.lstm_s2.visit_params(f);
        self.lstm_k1.visit_params(f);
        self.lstm_k2.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.out.visit_params(f);
    }

    /// Rebases every dropout stream on `seed` (salted per block), so a
    /// chunk clone's masks depend only on `(run seed, step, chunk)`.
    fn reseed_dropout(&mut self, seed: u64) {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.reseed_dropout(seed, i as u64 + 1);
        }
    }

    /// Persistence hook: the captured normalizers, if trained. The
    /// scalar target normalizer is returned as `(mean, std)`.
    pub(crate) fn norms_for_persist(&self) -> Option<(Normalizer, (f32, f32))> {
        let metric = self.metric_norm.clone()?;
        let target = self.target_norm?;
        Some((metric, (target.mean(), target.std())))
    }

    /// Persistence hook: restores the normalizers on load.
    pub(crate) fn set_norms_for_persist(&mut self, metric: Normalizer, target: (f32, f32)) {
        self.metric_norm = Some(metric);
        self.target_norm = Some(ScalarNormalizer::from_parts(target.0, target.1));
    }

    /// Persistence hook: visits parameters read-only in stable order,
    /// then the batch-norm running statistics.
    pub(crate) fn visit_params_for_persist(&mut self, f: &mut dyn FnMut(&Tensor)) {
        self.visit_params(&mut |p, _| f(p));
        for b in &mut self.blocks {
            b.visit_buffers(&mut |p| f(p));
        }
    }

    /// Persistence hook: visits parameters mutably in stable order, then
    /// the batch-norm running statistics.
    pub(crate) fn visit_params_for_persist_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.visit_params(&mut |p, _| f(p));
        for b in &mut self.blocks {
            b.visit_buffers(f);
        }
    }

    /// Builds the side-input tensor (mode one-hot ++ normalized `Ŝ`) for
    /// a batch of records.
    fn side_tensor(ds: &PerfDataset, idxs: &[usize], s_hats: &[Option<MetricVec>]) -> Tensor {
        Tensor::from_fn(idxs.len(), SIDE_WIDTH, |b, c| {
            let i = idxs[b];
            let mode = ds.records()[i].mode.one_hot();
            if c < 2 {
                mode[c]
            } else {
                match &s_hats[i] {
                    Some(vec) => ds.metric_norm().normalize(vec).get(Metric::ALL[c - 2]),
                    None => 0.0,
                }
            }
        })
    }

    fn batch(
        &self,
        ds: &PerfDataset,
        idxs: &[usize],
        s_hats: &[Option<MetricVec>],
    ) -> (Vec<Tensor>, Vec<Tensor>, Tensor, Tensor) {
        let windows_s: Vec<_> = idxs.iter().map(|&i| ds.history_window(i)).collect();
        let windows_k: Vec<_> = idxs.iter().map(|&i| ds.signature_window(i)).collect();
        let seq_s = seq_tensors(&windows_s);
        let seq_k = seq_tensors(&windows_k);
        let side = Self::side_tensor(ds, idxs, s_hats);
        let target = Tensor::from_fn(idxs.len(), 1, |b, _| ds.target(idxs[b]));
        (seq_s, seq_k, side, target)
    }

    /// Trains on `dataset`, feeding `s_hats[i]` as the `Ŝ` input of
    /// record `i` (`None` ⇒ zeros, the `{None,·}` ablation variant).
    /// Returns the mean loss per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `s_hats.len() != dataset.len()`.
    pub fn train(&mut self, dataset: &PerfDataset, s_hats: &[Option<MetricVec>]) -> Vec<f32> {
        assert_eq!(
            s_hats.len(),
            dataset.len(),
            "one Ŝ entry required per record"
        );
        self.metric_norm = Some(dataset.metric_norm().clone());
        self.target_norm = Some(*dataset.target_norm());
        let workers = resolved_workers(self.cfg.workers);
        let grad_chunk = self.cfg.grad_chunk.max(1);
        let seed = self.cfg.seed;
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x7EA1);
        let mut opt = Adam::new(self.cfg.learning_rate);
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.cfg.epochs);
        let mut step = 0u64;
        let mut stats = TrainStats::new();
        for _ in 0..self.cfg.epochs {
            idx.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for minibatch in idx.chunks(self.cfg.batch_size) {
                stats.record_minibatch(minibatch.len(), grad_chunk);
                let step_now = step;
                let loss = accumulate_minibatch(
                    self,
                    minibatch,
                    grad_chunk,
                    workers,
                    &|m, chunk, idxs| {
                        m.reseed_dropout(mix_seed(&[seed, step_now, chunk as u64]));
                        let (seq_s, seq_k, side, target) = m.batch(dataset, idxs, s_hats);
                        let mut loss_fn = MseLoss::new();
                        let pred = m.forward(&seq_s, &seq_k, &side, true);
                        let l = loss_fn.forward(&pred, &target);
                        let grad = loss_fn.backward();
                        m.backward(&grad);
                        l
                    },
                );
                opt.begin_step();
                self.visit_params(&mut |p, g| opt.update(p, g));
                total += f64::from(loss);
                batches += 1;
                step += 1;
            }
            epoch_losses.push((total / batches.max(1) as f64) as f32);
            stats.record_epoch();
        }
        self.train_stats = Some(stats);
        epoch_losses
    }

    /// Evaluates on a test dataset, returning the report in original
    /// performance units (seconds / milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if untrained, the dataset is empty, or `s_hats` misaligns.
    pub fn evaluate(
        &mut self,
        dataset: &PerfDataset,
        s_hats: &[Option<MetricVec>],
    ) -> RegressionReport {
        assert!(self.is_trained(), "evaluate before train");
        assert!(!dataset.is_empty(), "empty evaluation dataset");
        assert_eq!(s_hats.len(), dataset.len(), "Ŝ misalignment");
        let target_norm = self.target_norm.expect("trained");
        let mut truth = Vec::with_capacity(dataset.len());
        let mut pred = Vec::with_capacity(dataset.len());
        let idx: Vec<usize> = (0..dataset.len()).collect();
        for chunk in idx.chunks(self.cfg.batch_size.max(1)) {
            let (seq_s, seq_k, side, _) = self.batch(dataset, chunk, s_hats);
            let out = self.forward(&seq_s, &seq_k, &side, false);
            for (b, &i) in chunk.iter().enumerate() {
                truth.push(dataset.records()[i].perf);
                pred.push(
                    target_norm
                        .denormalize(out.get(b, 0).clamp(-10.0, 10.0))
                        .exp(),
                );
            }
        }
        RegressionReport::new(&truth, &pred)
    }

    /// Per-application evaluation (MAE plots of Figs. 13c / 14a).
    pub fn evaluate_per_app(
        &mut self,
        dataset: &PerfDataset,
        s_hats: &[Option<MetricVec>],
    ) -> Vec<(String, RegressionReport)> {
        let mut apps: Vec<String> = dataset
            .records()
            .iter()
            .map(|r| r.app.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        apps.sort();
        let overall = self.evaluate(dataset, s_hats);
        apps.into_iter()
            .map(|app| {
                let (truth, pred): (Vec<f32>, Vec<f32>) = dataset
                    .records()
                    .iter()
                    .zip(&overall.pairs)
                    .filter(|(r, _)| r.app == app)
                    .map(|(_, &(t, p))| (t, p))
                    .unzip();
                (app, RegressionReport::new(&truth, &pred))
            })
            .collect()
    }

    /// Predicts the performance of one arriving application, in original
    /// units.
    ///
    /// `history_1hz` is the raw Watcher window, `signature` the stored
    /// isolated-remote signature, `s_hat` the (raw) predicted future
    /// state from the system model, `None` to omit it.
    ///
    /// # Panics
    ///
    /// Panics if untrained or the inputs are empty.
    pub fn predict(
        &mut self,
        history_1hz: &[MetricVec],
        signature: &AppSignature,
        mode: MemoryMode,
        s_hat: Option<&MetricVec>,
    ) -> f32 {
        self.predict_batch(&[PerfQuery {
            history: history_1hz,
            signature,
            mode,
            s_hat,
        }])
        .pop()
        .expect("non-empty batch yields a prediction")
    }

    /// Batched [`PerfModel::predict`]: stacks all queries into one
    /// forward pass. Entry `i` of the result is bit-identical to
    /// `predict` on `queries[i]`. The orchestrator uses this to score
    /// both memory modes of an arriving application in a single pass.
    ///
    /// # Panics
    ///
    /// Panics if untrained, `queries` is empty, or any input is empty.
    pub fn predict_batch(&mut self, queries: &[PerfQuery<'_>]) -> Vec<f32> {
        assert!(!queries.is_empty(), "empty prediction batch");
        let metric_norm = self
            .metric_norm
            .clone()
            .expect("PerfModel::predict before train");
        let target_norm = self.target_norm.expect("trained");
        let windows_s: Vec<_> = queries
            .iter()
            .map(|q| metric_norm.normalize_window(&pool_rows(q.history, SEQ_LEN)))
            .collect();
        let windows_k: Vec<_> = queries
            .iter()
            .map(|q| metric_norm.normalize_window(q.signature.resampled(SEQ_LEN).rows()))
            .collect();
        let seq_s = seq_tensors(&windows_s);
        let seq_k = seq_tensors(&windows_k);
        let side = Tensor::from_fn(queries.len(), SIDE_WIDTH, |b, c| {
            if c < 2 {
                queries[b].mode.one_hot()[c]
            } else {
                match queries[b].s_hat {
                    Some(v) => metric_norm.normalize(v).get(Metric::ALL[c - 2]),
                    None => 0.0,
                }
            }
        });
        let out = self.forward(&seq_s, &seq_k, &side, false);
        (0..queries.len())
            .map(|b| {
                target_norm
                    .denormalize(out.get(b, 0).clamp(-10.0, 10.0))
                    .exp()
            })
            .collect()
    }

    /// Builds the reusable inference scratch for
    /// [`PerfModel::predict_both_into`], capturing this model's shapes
    /// and batch-norm evaluation scales.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained (the scratch snapshots the
    /// batch-norm running statistics, which training mutates).
    pub fn make_scratch(&self) -> PerfScratch {
        assert!(self.is_trained(), "make_scratch before train");
        PerfScratch {
            pooled: Vec::with_capacity(SEQ_LEN),
            seq_s: (0..SEQ_LEN)
                .map(|_| Tensor::zeros(2, METRIC_COUNT))
                .collect(),
            seq_k: (0..SEQ_LEN)
                .map(|_| Tensor::zeros(2, METRIC_COUNT))
                .collect(),
            s1: LstmScratch::new(&self.lstm_s1, 2, SEQ_LEN),
            s2: LstmScratch::new(&self.lstm_s2, 2, SEQ_LEN),
            k1: LstmScratch::new(&self.lstm_k1, 2, SEQ_LEN),
            k2: LstmScratch::new(&self.lstm_k2, 2, SEQ_LEN),
            inv_std: self.blocks.iter().map(|b| b.eval_inv_std()).collect(),
            concat: Tensor::zeros(2, 2 * self.cfg.hidden + SIDE_WIDTH),
            x0: Tensor::zeros(2, self.cfg.block_width),
            x1: Tensor::zeros(2, self.cfg.block_width),
            out: Tensor::zeros(2, 1),
        }
    }

    /// Normalizes a stored signature to the [`SEQ_LEN`]-row window the
    /// model consumes — the exact rows [`PerfModel::predict_batch`]
    /// derives per query. The orchestrator precomputes this once per
    /// known application so the per-decision path never resamples or
    /// allocates the signature again.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained.
    pub fn normalized_signature_window(&self, signature: &AppSignature) -> Vec<MetricVec> {
        let metric_norm = self
            .metric_norm
            .as_ref()
            .expect("PerfModel::predict before train");
        metric_norm.normalize_window(signature.resampled(SEQ_LEN).rows())
    }

    /// Runs the **history branch** (pool → normalize → stacked history
    /// LSTMs) into `scratch`, returning the batch-2 feature tensor
    /// `h_s`. The result depends only on the raw history window — not
    /// on the application, memory mode or `Ŝ` — so the orchestrator
    /// memoises it per Watcher `WindowStamp` and skips the whole branch
    /// on a stamp hit.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or the history is empty.
    pub fn history_features_into<'a>(
        &self,
        history_1hz: &[MetricVec],
        scratch: &'a mut PerfScratch,
    ) -> &'a Tensor {
        let metric_norm = self
            .metric_norm
            .as_ref()
            .expect("PerfModel::predict before train");
        let PerfScratch {
            pooled,
            seq_s,
            s1,
            s2,
            ..
        } = scratch;
        pool_rows_into(history_1hz, SEQ_LEN, pooled);
        for r in pooled.iter_mut() {
            *r = metric_norm.normalize(r);
        }
        // Both batch rows share the same history window; only the side
        // input downstream differs per mode. Same fill as `seq_tensors`
        // over two identical windows.
        for (t, x) in seq_s.iter_mut().enumerate() {
            let d = x.data_mut();
            for (c, &m) in Metric::ALL.iter().enumerate() {
                let v = pooled[t].get(m);
                d[c] = v;
                d[METRIC_COUNT + c] = v;
            }
        }
        self.lstm_s2
            .forward_last_scratch(self.lstm_s1.forward_seq_scratch(seq_s, s1), s2)
    }

    /// Runs the **signature branch** (stacked signature LSTMs) into
    /// `scratch`, returning the batch-2 feature tensor `h_k`. The
    /// result depends only on the stored application signature, so the
    /// orchestrator computes it once per known application at
    /// construction time and never re-runs this branch on the decision
    /// path.
    ///
    /// `sig_window` must come from
    /// [`PerfModel::normalized_signature_window`] on this model.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or `sig_window` has the wrong
    /// length.
    pub fn signature_features_into<'a>(
        &self,
        sig_window: &[MetricVec],
        scratch: &'a mut PerfScratch,
    ) -> &'a Tensor {
        assert_eq!(
            sig_window.len(),
            SEQ_LEN,
            "signature window must be normalized_signature_window output"
        );
        let PerfScratch { seq_k, k1, k2, .. } = scratch;
        for (t, x) in seq_k.iter_mut().enumerate() {
            let d = x.data_mut();
            for (c, &m) in Metric::ALL.iter().enumerate() {
                let v = sig_window[t].get(m);
                d[c] = v;
                d[METRIC_COUNT + c] = v;
            }
        }
        self.lstm_k2
            .forward_last_scratch(self.lstm_k1.forward_seq_scratch(seq_k, k1), k2)
    }

    /// The prediction **head** on precomputed branch features: manual
    /// `[h_s | h_k | side]` concatenation, the batch-norm MLP blocks and
    /// the read-out. `h_s`/`h_k` must be (copies of) the outputs of
    /// [`PerfModel::history_features_into`] /
    /// [`PerfModel::signature_features_into`] on this model; the result
    /// is bit-identical to [`PerfModel::predict_both_into`] with the
    /// corresponding raw inputs.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or the feature shapes mismatch.
    pub fn predict_both_from_features(
        &self,
        h_s: &Tensor,
        h_k: &Tensor,
        modes: [MemoryMode; 2],
        s_hat: Option<&MetricVec>,
        scratch: &mut PerfScratch,
    ) -> [f32; 2] {
        let PerfScratch {
            inv_std,
            concat,
            x0,
            x1,
            out,
            ..
        } = scratch;
        self.head(h_s, h_k, modes, s_hat, inv_std, concat, x0, x1, out)
    }

    /// Allocation-free scoring of both candidate memory modes in one
    /// batch-2 forward: the decision fast lane's cache-miss path.
    /// Returns the predicted performance for `modes[0]` and `modes[1]`,
    /// bit-identical to [`PerfModel::predict_batch`] over the
    /// equivalent two queries (pinned by tests), but takes `&self`,
    /// reuses `scratch` and performs zero heap allocations in steady
    /// state. Composition of [`PerfModel::history_features_into`],
    /// [`PerfModel::signature_features_into`] and
    /// [`PerfModel::predict_both_from_features`].
    ///
    /// `sig_window` must come from
    /// [`PerfModel::normalized_signature_window`] on this model.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained, the history is empty, or
    /// `sig_window`/`scratch` do not match this model.
    pub fn predict_both_into(
        &self,
        history_1hz: &[MetricVec],
        sig_window: &[MetricVec],
        modes: [MemoryMode; 2],
        s_hat: Option<&MetricVec>,
        scratch: &mut PerfScratch,
    ) -> [f32; 2] {
        self.history_features_into(history_1hz, scratch);
        self.signature_features_into(sig_window, scratch);
        let PerfScratch {
            s1: _,
            s2,
            k1: _,
            k2,
            inv_std,
            concat,
            x0,
            x1,
            out,
            ..
        } = scratch;
        let h_s = s2.last_output(SEQ_LEN);
        let h_k = k2.last_output(SEQ_LEN);
        self.head(h_s, h_k, modes, s_hat, inv_std, concat, x0, x1, out)
    }

    #[allow(clippy::too_many_arguments)]
    fn head(
        &self,
        h_s: &Tensor,
        h_k: &Tensor,
        modes: [MemoryMode; 2],
        s_hat: Option<&MetricVec>,
        inv_std: &[Vec<f32>],
        concat: &mut Tensor,
        x0: &mut Tensor,
        x1: &mut Tensor,
        out: &mut Tensor,
    ) -> [f32; 2] {
        let metric_norm = self
            .metric_norm
            .as_ref()
            .expect("PerfModel::predict before train");
        let target_norm = self.target_norm.expect("trained");
        let h = self.cfg.hidden;
        let cw = 2 * h + SIDE_WIDTH;
        let norm_s_hat = s_hat.map(|v| metric_norm.normalize(v));
        // Manual `h_s ++ h_k ++ side` concatenation (what `hcat` does,
        // without the two intermediate tensors).
        {
            let hs = h_s.data();
            let hk = h_k.data();
            let cd = concat.data_mut();
            for (b, mode) in modes.iter().enumerate() {
                let row = &mut cd[b * cw..(b + 1) * cw];
                row[..h].copy_from_slice(&hs[b * h..(b + 1) * h]);
                row[h..2 * h].copy_from_slice(&hk[b * h..(b + 1) * h]);
                let one_hot = mode.one_hot();
                row[2 * h] = one_hot[0];
                row[2 * h + 1] = one_hot[1];
                for (c, &m) in Metric::ALL.iter().enumerate() {
                    row[2 * h + 2 + c] = match &norm_s_hat {
                        Some(v) => v.get(m),
                        None => 0.0,
                    };
                }
            }
        }
        let mut cur: &mut Tensor = x0;
        let mut next: &mut Tensor = x1;
        self.blocks[0].forward_eval_into(concat, cur, &inv_std[0]);
        for (i, b) in self.blocks.iter().enumerate().skip(1) {
            b.forward_eval_into(cur, next, &inv_std[i]);
            std::mem::swap(&mut cur, &mut next);
        }
        self.out.forward_into(cur, out);
        let perf = |b: usize| {
            target_norm
                .denormalize(out.get(b, 0).clamp(-10.0, 10.0))
                .exp()
        };
        [perf(0), perf(1)]
    }
}

/// One inference request for [`PerfModel::predict_batch`].
#[derive(Debug, Clone, Copy)]
pub struct PerfQuery<'a> {
    /// Raw 1 Hz Watcher history window.
    pub history: &'a [MetricVec],
    /// Stored application signature.
    pub signature: &'a AppSignature,
    /// Candidate memory mode.
    pub mode: MemoryMode,
    /// Predicted future system state (raw); `None` to omit.
    pub s_hat: Option<&'a MetricVec>,
}

impl GradModel for PerfModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        PerfModel::visit_params(self, f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for b in &mut self.blocks {
            b.visit_buffers(f);
        }
    }

    fn zero_grad(&mut self) {
        PerfModel::zero_grad(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{PerfRecord, HISTORY_S};
    use adrias_core::rng::Rng;

    /// Builds a synthetic perf dataset whose target is a deterministic
    /// function of (app, mode, future state) — the structure the real
    /// traces have.
    fn synthetic_dataset(n: usize, seed: u64) -> (PerfDataset, Vec<Option<MetricVec>>) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let apps = ["alpha", "beta", "gamma"];
        let base = [40.0f32, 80.0, 60.0];
        let penalty = [1.1f32, 1.9, 1.3];
        let mut records = Vec::new();
        for _ in 0..n {
            let a = rng.gen_range(0..apps.len());
            let mode = if rng.gen_bool(0.5) {
                MemoryMode::Local
            } else {
                MemoryMode::Remote
            };
            let load = rng.gen_range(0.0f32..2.0);
            let mut history = Vec::with_capacity(HISTORY_S);
            for t in 0..HISTORY_S {
                let mut v = MetricVec::zero();
                let x = load + 0.1 * ((t as f32) * 0.2).sin();
                v.set(Metric::LlcLoads, 1e8 * (1.0 + x));
                v.set(Metric::MemLoads, 4e7 * (1.0 + x));
                v.set(Metric::LinkLatency, 350.0 + 250.0 * x);
                history.push(v);
            }
            let mut future = MetricVec::zero();
            future.set(Metric::LlcLoads, 1e8 * (1.0 + load));
            future.set(Metric::MemLoads, 4e7 * (1.0 + load));
            future.set(Metric::LinkLatency, 350.0 + 250.0 * load);
            let slow = match mode {
                MemoryMode::Local => 1.0 + 0.3 * load,
                MemoryMode::Remote => penalty[a] * (1.0 + 0.6 * load),
            };
            records.push(PerfRecord {
                app: apps[a].to_owned(),
                mode,
                history,
                future_120: future,
                future_exec: future,
                perf: base[a] * slow,
            });
        }
        let signatures: Vec<AppSignature> = apps
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let rows: Vec<MetricVec> = (0..40)
                    .map(|t| {
                        let mut v = MetricVec::zero();
                        v.set(Metric::LlcLoads, 1e8 * (i as f32 + 1.0));
                        v.set(Metric::MemLoads, 2e7 * ((t % 5) as f32 + i as f32));
                        v
                    })
                    .collect();
                AppSignature::new(*name, rows)
            })
            .collect();
        let ds = PerfDataset::new(records, &signatures);
        let s_hats: Vec<Option<MetricVec>> =
            ds.records().iter().map(|r| Some(r.future_120)).collect();
        (ds, s_hats)
    }

    #[test]
    fn training_learns_mode_and_app_structure() {
        let (ds, s_hats) = synthetic_dataset(240, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let (train, test) = ds.split(0.6, &mut rng);
        let train_hats: Vec<Option<MetricVec>> =
            train.records().iter().map(|r| Some(r.future_120)).collect();
        let test_hats: Vec<Option<MetricVec>> =
            test.records().iter().map(|r| Some(r.future_120)).collect();
        let _ = s_hats;
        let mut model = PerfModel::new(PerfModelConfig::tiny());
        let losses = model.train(&train, &train_hats);
        assert!(losses.last().unwrap() < &(losses[0] * 0.5), "{losses:?}");
        let stats = model.last_train_stats().expect("trained");
        assert_eq!(stats.epochs as usize, model.config().epochs);
        assert_eq!(stats.samples as usize, train.len() * model.config().epochs);
        let report = model.evaluate(&test, &test_hats);
        assert!(report.r2 > 0.7, "R² too low: {}", report.r2);
    }

    #[test]
    fn per_app_reports_cover_all_apps() {
        let (ds, s_hats) = synthetic_dataset(120, 6);
        let mut model = PerfModel::new(PerfModelConfig::tiny());
        model.train(&ds, &s_hats);
        let per_app = model.evaluate_per_app(&ds, &s_hats);
        let names: Vec<&str> = per_app.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "gamma"]);
        for (_, r) in &per_app {
            assert!(!r.is_empty());
        }
    }

    #[test]
    fn predict_distinguishes_local_from_remote() {
        let (ds, s_hats) = synthetic_dataset(240, 7);
        let mut model = PerfModel::new(PerfModelConfig::tiny());
        model.train(&ds, &s_hats);
        // "beta" has a 1.9× remote penalty in the generator.
        let rec = ds
            .records()
            .iter()
            .find(|r| r.app == "beta")
            .expect("beta present");
        let sig_rows = ds.signature("beta").unwrap().to_vec();
        let sig = AppSignature::new("beta", sig_rows);
        let local = model.predict(&rec.history, &sig, MemoryMode::Local, Some(&rec.future_120));
        let remote = model.predict(
            &rec.history,
            &sig,
            MemoryMode::Remote,
            Some(&rec.future_120),
        );
        assert!(
            remote > 1.2 * local,
            "remote {remote} should clearly exceed local {local} for beta"
        );
    }

    #[test]
    fn predict_both_into_is_bit_identical_to_predict_batch() {
        let (ds, s_hats) = synthetic_dataset(120, 11);
        let mut model = PerfModel::new(PerfModelConfig::tiny());
        model.train(&ds, &s_hats);
        let mut scratch = model.make_scratch();
        for (i, app) in ["alpha", "beta"].iter().enumerate() {
            let rec = ds
                .records()
                .iter()
                .find(|r| &r.app == app)
                .expect("app present");
            let sig = AppSignature::new(*app, ds.signature(app).unwrap().to_vec());
            let sig_window = model.normalized_signature_window(&sig);
            let s_hat = if i == 0 { Some(&rec.future_120) } else { None };
            let want = model.predict_batch(&[
                PerfQuery {
                    history: &rec.history,
                    signature: &sig,
                    mode: MemoryMode::Local,
                    s_hat,
                },
                PerfQuery {
                    history: &rec.history,
                    signature: &sig,
                    mode: MemoryMode::Remote,
                    s_hat,
                },
            ]);
            let got = model.predict_both_into(
                &rec.history,
                &sig_window,
                [MemoryMode::Local, MemoryMode::Remote],
                s_hat,
                &mut scratch,
            );
            assert_eq!(got[0].to_bits(), want[0].to_bits(), "{app}: local diverged");
            assert_eq!(
                got[1].to_bits(),
                want[1].to_bits(),
                "{app}: remote diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "before train")]
    fn predict_before_train_panics() {
        let mut model = PerfModel::new(PerfModelConfig::tiny());
        let sig = AppSignature::new("x", vec![MetricVec::zero(); 4]);
        let _ = model.predict(&[MetricVec::zero(); 10], &sig, MemoryMode::Local, None);
    }

    #[test]
    #[should_panic(expected = "one Ŝ entry required per record")]
    fn train_rejects_misaligned_s_hats() {
        let (ds, _) = synthetic_dataset(40, 8);
        let mut model = PerfModel::new(PerfModelConfig::tiny());
        model.train(&ds, &[]);
    }
}
