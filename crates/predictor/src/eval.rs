//! Regression-accuracy reporting (`R²`, MAE, residual pairs).

use adrias_telemetry::stats;

/// Accuracy report for one regression evaluation.
///
/// Keeps the raw `(truth, prediction)` pairs so the benches can print
/// actual-vs-predicted residual plots (Figs. 12, 13d, 14b).
///
/// # Examples
///
/// ```
/// use adrias_predictor::RegressionReport;
///
/// let report = RegressionReport::new(&[1.0, 2.0, 3.0], &[1.1, 1.9, 3.2]);
/// assert!(report.r2 > 0.9);
/// assert!(report.mae < 0.2);
/// assert_eq!(report.pairs.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Coefficient of determination.
    pub r2: f32,
    /// Mean absolute error.
    pub mae: f32,
    /// `(truth, prediction)` pairs in evaluation order.
    pub pairs: Vec<(f32, f32)>,
}

impl RegressionReport {
    /// Builds a report from aligned truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or their lengths differ.
    pub fn new(truth: &[f32], pred: &[f32]) -> Self {
        assert_eq!(truth.len(), pred.len(), "report inputs must align");
        assert!(!truth.is_empty(), "report needs at least one sample");
        Self {
            r2: stats::r2_score(truth, pred),
            mae: stats::mae(truth, pred),
            pairs: truth.iter().copied().zip(pred.iter().copied()).collect(),
        }
    }

    /// Number of evaluated samples.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the report holds no samples (never true for constructed
    /// reports; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Mean of the absolute truth values, useful for relating MAE to
    /// scale (the paper relates MAEs to median performance).
    pub fn truth_scale(&self) -> f32 {
        let vals: Vec<f32> = self.pairs.iter().map(|(t, _)| t.abs()).collect();
        stats::mean(&vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let r = RegressionReport::new(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(r.r2, 1.0);
        assert_eq!(r.mae, 0.0);
        assert!(!r.is_empty());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn truth_scale_averages_magnitudes() {
        let r = RegressionReport::new(&[-2.0, 4.0], &[0.0, 0.0]);
        assert_eq!(r.truth_scale(), 3.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_inputs_rejected() {
        let _ = RegressionReport::new(&[1.0], &[1.0, 2.0]);
    }
}
