//! Reusable inference scratch for the decision fast lane.
//!
//! The steady-state orchestrator path calls the two predictor models on
//! every application arrival. The general-purpose `predict*` entry
//! points allocate their pooled windows, sequence tensors and LSTM
//! activations per call; at decision rates that allocation churn
//! dominates. This module holds the buffer bundles —
//! [`SystemScratch`] and [`PerfScratch`] — that
//! [`crate::SystemStateModel::predict_into`] and
//! [`crate::PerfModel::predict_both_into`] reuse across calls so the
//! hot path performs **zero heap allocations** (asserted by the
//! orchestrator's `alloc_free` test with a counting global allocator).
//!
//! A scratch is built from a *trained* model
//! ([`crate::SystemStateModel::make_scratch`] /
//! [`crate::PerfModel::make_scratch`]) and captures shape information
//! plus the batch-norm evaluation scales (`1/√(running_var+eps)`) of
//! that model; using it with a different or re-trained model panics on
//! the shape checks or silently mixes statistics, so rebuild scratches
//! after any training step. Outputs are bit-identical to the
//! allocating entry points — every kernel the fast lane uses computes
//! the exact per-element expressions of its allocating counterpart.

use adrias_nn::{LstmScratch, Tensor};
use adrias_telemetry::MetricVec;

/// Reusable buffers for [`crate::SystemStateModel::predict_into`]
/// (batch 1).
///
/// Build with [`crate::SystemStateModel::make_scratch`] after training.
#[derive(Debug, Clone)]
pub struct SystemScratch {
    /// Pooled-and-normalized history window ([`crate::dataset::SEQ_LEN`] rows).
    pub(crate) pooled: Vec<MetricVec>,
    /// Per-timestep `1 × METRIC_COUNT` input tensors.
    pub(crate) seq: Vec<Tensor>,
    /// Activation scratch for the first stacked LSTM.
    pub(crate) lstm1: LstmScratch,
    /// Activation scratch for the second stacked LSTM.
    pub(crate) lstm2: LstmScratch,
    /// Per-block batch-norm evaluation scales, captured at build time.
    pub(crate) inv_std: Vec<Vec<f32>>,
    /// Ping-pong activation buffer for the non-linear blocks.
    pub(crate) x0: Tensor,
    /// Ping-pong activation buffer for the non-linear blocks.
    pub(crate) x1: Tensor,
    /// Read-out staging (`1 × METRIC_COUNT`).
    pub(crate) out: Tensor,
}

/// Reusable buffers for [`crate::PerfModel::predict_both_into`]
/// (batch 2: one row per candidate memory mode).
///
/// Build with [`crate::PerfModel::make_scratch`] after training.
#[derive(Debug, Clone)]
pub struct PerfScratch {
    /// Pooled-and-normalized history window ([`crate::dataset::SEQ_LEN`] rows).
    pub(crate) pooled: Vec<MetricVec>,
    /// Per-timestep `2 × METRIC_COUNT` history input tensors.
    pub(crate) seq_s: Vec<Tensor>,
    /// Per-timestep `2 × METRIC_COUNT` signature input tensors.
    pub(crate) seq_k: Vec<Tensor>,
    /// Activation scratch for the first history LSTM.
    pub(crate) s1: LstmScratch,
    /// Activation scratch for the second history LSTM.
    pub(crate) s2: LstmScratch,
    /// Activation scratch for the first signature LSTM.
    pub(crate) k1: LstmScratch,
    /// Activation scratch for the second signature LSTM.
    pub(crate) k2: LstmScratch,
    /// Per-block batch-norm evaluation scales, captured at build time.
    pub(crate) inv_std: Vec<Vec<f32>>,
    /// Concatenated `[h_s | h_k | side]` block input.
    pub(crate) concat: Tensor,
    /// Ping-pong activation buffer for the non-linear blocks.
    pub(crate) x0: Tensor,
    /// Ping-pong activation buffer for the non-linear blocks.
    pub(crate) x1: Tensor,
    /// Read-out staging (`2 × 1`).
    pub(crate) out: Tensor,
}
