//! The Adrias *Predictor* (§V-B of the paper).
//!
//! Adrias stacks two deep models:
//!
//! 1. a **system-state model** ([`SystemStateModel`]) that receives the
//!    Watcher's history window `S` (120 s × 7 metrics) and forecasts the
//!    mean of every monitored metric over the next 120 s (`Ŝ`);
//! 2. a **performance model** ([`PerfModel`]) that receives `S`, `Ŝ`, the
//!    candidate memory mode and the application signature `k`, and
//!    predicts the execution time (best-effort) or the 99th-percentile
//!    response time (latency-critical) of the arriving application under
//!    that mode.
//!
//! Both follow the paper's architecture: two stacked LSTM layers feeding
//! a triplet of non-linear blocks (Linear→ReLU→BatchNorm→Dropout) and a
//! linear read-out, trained with Adam on MSE.
//!
//! The crate also hosts the evaluation machinery for the accuracy section
//! of the paper: train/test splits ([`dataset`]), `R²`/MAE reports
//! ([`eval`]), the stacked-model input ablation of Fig. 13b
//! ([`ablation`]) and leave-one-out generalization of Fig. 15
//! ([`ablation::leave_one_out`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod dataset;
pub mod eval;
pub mod norm;
pub mod perf_model;
pub mod persist;
pub mod scratch;
pub mod system_model;

pub use ablation::SHatSource;
pub use adrias_nn::Tensor;
pub use dataset::{PerfDataset, PerfRecord, SystemStateDataset};
pub use eval::RegressionReport;
pub use norm::Normalizer;
pub use perf_model::{PerfModel, PerfModelConfig, PerfQuery};
pub use persist::{
    load_perf_model, load_system_model, save_perf_model, save_system_model, LoadModelError,
    SaveModelError,
};
pub use scratch::{PerfScratch, SystemScratch};
pub use system_model::{SystemStateModel, SystemStateModelConfig};
