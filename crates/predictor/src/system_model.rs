//! The system-state prediction model (Fig. 11a of the paper).
//!
//! Input: the Watcher history window `S` (pooled to [`SEQ_LEN`] steps of
//! 7 metrics). Output: the predicted mean value `Ŝ` of each metric over
//! the next horizon window. Architecture per the paper: two stacked LSTM
//! layers, a triplet of non-linear blocks, and a linear read-out.

use adrias_core::rng::SeedableRng;
use adrias_core::rng::SliceRandom;
use adrias_core::rng::Xoshiro256pp;
use adrias_core::thread::map_chunks;

use adrias_nn::{
    accumulate_minibatch, mix_seed, resolved_workers, Adam, GradModel, Layer, Linear, Lstm,
    LstmScratch, MseLoss, NonLinearBlock, Tensor, TrainStats,
};
use adrias_telemetry::{Metric, MetricVec, METRIC_COUNT};

use crate::dataset::{pool_rows, pool_rows_into, seq_tensors, SystemStateDataset, SEQ_LEN};
use crate::eval::RegressionReport;
use crate::norm::Normalizer;
use crate::scratch::SystemScratch;

/// Hyper-parameters for [`SystemStateModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemStateModelConfig {
    /// LSTM hidden width.
    pub hidden: usize,
    /// Width of the non-linear blocks.
    pub block_width: usize,
    /// Dropout probability inside the blocks.
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for initialization, shuffling and dropout.
    pub seed: u64,
    /// Data-parallel worker threads for training. `0` means auto: the
    /// `ADRIAS_WORKERS` environment variable, else the available cores.
    /// The loss trace is bit-identical for every value.
    pub workers: usize,
    /// Samples per gradient chunk (ghost batch). Chunk boundaries
    /// depend only on this value — never on `workers` — which is what
    /// makes the parallel loss trace deterministic. Batch-norm runs on
    /// ghost-chunk statistics, so very small chunks degrade accuracy;
    /// 16 is stable at this corpus scale.
    pub grad_chunk: usize,
}

impl Default for SystemStateModelConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            block_width: 48,
            dropout: 0.1,
            learning_rate: 2e-3,
            epochs: 25,
            batch_size: 32,
            seed: 0xADA5,
            workers: 0,
            grad_chunk: 16,
        }
    }
}

impl SystemStateModelConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden: 12,
            block_width: 16,
            dropout: 0.05,
            learning_rate: 4e-3,
            epochs: 40,
            batch_size: 16,
            ..Self::default()
        }
    }
}

/// The stacked-LSTM system-state forecaster.
///
/// # Examples
///
/// See [`crate::system_model`] module docs and the `train_predictor`
/// example; unit tests below exercise the full train/predict/evaluate
/// cycle on synthetic traces.
#[derive(Debug, Clone)]
pub struct SystemStateModel {
    cfg: SystemStateModelConfig,
    lstm1: Lstm,
    lstm2: Lstm,
    blocks: Vec<NonLinearBlock>,
    out: Linear,
    normalizer: Option<Normalizer>,
    train_stats: Option<TrainStats>,
}

impl SystemStateModel {
    /// Creates an untrained model.
    pub fn new(cfg: SystemStateModelConfig) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
        let lstm1 = Lstm::new(METRIC_COUNT, cfg.hidden, &mut rng);
        let lstm2 = Lstm::new(cfg.hidden, cfg.hidden, &mut rng);
        let blocks = vec![
            NonLinearBlock::new(cfg.hidden, cfg.block_width, cfg.dropout, &mut rng),
            NonLinearBlock::new(cfg.block_width, cfg.block_width, cfg.dropout, &mut rng),
            NonLinearBlock::new(cfg.block_width, cfg.block_width, cfg.dropout, &mut rng),
        ];
        let out = Linear::new(cfg.block_width, METRIC_COUNT, &mut rng);
        Self {
            cfg,
            lstm1,
            lstm2,
            blocks,
            out,
            normalizer: None,
            train_stats: None,
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &SystemStateModelConfig {
        &self.cfg
    }

    /// Whether [`SystemStateModel::train`] has run.
    pub fn is_trained(&self) -> bool {
        self.normalizer.is_some()
    }

    /// Overrides the worker-thread count used by batched inference
    /// (`0` = auto via `ADRIAS_WORKERS`/parallelism). Results are
    /// bit-identical at any setting; this only tunes dispatch.
    pub fn set_workers(&mut self, workers: usize) {
        self.cfg.workers = workers;
    }

    /// Work counters from the most recent [`SystemStateModel::train`]
    /// call (`None` before training, and for models restored from a
    /// persisted snapshot).
    pub fn last_train_stats(&self) -> Option<TrainStats> {
        self.train_stats
    }

    fn forward(&mut self, seq: &[Tensor], train: bool) -> Tensor {
        let h1 = self.lstm1.forward_seq(seq);
        let h2 = self.lstm2.forward_last(&h1);
        let mut x = h2;
        for b in &mut self.blocks {
            x = b.forward(&x, train);
        }
        self.out.forward(&x, train)
    }

    fn backward(&mut self, grad_out: &Tensor) {
        let mut g = self.out.backward(grad_out);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        let d_seq1 = self.lstm2.backward_last(&g);
        self.lstm1.backward_seq(&d_seq1);
    }

    fn zero_grad(&mut self) {
        self.lstm1.zero_grad();
        self.lstm2.zero_grad();
        for b in &mut self.blocks {
            b.zero_grad();
        }
        self.out.zero_grad();
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.lstm1.visit_params(f);
        self.lstm2.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.out.visit_params(f);
    }

    /// Rebases every dropout stream on `seed` (salted per block), so a
    /// chunk clone's masks depend only on `(run seed, step, chunk)`.
    fn reseed_dropout(&mut self, seed: u64) {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.reseed_dropout(seed, i as u64 + 1);
        }
    }

    /// Persistence hook: the captured normalizer, if trained.
    pub(crate) fn normalizer_for_persist(&self) -> Option<Normalizer> {
        self.normalizer.clone()
    }

    /// Persistence hook: restores the normalizer on load.
    pub(crate) fn set_normalizer_for_persist(&mut self, norm: Normalizer) {
        self.normalizer = Some(norm);
    }

    /// Persistence hook: visits parameters read-only in stable order,
    /// then the batch-norm running statistics.
    pub(crate) fn visit_params_for_persist(&mut self, f: &mut dyn FnMut(&Tensor)) {
        self.visit_params(&mut |p, _| f(p));
        for b in &mut self.blocks {
            b.visit_buffers(&mut |p| f(p));
        }
    }

    /// Persistence hook: visits parameters mutably in stable order, then
    /// the batch-norm running statistics.
    pub(crate) fn visit_params_for_persist_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.visit_params(&mut |p, _| f(p));
        for b in &mut self.blocks {
            b.visit_buffers(f);
        }
    }

    /// Trains on `dataset` and returns the mean loss per epoch.
    ///
    /// Each minibatch is split into fixed-size gradient chunks that run
    /// data-parallel on up to `cfg.workers` threads (see
    /// [`accumulate_minibatch`]); the loss trace is bit-identical for
    /// any worker count. The dataset's normalizer is captured so that
    /// [`SystemStateModel::predict`] can consume raw (unnormalized)
    /// windows at run time.
    pub fn train(&mut self, dataset: &SystemStateDataset) -> Vec<f32> {
        self.normalizer = Some(dataset.normalizer().clone());
        let workers = resolved_workers(self.cfg.workers);
        let grad_chunk = self.cfg.grad_chunk.max(1);
        let seed = self.cfg.seed;
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5EED);
        let mut opt = Adam::new(self.cfg.learning_rate);
        let mut epoch_losses = Vec::with_capacity(self.cfg.epochs);
        let mut idx: Vec<usize> = (0..dataset.len()).collect();
        let mut step = 0u64;
        let mut stats = TrainStats::new();
        for _epoch in 0..self.cfg.epochs {
            idx.shuffle(&mut rng);
            let mut total = 0.0f64;
            let mut batches = 0usize;
            for minibatch in idx.chunks(self.cfg.batch_size) {
                stats.record_minibatch(minibatch.len(), grad_chunk);
                let step_now = step;
                let loss = accumulate_minibatch(
                    self,
                    minibatch,
                    grad_chunk,
                    workers,
                    &|m, chunk, idxs| {
                        m.reseed_dropout(mix_seed(&[seed, step_now, chunk as u64]));
                        let (seq, target) = dataset.batch(idxs);
                        let mut loss_fn = MseLoss::new();
                        let pred = m.forward(&seq, true);
                        let l = loss_fn.forward(&pred, &target);
                        let grad = loss_fn.backward();
                        m.backward(&grad);
                        l
                    },
                );
                opt.begin_step();
                self.visit_params(&mut |p, g| opt.update(p, g));
                total += f64::from(loss);
                batches += 1;
                step += 1;
            }
            epoch_losses.push((total / batches.max(1) as f64) as f32);
            stats.record_epoch();
        }
        self.train_stats = Some(stats);
        epoch_losses
    }

    /// Predicts `Ŝ` (denormalized per-metric horizon means) from a raw
    /// 1 Hz history window.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or the window is empty.
    pub fn predict(&mut self, history_1hz: &[MetricVec]) -> MetricVec {
        self.predict_batch(&[history_1hz])
            .pop()
            .expect("non-empty batch yields a prediction")
    }

    /// Batched [`SystemStateModel::predict`]: stacks all windows into
    /// one forward pass. Row `i` of the result is bit-identical to
    /// `predict(histories[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained, `histories` is empty, or any
    /// window is empty.
    pub fn predict_batch(&mut self, histories: &[&[MetricVec]]) -> Vec<MetricVec> {
        assert!(!histories.is_empty(), "empty prediction batch");
        let workers = resolved_workers(self.cfg.workers).min(histories.len());
        if workers > 1 {
            // Every eval-mode forward op is row-independent, so splitting
            // the batch across workers (each on a scratch clone) returns
            // bit-identical rows for any worker count.
            let model: &SystemStateModel = self;
            return map_chunks(histories, workers, |chunk| {
                model.clone().predict_rows(chunk)
            });
        }
        self.predict_rows(histories)
    }

    /// Serial body of [`SystemStateModel::predict_batch`]: one forward
    /// pass over every window in `histories`.
    fn predict_rows(&mut self, histories: &[&[MetricVec]]) -> Vec<MetricVec> {
        let norm = self
            .normalizer
            .clone()
            .expect("SystemStateModel::predict before train");
        let windows: Vec<Vec<MetricVec>> = histories
            .iter()
            .map(|h| norm.normalize_window(&pool_rows(h, SEQ_LEN)))
            .collect();
        let seq = seq_tensors(&windows);
        let out = self.forward(&seq, false);
        (0..histories.len())
            .map(|b| {
                let mut vec = MetricVec::zero();
                for m in Metric::ALL {
                    vec.set(m, out.get(b, m.index()));
                }
                norm.denormalize(&vec)
            })
            .collect()
    }

    /// Builds the reusable inference scratch for
    /// [`SystemStateModel::predict_into`], capturing this model's
    /// shapes and batch-norm evaluation scales.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained (the scratch snapshots the
    /// batch-norm running statistics, which training mutates).
    pub fn make_scratch(&self) -> SystemScratch {
        assert!(self.is_trained(), "make_scratch before train");
        SystemScratch {
            pooled: Vec::with_capacity(SEQ_LEN),
            seq: (0..SEQ_LEN)
                .map(|_| Tensor::zeros(1, METRIC_COUNT))
                .collect(),
            lstm1: LstmScratch::new(&self.lstm1, 1, SEQ_LEN),
            lstm2: LstmScratch::new(&self.lstm2, 1, SEQ_LEN),
            inv_std: self.blocks.iter().map(|b| b.eval_inv_std()).collect(),
            x0: Tensor::zeros(1, self.cfg.block_width),
            x1: Tensor::zeros(1, self.cfg.block_width),
            out: Tensor::zeros(1, METRIC_COUNT),
        }
    }

    /// Allocation-free [`SystemStateModel::predict`]: the decision fast
    /// lane. Bit-identical to `predict(history_1hz)` (pinned by tests)
    /// but takes `&self`, reuses `scratch`'s buffers and performs zero
    /// heap allocations in steady state.
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained, the window is empty, or
    /// `scratch` was built for a different model shape.
    pub fn predict_into(
        &self,
        history_1hz: &[MetricVec],
        scratch: &mut SystemScratch,
    ) -> MetricVec {
        let norm = self
            .normalizer
            .as_ref()
            .expect("SystemStateModel::predict before train");
        let SystemScratch {
            pooled,
            seq,
            lstm1,
            lstm2,
            inv_std,
            x0,
            x1,
            out,
        } = scratch;
        pool_rows_into(history_1hz, SEQ_LEN, pooled);
        for r in pooled.iter_mut() {
            *r = norm.normalize(r);
        }
        // The same fill as `seq_tensors` for a batch of one window.
        for (t, x) in seq.iter_mut().enumerate() {
            let row = x.data_mut();
            for (c, &m) in Metric::ALL.iter().enumerate() {
                row[c] = pooled[t].get(m);
            }
        }
        let h1 = self.lstm1.forward_seq_scratch(seq, lstm1);
        let h2 = self.lstm2.forward_last_scratch(h1, lstm2);
        let mut cur: &mut Tensor = x0;
        let mut next: &mut Tensor = x1;
        self.blocks[0].forward_eval_into(h2, cur, &inv_std[0]);
        for (i, b) in self.blocks.iter().enumerate().skip(1) {
            b.forward_eval_into(cur, next, &inv_std[i]);
            std::mem::swap(&mut cur, &mut next);
        }
        self.out.forward_into(cur, out);
        let mut vec = MetricVec::zero();
        for m in Metric::ALL {
            vec.set(m, out.get(0, m.index()));
        }
        norm.denormalize(&vec)
    }

    /// Evaluates on a test dataset: per-metric `R²` plus the overall
    /// report across all metrics (normalized space for the overall one so
    /// metrics with different scales contribute equally).
    ///
    /// # Panics
    ///
    /// Panics if the model is untrained or `dataset` is empty.
    pub fn evaluate(
        &mut self,
        dataset: &SystemStateDataset,
    ) -> (Vec<(Metric, RegressionReport)>, RegressionReport) {
        assert!(self.is_trained(), "evaluate before train");
        assert!(!dataset.is_empty(), "empty evaluation dataset");
        let mut truth: Vec<Vec<f32>> = vec![Vec::new(); METRIC_COUNT];
        let mut pred: Vec<Vec<f32>> = vec![Vec::new(); METRIC_COUNT];
        let mut truth_norm = Vec::new();
        let mut pred_norm = Vec::new();
        let norm = dataset.normalizer().clone();
        let idx: Vec<usize> = (0..dataset.len()).collect();
        for chunk in idx.chunks(self.cfg.batch_size.max(1)) {
            let (seq, target) = dataset.batch(chunk);
            let out = self.forward(&seq, false);
            for (b, &i) in chunk.iter().enumerate() {
                let raw_target = dataset.samples()[i].target;
                let mut raw_pred = MetricVec::zero();
                for m in Metric::ALL {
                    raw_pred.set(m, out.get(b, m.index()));
                    truth_norm.push(target.get(b, m.index()));
                    pred_norm.push(out.get(b, m.index()));
                }
                let raw_pred = norm.denormalize(&raw_pred);
                for m in Metric::ALL {
                    truth[m.index()].push(raw_target.get(m));
                    pred[m.index()].push(raw_pred.get(m));
                }
            }
        }
        let per_metric = Metric::ALL
            .iter()
            .map(|&m| {
                (
                    m,
                    RegressionReport::new(&truth[m.index()], &pred[m.index()]),
                )
            })
            .collect();
        let overall = RegressionReport::new(&truth_norm, &pred_norm);
        (per_metric, overall)
    }
}

impl GradModel for SystemStateModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        SystemStateModel::visit_params(self, f);
    }

    fn visit_buffers(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for b in &mut self.blocks {
            b.visit_buffers(f);
        }
    }

    fn zero_grad(&mut self) {
        SystemStateModel::zero_grad(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adrias_telemetry::MetricSample;

    /// A synthetic trace with learnable structure: slow sinusoidal
    /// "load" driving several correlated metrics.
    fn synthetic_trace(len: usize, phase: f32) -> Vec<MetricSample> {
        (0..len)
            .map(|t| {
                let x = (t as f32 * 0.01 + phase).sin() * 0.5 + 1.0;
                let mut v = MetricVec::zero();
                v.set(Metric::LlcLoads, 1e8 * x);
                v.set(Metric::LlcMisses, 1e7 * x * x);
                v.set(Metric::MemLoads, 5e7 * x);
                v.set(Metric::MemStores, 2e7 * x);
                v.set(Metric::LinkFlitsTx, 1e6 * (2.0 - x));
                v.set(Metric::LinkFlitsRx, 1.5e6 * (2.0 - x));
                v.set(Metric::LinkLatency, 350.0 + 200.0 * (x - 0.5).max(0.0));
                MetricSample::new(t as f64, v)
            })
            .collect()
    }

    fn dataset() -> SystemStateDataset {
        let traces: Vec<Vec<MetricSample>> = (0..3)
            .map(|i| synthetic_trace(1200, i as f32 * 2.0))
            .collect();
        SystemStateDataset::from_traces(&traces, 15)
    }

    #[test]
    fn untrained_model_reports_untrained() {
        let model = SystemStateModel::new(SystemStateModelConfig::tiny());
        assert!(!model.is_trained());
        assert!(model.last_train_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "before train")]
    fn predict_before_train_panics() {
        let mut model = SystemStateModel::new(SystemStateModelConfig::tiny());
        let window = vec![MetricVec::zero(); 120];
        let _ = model.predict(&window);
    }

    #[test]
    fn training_reduces_loss_and_achieves_high_r2() {
        let ds = dataset();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let (train, test) = ds.split(0.6, &mut rng);
        let mut model = SystemStateModel::new(SystemStateModelConfig::tiny());
        let losses = model.train(&train);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not halve: {losses:?}"
        );
        let stats = model.last_train_stats().expect("trained");
        assert_eq!(stats.epochs as usize, model.config().epochs);
        assert_eq!(stats.samples as usize, train.len() * model.config().epochs);
        assert!(stats.grad_chunks >= stats.minibatches);
        let (per_metric, overall) = model.evaluate(&test);
        assert_eq!(per_metric.len(), METRIC_COUNT);
        assert!(
            overall.r2 > 0.8,
            "overall R² too low on synthetic data: {}",
            overall.r2
        );
    }

    #[test]
    fn predict_returns_plausible_scale() {
        let ds = dataset();
        let mut model = SystemStateModel::new(SystemStateModelConfig::tiny());
        model.train(&ds);
        let trace = synthetic_trace(200, 0.3);
        let window: Vec<MetricVec> = trace[..120].iter().map(|s| *s.vec()).collect();
        let pred = model.predict(&window);
        // Predictions should land in the value range of the trace.
        let llc = pred.get(Metric::LlcLoads);
        assert!(
            (2e7..5e8).contains(&llc),
            "LLC loads prediction off-scale: {llc}"
        );
        let lat = pred.get(Metric::LinkLatency);
        assert!((200.0..1100.0).contains(&lat), "latency off-scale: {lat}");
    }

    #[test]
    fn predict_into_is_bit_identical_to_predict() {
        let ds = dataset();
        let mut model = SystemStateModel::new(SystemStateModelConfig::tiny());
        model.train(&ds);
        let mut scratch = model.make_scratch();
        for (i, len) in [(0usize, 120usize), (1, 120), (2, 37), (3, 120)] {
            let trace = synthetic_trace(200, i as f32 * 0.9);
            let window: Vec<MetricVec> = trace[..len].iter().map(|s| *s.vec()).collect();
            let want = model.predict(&window);
            // Reuse the same scratch across windows of different lengths.
            let got = model.predict_into(&window, &mut scratch);
            for m in Metric::ALL {
                assert_eq!(
                    got.get(m).to_bits(),
                    want.get(m).to_bits(),
                    "fast lane diverged on window {i} metric {m:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "make_scratch before train")]
    fn make_scratch_before_train_panics() {
        let model = SystemStateModel::new(SystemStateModelConfig::tiny());
        let _ = model.make_scratch();
    }

    #[test]
    fn predict_batch_is_worker_count_invariant() {
        let ds = dataset();
        let mut model = SystemStateModel::new(SystemStateModelConfig::tiny());
        model.train(&ds);
        let traces: Vec<Vec<MetricVec>> = (0..6)
            .map(|i| {
                synthetic_trace(120, i as f32 * 0.7)
                    .iter()
                    .map(|s| *s.vec())
                    .collect()
            })
            .collect();
        let windows: Vec<&[MetricVec]> = traces.iter().map(|t| t.as_slice()).collect();

        let serial = model.predict_batch(&windows);
        let per_sample: Vec<MetricVec> = windows.iter().map(|w| model.predict(w)).collect();
        assert_eq!(serial, per_sample, "batched rows differ from predict()");
        for workers in [2, 5] {
            model.cfg.workers = workers;
            assert_eq!(
                model.predict_batch(&windows),
                serial,
                "inference diverged with {workers} workers"
            );
        }
    }
}
