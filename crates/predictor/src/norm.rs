//! Per-metric z-score normalization.

use adrias_telemetry::stats::OnlineStats;
use adrias_telemetry::{Metric, MetricVec, METRIC_COUNT};

/// Per-metric z-score normalizer fitted on training data.
///
/// Deep models are fed normalized metric values; predictions are mapped
/// back through [`Normalizer::denormalize`]. Metrics with (near-)zero
/// variance normalize to zero instead of blowing up.
///
/// # Examples
///
/// ```
/// use adrias_predictor::Normalizer;
/// use adrias_telemetry::{Metric, MetricVec};
///
/// let mut rows = Vec::new();
/// for i in 0..10 {
///     let mut v = MetricVec::zero();
///     v.set(Metric::LlcLoads, i as f32);
///     rows.push(v);
/// }
/// let norm = Normalizer::fit(&rows);
/// let z = norm.normalize(&rows[9]);
/// let back = norm.denormalize(&z);
/// assert!((back.get(Metric::LlcLoads) - 9.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: [f32; METRIC_COUNT],
    std: [f32; METRIC_COUNT],
}

impl Normalizer {
    /// Smallest standard deviation treated as non-degenerate.
    const MIN_STD: f32 = 1e-6;
    /// A metric whose std is below this fraction of its mean magnitude is
    /// treated as constant — counters of magnitude 1e8 carry no signal in
    /// their last few floating-point digits.
    const MIN_REL_STD: f32 = 1e-4;
    /// Normalized values are clamped to this band so out-of-distribution
    /// inputs cannot blow up the models.
    const MAX_Z: f32 = 10.0;

    fn degenerate_floor(mean: f32) -> f32 {
        Self::MIN_STD + Self::MIN_REL_STD * mean.abs()
    }

    /// Fits the normalizer on a set of metric rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit(rows: &[MetricVec]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer on no data");
        let mut accs = [OnlineStats::new(); METRIC_COUNT];
        for row in rows {
            for m in Metric::ALL {
                accs[m.index()].push(row.get(m));
            }
        }
        let mut mean = [0.0; METRIC_COUNT];
        let mut std = [0.0; METRIC_COUNT];
        for m in Metric::ALL {
            mean[m.index()] = accs[m.index()].mean();
            std[m.index()] = accs[m.index()].std_dev();
        }
        Self { mean, std }
    }

    /// Fits on every row of a collection of windows.
    ///
    /// # Panics
    ///
    /// Panics if there are no rows in total.
    pub fn fit_windows<'a>(windows: impl IntoIterator<Item = &'a [MetricVec]>) -> Self {
        let rows: Vec<MetricVec> = windows.into_iter().flatten().copied().collect();
        Self::fit(&rows)
    }

    /// Mean for `metric`.
    pub fn mean(&self, metric: Metric) -> f32 {
        self.mean[metric.index()]
    }

    /// Standard deviation for `metric`.
    pub fn std(&self, metric: Metric) -> f32 {
        self.std[metric.index()]
    }

    /// Normalizes one metric row.
    pub fn normalize(&self, row: &MetricVec) -> MetricVec {
        let mut out = MetricVec::zero();
        for m in Metric::ALL {
            let mean = self.mean[m.index()];
            let s = self.std[m.index()];
            let v = if s < Self::degenerate_floor(mean) {
                0.0
            } else {
                ((row.get(m) - mean) / s).clamp(-Self::MAX_Z, Self::MAX_Z)
            };
            out.set(m, v);
        }
        out
    }

    /// Inverts [`Normalizer::normalize`].
    pub fn denormalize(&self, row: &MetricVec) -> MetricVec {
        let mut out = MetricVec::zero();
        for m in Metric::ALL {
            let mean = self.mean[m.index()];
            let s = self.std[m.index()];
            let v = if s < Self::degenerate_floor(mean) {
                // Degenerate metric: the normalized value was forced to
                // zero, so the best reconstruction is the mean.
                mean
            } else {
                row.get(m) * s + mean
            };
            out.set(m, v);
        }
        out
    }

    /// Normalizes a whole window.
    pub fn normalize_window(&self, rows: &[MetricVec]) -> Vec<MetricVec> {
        rows.iter().map(|r| self.normalize(r)).collect()
    }
}

/// A z-score normalizer for a scalar target (e.g. log execution time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarNormalizer {
    mean: f32,
    std: f32,
}

impl ScalarNormalizer {
    /// Rebuilds a normalizer from persisted statistics.
    ///
    /// # Panics
    ///
    /// Panics if `std` is not strictly positive.
    pub fn from_parts(mean: f32, std: f32) -> Self {
        assert!(std > 0.0, "std must be positive");
        Self { mean, std }
    }

    /// The fitted mean.
    pub fn mean(&self) -> f32 {
        self.mean
    }

    /// The fitted standard deviation.
    pub fn std(&self) -> f32 {
        self.std
    }

    /// Fits on scalar samples.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn fit(values: &[f32]) -> Self {
        assert!(!values.is_empty(), "cannot fit on no data");
        let mean = adrias_telemetry::stats::mean(values);
        let std = adrias_telemetry::stats::std_dev(values).max(Normalizer::MIN_STD);
        Self { mean, std }
    }

    /// Normalizes a value.
    pub fn normalize(&self, v: f32) -> f32 {
        (v - self.mean) / self.std
    }

    /// Inverts normalization.
    pub fn denormalize(&self, z: f32) -> f32 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(load: f32, lat: f32) -> MetricVec {
        let mut v = MetricVec::zero();
        v.set(Metric::LlcLoads, load);
        v.set(Metric::LinkLatency, lat);
        v
    }

    #[test]
    fn normalized_data_has_zero_mean_unit_std() {
        let rows: Vec<MetricVec> = (0..100).map(|i| row(i as f32, 350.0 + i as f32)).collect();
        let norm = Normalizer::fit(&rows);
        let z: Vec<f32> = rows
            .iter()
            .map(|r| norm.normalize(r).get(Metric::LlcLoads))
            .collect();
        assert!(adrias_telemetry::stats::mean(&z).abs() < 1e-4);
        assert!((adrias_telemetry::stats::std_dev(&z) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn constant_metric_normalizes_to_zero() {
        let rows: Vec<MetricVec> = (0..10).map(|_| row(5.0, 350.0)).collect();
        let norm = Normalizer::fit(&rows);
        let z = norm.normalize(&rows[0]);
        assert_eq!(z.get(Metric::LlcLoads), 0.0);
        assert_eq!(z.get(Metric::MemStores), 0.0);
    }

    #[test]
    fn round_trip_for_varying_metric() {
        let rows: Vec<MetricVec> = (0..20).map(|i| row(i as f32 * 3.0, 350.0)).collect();
        let norm = Normalizer::fit(&rows);
        let back = norm.denormalize(&norm.normalize(&rows[7]));
        assert!((back.get(Metric::LlcLoads) - 21.0).abs() < 1e-3);
    }

    #[test]
    fn fit_windows_flattens() {
        let w1 = vec![row(1.0, 350.0), row(3.0, 350.0)];
        let w2 = vec![row(5.0, 350.0)];
        let norm = Normalizer::fit_windows([w1.as_slice(), w2.as_slice()]);
        assert!((norm.mean(Metric::LlcLoads) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn scalar_normalizer_round_trips() {
        let n = ScalarNormalizer::fit(&[10.0, 20.0, 30.0]);
        assert!((n.denormalize(n.normalize(25.0)) - 25.0).abs() < 1e-4);
        assert!(n.normalize(20.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn fit_on_empty_panics() {
        let _ = Normalizer::fit(&[]);
    }
}
