//! QoS-level derivation for latency-critical workloads.
//!
//! The paper defines five p99 QoS levels per store from the observed
//! performance distributions of the trace scenarios (Fig. 10), spanning
//! loose (level 0, easily met even remote) to strict (level 4, barely met
//! even local).

use adrias_telemetry::stats;

/// Derives `n_levels` QoS thresholds from observed p99 samples.
///
/// Level 0 is the loosest (a high quantile of the distribution), the last
/// level the strictest (a low quantile). Thresholds are strictly
/// decreasing across levels for any non-degenerate distribution.
///
/// # Panics
///
/// Panics if `samples` is empty or `n_levels` is zero.
///
/// # Examples
///
/// ```
/// use adrias_orchestrator::qos_levels;
///
/// let p99s: Vec<f32> = (1..=100).map(|i| i as f32 / 10.0).collect();
/// let levels = qos_levels(&p99s, 5);
/// assert_eq!(levels.len(), 5);
/// assert!(levels.windows(2).all(|w| w[0] >= w[1]));
/// ```
pub fn qos_levels(samples: &[f32], n_levels: usize) -> Vec<f32> {
    assert!(!samples.is_empty(), "no p99 samples to derive QoS from");
    assert!(n_levels > 0, "need at least one QoS level");
    // Quantiles from 90 % (loose) down to 30 % (strict), evenly spaced.
    let hi = 90.0;
    let lo = 30.0;
    (0..n_levels)
        .map(|i| {
            let q = if n_levels == 1 {
                hi
            } else {
                hi - (hi - lo) * i as f64 / (n_levels - 1) as f64
            };
            stats::percentile(samples, q)
        })
        .collect()
}

/// Counts how many outcomes violate a QoS threshold.
pub fn count_violations(p99s: &[f32], qos: f32) -> usize {
    p99s.iter().filter(|&&p| p > qos).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_span_loose_to_strict() {
        let samples: Vec<f32> = (0..1000).map(|i| 1.0 + i as f32 * 0.01).collect();
        let levels = qos_levels(&samples, 5);
        assert_eq!(levels.len(), 5);
        assert!(levels[0] > levels[4]);
        // Loose level admits most samples; strict admits fewer.
        assert!(count_violations(&samples, levels[0]) < count_violations(&samples, levels[4]));
    }

    #[test]
    fn single_level_is_loose() {
        let samples = [1.0, 2.0, 3.0];
        let levels = qos_levels(&samples, 1);
        assert_eq!(levels.len(), 1);
        assert!(levels[0] >= 2.0);
    }

    #[test]
    fn violations_counted_strictly_above() {
        assert_eq!(count_violations(&[1.0, 2.0, 3.0], 2.0), 1);
        assert_eq!(count_violations(&[1.0, 2.0, 3.0], 0.5), 3);
        assert_eq!(count_violations(&[], 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "no p99 samples")]
    fn empty_samples_rejected() {
        let _ = qos_levels(&[], 5);
    }
}
