//! QoS-level derivation for latency-critical workloads.
//!
//! The paper defines five p99 QoS levels per store from the observed
//! performance distributions of the trace scenarios (Fig. 10), spanning
//! loose (level 0, easily met even remote) to strict (level 4, barely met
//! even local).

use adrias_telemetry::stats;

/// Derives `n_levels` QoS thresholds from observed p99 samples.
///
/// Level 0 is the loosest (a high quantile of the distribution), the last
/// level the strictest (a low quantile). Thresholds are strictly
/// decreasing across levels for any non-degenerate distribution.
///
/// Degenerate inputs are well-defined rather than panics: an empty
/// sample set or `n_levels == 0` yields an empty vector, and non-finite
/// samples (NaN, ±∞) are ignored — thresholds are derived from the
/// finite subset only. If *no* sample is finite the result is empty.
/// Callers that need to treat "no levels derivable" as an error can
/// check `is_empty()` on the result.
///
/// # Examples
///
/// ```
/// use adrias_orchestrator::qos_levels;
///
/// let p99s: Vec<f32> = (1..=100).map(|i| i as f32 / 10.0).collect();
/// let levels = qos_levels(&p99s, 5);
/// assert_eq!(levels.len(), 5);
/// assert!(levels.windows(2).all(|w| w[0] >= w[1]));
///
/// assert!(qos_levels(&[], 5).is_empty());
/// assert!(qos_levels(&p99s, 0).is_empty());
/// ```
pub fn qos_levels(samples: &[f32], n_levels: usize) -> Vec<f32> {
    if n_levels == 0 {
        return Vec::new();
    }
    // `stats::percentile` sorts with `partial_cmp(..).expect(..)` and
    // would panic on NaN; strip every non-finite sample up front so a
    // single corrupt p99 cannot take the whole derivation down.
    let finite: Vec<f32> = samples.iter().copied().filter(|p| p.is_finite()).collect();
    if finite.is_empty() {
        return Vec::new();
    }
    // Quantiles from 90 % (loose) down to 30 % (strict), evenly spaced.
    let hi = 90.0;
    let lo = 30.0;
    (0..n_levels)
        .map(|i| {
            let q = if n_levels == 1 {
                hi
            } else {
                hi - (hi - lo) * i as f64 / (n_levels - 1) as f64
            };
            stats::percentile(&finite, q)
        })
        .collect()
}

/// Counts how many outcomes violate a QoS threshold.
///
/// A sample violates when it is *not known to meet* the threshold:
/// strictly above it, `NaN` (the measurement carries no evidence the
/// deadline was met), or `+∞`. `-∞` trivially meets any threshold and
/// is not counted. A `NaN` threshold means "no QoS constraint" and
/// yields zero violations.
pub fn count_violations(p99s: &[f32], qos: f32) -> usize {
    if qos.is_nan() {
        return 0;
    }
    p99s.iter().filter(|&&p| p.is_nan() || p > qos).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_span_loose_to_strict() {
        let samples: Vec<f32> = (0..1000).map(|i| 1.0 + i as f32 * 0.01).collect();
        let levels = qos_levels(&samples, 5);
        assert_eq!(levels.len(), 5);
        assert!(levels[0] > levels[4]);
        // Loose level admits most samples; strict admits fewer.
        assert!(count_violations(&samples, levels[0]) < count_violations(&samples, levels[4]));
    }

    #[test]
    fn single_level_is_loose() {
        let samples = [1.0, 2.0, 3.0];
        let levels = qos_levels(&samples, 1);
        assert_eq!(levels.len(), 1);
        assert!(levels[0] >= 2.0);
    }

    #[test]
    fn violations_counted_strictly_above() {
        assert_eq!(count_violations(&[1.0, 2.0, 3.0], 2.0), 1);
        assert_eq!(count_violations(&[1.0, 2.0, 3.0], 0.5), 3);
        assert_eq!(count_violations(&[], 1.0), 0);
    }

    #[test]
    fn empty_inputs_yield_empty_levels() {
        assert!(qos_levels(&[], 5).is_empty());
        assert!(qos_levels(&[1.0, 2.0], 0).is_empty());
        assert!(qos_levels(&[], 0).is_empty());
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let clean = [1.0, 2.0, 3.0, 4.0];
        let dirty = [
            f32::NAN,
            1.0,
            f32::INFINITY,
            2.0,
            3.0,
            f32::NEG_INFINITY,
            4.0,
            f32::NAN,
        ];
        assert_eq!(qos_levels(&clean, 5), qos_levels(&dirty, 5));
    }

    #[test]
    fn all_non_finite_yields_empty_levels() {
        assert!(qos_levels(&[f32::NAN, f32::INFINITY], 3).is_empty());
    }

    #[test]
    fn nan_and_inf_outcomes_count_as_violations() {
        // NaN p99: no evidence the deadline was met — that is a violation.
        assert_eq!(count_violations(&[f32::NAN], 10.0), 1);
        assert_eq!(count_violations(&[f32::INFINITY], 10.0), 1);
        assert_eq!(count_violations(&[f32::NEG_INFINITY], 10.0), 0);
        assert_eq!(count_violations(&[1.0, f32::NAN, 20.0], 10.0), 2);
        // NaN threshold: constraint undefined, nothing counted.
        assert_eq!(count_violations(&[1.0, f32::NAN], f32::NAN), 0);
        // +inf threshold admits everything finite or NaN-free.
        assert_eq!(count_violations(&[1.0, 1e30], f32::INFINITY), 0);
    }
}
