//! On-line signature capture (§V-C).
//!
//! "When a new workload is deployed on the system, if Adrias does not
//! own any prior information regarding its application signature, it
//! schedules it on the remote memory, captures and stores the respective
//! metrics." [`AdriasPolicy`] already implements the remote-first rule;
//! this module implements the *capture* half: after a scenario runs,
//! extract the metric sequences observed during the residency of every
//! unknown remote-mode application and turn them into signatures the
//! policy can store for subsequent arrivals.
//!
//! Captured signatures are noisier than the offline isolated-remote ones
//! (they include co-runner traffic), which is exactly the trade-off the
//! paper accepts for unknown applications until a retraining pass
//! happens.

use adrias_obs::{CaptureRecord, CaptureSkip, Observer};
use adrias_telemetry::MetricVec;
use adrias_workloads::{AppSignature, MemoryMode, WorkloadClass};

use crate::adrias::AdriasPolicy;
use crate::engine::RunReport;

/// Extracts candidate signatures for applications the policy does not
/// know yet, from one finished engine run, together with one
/// [`CaptureRecord`] per completed deployment explaining what happened
/// to it — stored, or skipped and why.
///
/// A candidate is produced for the **first completed remote-mode
/// deployment** of each unknown BE/LC application; the signature rows
/// are the Watcher samples covering its residency. Every other outcome
/// gets an audit record with the first skip reason that applied, in
/// rule order: interference stressor, not remote, already known,
/// duplicate in this run, empty residency clip (a residency that rounds
/// to zero trace rows — previously a silent drop).
pub fn capture_unknown_signatures_audited(
    report: &RunReport,
    is_known: impl Fn(&str) -> bool,
) -> (Vec<AppSignature>, Vec<CaptureRecord>) {
    let mut captured: Vec<AppSignature> = Vec::new();
    let mut records: Vec<CaptureRecord> = Vec::with_capacity(report.outcomes.len());
    for (i, o) in report.outcomes.iter().enumerate() {
        let lo = (o.arrived_s.floor() as usize).min(report.samples.len());
        let hi = (o.finished_s.ceil() as usize).min(report.samples.len());
        let skip = if o.class == WorkloadClass::Interference {
            Some(CaptureSkip::Interference)
        } else if o.mode != MemoryMode::Remote {
            Some(CaptureSkip::NotRemote)
        } else if is_known(&o.name) {
            Some(CaptureSkip::AlreadyKnown)
        } else if captured.iter().any(|s| s.app_name() == o.name) {
            Some(CaptureSkip::DuplicateInRun)
        } else if hi <= lo {
            Some(CaptureSkip::EmptyResidency)
        } else {
            None
        };
        let co_runners = report
            .outcomes
            .iter()
            .enumerate()
            .filter(|(j, other)| {
                *j != i && other.arrived_s < o.finished_s && other.finished_s > o.arrived_s
            })
            .count();
        records.push(CaptureRecord {
            app: adrias_obs::intern(&o.name),
            arrived_s: o.arrived_s,
            finished_s: o.finished_s,
            rows: hi.saturating_sub(lo),
            co_runners,
            skip,
        });
        if skip.is_none() {
            let rows: Vec<MetricVec> = report.samples[lo..hi].iter().map(|s| *s.vec()).collect();
            captured.push(AppSignature::new(o.name.clone(), rows));
        }
    }
    (captured, records)
}

/// Extracts candidate signatures for applications the policy does not
/// know yet, from one finished engine run.
///
/// The unaudited form of [`capture_unknown_signatures_audited`]: same
/// signatures, no per-outcome records.
pub fn capture_unknown_signatures(
    report: &RunReport,
    is_known: impl Fn(&str) -> bool,
) -> Vec<AppSignature> {
    capture_unknown_signatures_audited(report, is_known).0
}

/// Runs the full §V-C loop on a policy: capture signatures for every
/// application the policy did not know in `report`, store them, and
/// return how many were added.
pub fn absorb_signatures(policy: &mut AdriasPolicy, report: &RunReport) -> usize {
    let captured = capture_unknown_signatures(report, |name| policy.knows(name));
    let count = captured.len();
    for sig in captured {
        policy.store_signature(sig);
    }
    count
}

/// [`absorb_signatures`] with an audit trail: every completed
/// deployment's capture attempt lands in the observer (stored captures
/// and skip reasons alike) before the stored signatures are absorbed
/// into the policy. Returns how many signatures were added.
pub fn absorb_signatures_observed(
    policy: &mut AdriasPolicy,
    report: &RunReport,
    obs: &mut Observer,
) -> usize {
    let (captured, records) = capture_unknown_signatures_audited(report, |name| policy.knows(name));
    for record in records {
        obs.record_capture(record);
    }
    let count = captured.len();
    for sig in captured {
        policy.store_signature(sig);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::AllRemotePolicy;
    use crate::engine::{run_schedule, EngineConfig, ScheduledArrival};
    use adrias_sim::TestbedConfig;
    use adrias_workloads::spark;

    fn remote_run(apps: &[&str]) -> RunReport {
        let arrivals: Vec<ScheduledArrival> = apps
            .iter()
            .enumerate()
            .map(|(i, name)| ScheduledArrival::new(i as f64 * 10.0, spark::by_name(name).unwrap()))
            .collect();
        let mut policy = AllRemotePolicy::new();
        run_schedule(
            TestbedConfig::noiseless(),
            EngineConfig {
                lc_latency_samples: 500,
                ..EngineConfig::default()
            },
            &arrivals,
            &mut policy,
        )
    }

    #[test]
    fn captures_only_unknown_remote_apps() {
        let report = remote_run(&["gmm", "pca", "gmm"]);
        let sigs = capture_unknown_signatures(&report, |name| name == "pca");
        assert_eq!(sigs.len(), 1, "gmm once, pca skipped as known");
        assert_eq!(sigs[0].app_name(), "gmm");
        assert!(!sigs[0].is_empty());
    }

    #[test]
    fn captured_rows_cover_the_residency() {
        let report = remote_run(&["wordcount"]);
        let sigs = capture_unknown_signatures(&report, |_| false);
        let outcome = &report.outcomes[0];
        let expected = (outcome.finished_s.ceil() - outcome.arrived_s.floor()) as usize;
        assert!(
            (sigs[0].len() as i64 - expected as i64).abs() <= 1,
            "signature rows {} vs residency {}",
            sigs[0].len(),
            expected
        );
    }

    #[test]
    fn local_mode_apps_are_not_captured() {
        use crate::baselines::AllLocalPolicy;
        let arrivals = vec![ScheduledArrival::new(0.0, spark::by_name("gmm").unwrap())];
        let mut policy = AllLocalPolicy::new();
        let report = run_schedule(
            TestbedConfig::noiseless(),
            EngineConfig::default(),
            &arrivals,
            &mut policy,
        );
        assert!(capture_unknown_signatures(&report, |_| false).is_empty());
    }

    #[test]
    fn duplicate_arrivals_capture_once() {
        let report = remote_run(&["lda", "lda", "lda"]);
        let sigs = capture_unknown_signatures(&report, |_| false);
        assert_eq!(sigs.len(), 1);
    }

    #[test]
    fn audited_capture_reports_every_outcome_with_skip_reasons() {
        let report = remote_run(&["gmm", "pca", "gmm"]);
        let (sigs, records) = capture_unknown_signatures_audited(&report, |name| name == "pca");
        assert_eq!(sigs.len(), 1);
        assert_eq!(records.len(), report.outcomes.len());
        // Records follow completion order; find each app's verdict.
        let skip_of = |app: &str| -> Vec<Option<CaptureSkip>> {
            records
                .iter()
                .filter(|r| r.app == app)
                .map(|r| r.skip)
                .collect()
        };
        assert_eq!(skip_of("pca"), vec![Some(CaptureSkip::AlreadyKnown)]);
        let gmm = skip_of("gmm");
        assert!(gmm.contains(&None), "first gmm completion is stored");
        assert!(
            gmm.contains(&Some(CaptureSkip::DuplicateInRun)),
            "second gmm completion is a duplicate"
        );
        for r in &records {
            if r.skip.is_none() {
                assert!(r.rows >= 1, "stored captures carry their row count");
            }
            assert!(r.finished_s >= r.arrived_s);
        }
    }

    /// Regression: a residency that clips to zero trace rows used to be
    /// a silent `continue`; it must now surface as an
    /// [`CaptureSkip::EmptyResidency`] audit record.
    #[test]
    fn empty_residency_clip_is_reported_not_silently_dropped() {
        use crate::engine::AppOutcome;
        use adrias_workloads::WorkloadClass;
        // Hand-built report: the trace is empty (e.g. truncated), so the
        // only outcome's residency clips to zero rows.
        let report = RunReport {
            policy: "test".to_owned(),
            outcomes: vec![AppOutcome {
                name: "ghost".to_owned(),
                class: WorkloadClass::BestEffort,
                mode: MemoryMode::Remote,
                policy_decided: true,
                arrived_s: 10.0,
                finished_s: 12.0,
                runtime_s: 2.0,
                mean_slowdown: 1.0,
                p99_ms: None,
                p999_ms: None,
                lc_total_time_s: None,
            }],
            samples: Vec::new(),
            link_bytes: 0.0,
            end_time_s: 12.0,
            unfinished: 0,
        };
        let (sigs, records) = capture_unknown_signatures_audited(&report, |_| false);
        assert!(sigs.is_empty());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].skip, Some(CaptureSkip::EmptyResidency));
        assert_eq!(records[0].rows, 0);
        assert_eq!(records[0].co_runners, 0);
    }

    /// The §V-C round trip under interference: an unknown app captured
    /// remote-first amid a co-runner must round-trip through
    /// `store_signature` and, on a clean re-run, produce the same
    /// decision as a policy seeded with the offline isolated-remote
    /// signature.
    #[test]
    fn captured_signature_round_trips_to_the_same_decision_as_offline() {
        use crate::engine::{run_isolated, run_schedule_observed, EngineConfig};
        use crate::online::absorb_signatures_observed;
        use crate::test_support::policy_with_beta;
        use adrias_obs::{DecisionRule, Observer};
        use adrias_workloads::{ibench, IbenchKind};

        let engine = EngineConfig {
            lc_latency_samples: 500,
            ..EngineConfig::default()
        };
        let schedule = vec![
            ScheduledArrival::new(0.0, ibench::profile(IbenchKind::MemBw))
                .with_mode(MemoryMode::Local)
                .with_duration(400.0),
            ScheduledArrival::new(150.0, spark::by_name("pca").unwrap()),
        ];

        // Run 1: pca is unknown → remote-first capture under the
        // stressor.
        let mut policy = policy_with_beta(0.7);
        let mut obs = Observer::default();
        let report = run_schedule_observed(
            TestbedConfig::noiseless(),
            engine,
            &schedule,
            &mut policy,
            &mut obs,
        );
        let pca = report.outcomes.iter().find(|o| o.name == "pca").unwrap();
        assert_eq!(pca.mode, MemoryMode::Remote, "unknown app goes remote");
        let added = absorb_signatures_observed(&mut policy, &report, &mut obs);
        assert_eq!(added, 1);
        assert!(policy.knows("pca"));
        let stored = obs
            .adapt
            .captures()
            .iter()
            .find(|c| c.app == "pca" && c.skip.is_none())
            .expect("stored capture is audited");
        assert!(stored.co_runners >= 1, "captured amid a co-runner");
        assert!(stored.rows >= 1);

        // Clean re-run: pca is now known, so the β-slack rule decides.
        let mut obs2 = Observer::default();
        let _ = run_schedule_observed(
            TestbedConfig::noiseless(),
            engine,
            &schedule,
            &mut policy,
            &mut obs2,
        );
        let captured_rec = obs2
            .audit
            .records()
            .iter()
            .find(|r| r.input.app == "pca")
            .expect("audited");
        assert!(matches!(
            captured_rec.input.rule,
            DecisionRule::BetaSlack { .. }
        ));

        // Same re-run with the offline isolated-remote signature.
        let (_, trace) = run_isolated(
            TestbedConfig::noiseless(),
            engine,
            spark::by_name("pca").unwrap(),
            MemoryMode::Remote,
        );
        let mut offline_policy = policy_with_beta(0.7);
        offline_policy.store_signature(AppSignature::new(
            "pca",
            trace.iter().map(|s| *s.vec()).collect(),
        ));
        let mut obs3 = Observer::default();
        let _ = run_schedule_observed(
            TestbedConfig::noiseless(),
            engine,
            &schedule,
            &mut offline_policy,
            &mut obs3,
        );
        let offline_rec = obs3
            .audit
            .records()
            .iter()
            .find(|r| r.input.app == "pca")
            .expect("audited");
        assert!(matches!(
            offline_rec.input.rule,
            DecisionRule::BetaSlack { .. }
        ));
        assert_eq!(
            captured_rec.input.chosen, offline_rec.input.chosen,
            "captured and offline signatures must agree on placement"
        );
    }

    #[test]
    fn co_runner_counts_cover_overlapping_residencies() {
        // gmm and pca arrive 10 s apart and overlap; each sees one
        // co-runner.
        let report = remote_run(&["gmm", "pca"]);
        let (_, records) = capture_unknown_signatures_audited(&report, |_| false);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.co_runners, 1, "app {} overlaps its peer", r.app);
        }
    }
}
