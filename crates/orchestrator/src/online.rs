//! On-line signature capture (§V-C).
//!
//! "When a new workload is deployed on the system, if Adrias does not
//! own any prior information regarding its application signature, it
//! schedules it on the remote memory, captures and stores the respective
//! metrics." [`AdriasPolicy`] already implements the remote-first rule;
//! this module implements the *capture* half: after a scenario runs,
//! extract the metric sequences observed during the residency of every
//! unknown remote-mode application and turn them into signatures the
//! policy can store for subsequent arrivals.
//!
//! Captured signatures are noisier than the offline isolated-remote ones
//! (they include co-runner traffic), which is exactly the trade-off the
//! paper accepts for unknown applications until a retraining pass
//! happens.

use adrias_telemetry::MetricVec;
use adrias_workloads::{AppSignature, MemoryMode, WorkloadClass};

use crate::adrias::AdriasPolicy;
use crate::engine::RunReport;

/// Extracts candidate signatures for applications the policy does not
/// know yet, from one finished engine run.
///
/// A candidate is produced for the **first completed remote-mode
/// deployment** of each unknown BE/LC application; the signature rows are
/// the Watcher samples covering its residency.
pub fn capture_unknown_signatures(
    report: &RunReport,
    is_known: impl Fn(&str) -> bool,
) -> Vec<AppSignature> {
    let mut captured: Vec<AppSignature> = Vec::new();
    for o in &report.outcomes {
        if o.class == WorkloadClass::Interference
            || o.mode != MemoryMode::Remote
            || is_known(&o.name)
            || captured.iter().any(|s| s.app_name() == o.name)
        {
            continue;
        }
        let lo = (o.arrived_s.floor() as usize).min(report.samples.len());
        let hi = (o.finished_s.ceil() as usize).min(report.samples.len());
        if hi <= lo {
            continue;
        }
        let rows: Vec<MetricVec> = report.samples[lo..hi].iter().map(|s| *s.vec()).collect();
        captured.push(AppSignature::new(o.name.clone(), rows));
    }
    captured
}

/// Runs the full §V-C loop on a policy: capture signatures for every
/// application the policy did not know in `report`, store them, and
/// return how many were added.
pub fn absorb_signatures(policy: &mut AdriasPolicy, report: &RunReport) -> usize {
    let captured = capture_unknown_signatures(report, |name| policy.knows(name));
    let count = captured.len();
    for sig in captured {
        policy.store_signature(sig);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::AllRemotePolicy;
    use crate::engine::{run_schedule, EngineConfig, ScheduledArrival};
    use adrias_sim::TestbedConfig;
    use adrias_workloads::spark;

    fn remote_run(apps: &[&str]) -> RunReport {
        let arrivals: Vec<ScheduledArrival> = apps
            .iter()
            .enumerate()
            .map(|(i, name)| ScheduledArrival::new(i as f64 * 10.0, spark::by_name(name).unwrap()))
            .collect();
        let mut policy = AllRemotePolicy::new();
        run_schedule(
            TestbedConfig::noiseless(),
            EngineConfig {
                lc_latency_samples: 500,
                ..EngineConfig::default()
            },
            &arrivals,
            &mut policy,
        )
    }

    #[test]
    fn captures_only_unknown_remote_apps() {
        let report = remote_run(&["gmm", "pca", "gmm"]);
        let sigs = capture_unknown_signatures(&report, |name| name == "pca");
        assert_eq!(sigs.len(), 1, "gmm once, pca skipped as known");
        assert_eq!(sigs[0].app_name(), "gmm");
        assert!(!sigs[0].is_empty());
    }

    #[test]
    fn captured_rows_cover_the_residency() {
        let report = remote_run(&["wordcount"]);
        let sigs = capture_unknown_signatures(&report, |_| false);
        let outcome = &report.outcomes[0];
        let expected = (outcome.finished_s.ceil() - outcome.arrived_s.floor()) as usize;
        assert!(
            (sigs[0].len() as i64 - expected as i64).abs() <= 1,
            "signature rows {} vs residency {}",
            sigs[0].len(),
            expected
        );
    }

    #[test]
    fn local_mode_apps_are_not_captured() {
        use crate::baselines::AllLocalPolicy;
        let arrivals = vec![ScheduledArrival::new(0.0, spark::by_name("gmm").unwrap())];
        let mut policy = AllLocalPolicy::new();
        let report = run_schedule(
            TestbedConfig::noiseless(),
            EngineConfig::default(),
            &arrivals,
            &mut policy,
        );
        assert!(capture_unknown_signatures(&report, |_| false).is_empty());
    }

    #[test]
    fn duplicate_arrivals_capture_once() {
        let report = remote_run(&["lda", "lda", "lda"]);
        let sigs = capture_unknown_signatures(&report, |_| false);
        assert_eq!(sigs.len(), 1);
    }
}
