//! The deployment engine: replays an arrival schedule against the
//! testbed under a policy and records everything the evaluation needs.

use adrias_core::rng::SeedableRng;
use adrias_core::rng::Xoshiro256pp;

use adrias_sim::{DeploymentId, LinkConfig, StepReport, Testbed, TestbedConfig};
use adrias_telemetry::{MetricSample, MetricVec, Watcher};
use adrias_workloads::keyvalue::tail_latency;
use adrias_workloads::{LoadSpec, MemoryMode, WorkloadClass, WorkloadProfile};

use crate::policy::{DecisionContext, ExplainedDecision, Policy};

/// One entry of an arrival schedule.
#[derive(Debug, Clone)]
pub struct ScheduledArrival {
    /// Arrival time, seconds from scenario start.
    pub at_s: f64,
    /// The workload to deploy.
    pub profile: WorkloadProfile,
    /// Residency override (used for open-ended iBench stressors);
    /// `None` uses the profile's nominal duration.
    pub duration_s: Option<f32>,
    /// When set, bypasses the policy (random placement during trace
    /// collection; interference stressors in orchestration runs).
    pub forced_mode: Option<MemoryMode>,
}

impl ScheduledArrival {
    /// A policy-decided arrival with the profile's nominal duration.
    pub fn new(at_s: f64, profile: WorkloadProfile) -> Self {
        Self {
            at_s,
            profile,
            duration_s: None,
            forced_mode: None,
        }
    }

    /// Forces the memory mode, bypassing the policy.
    pub fn with_mode(mut self, mode: MemoryMode) -> Self {
        self.forced_mode = Some(mode);
        self
    }

    /// Overrides the residency duration.
    pub fn with_duration(mut self, duration_s: f32) -> Self {
        self.duration_s = Some(duration_s);
        self
    }
}

/// One link-degradation fault: at `at_s` the testbed's ThymesisFlow
/// channel parameters are replaced wholesale with `link`.
///
/// A schedule of these models the failure modes catalogued for
/// disaggregated fabrics — latency spikes (`base_latency_cycles` up),
/// throughput collapse (`effective_cap_gbps` down), and link flapping
/// (alternating degraded/healthy entries). Restoring the original
/// `LinkConfig` in a later event heals the link; an empty schedule
/// leaves the engine loop bit-identical to the un-faulted path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Sim time at which the fault takes effect, seconds.
    pub at_s: f64,
    /// The link parameters in force from `at_s` onward.
    pub link: LinkConfig,
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Watcher history window handed to policies, seconds.
    pub history_window_s: usize,
    /// After the last arrival, keep stepping until every deployment
    /// finishes, at most this many extra seconds.
    pub max_drain_s: f64,
    /// Requests sampled per LC measurement when computing tail latency.
    pub lc_latency_samples: usize,
    /// Active p99 QoS constraint handed to policies, milliseconds.
    pub qos_p99_ms: Option<f32>,
    /// RNG seed for LC latency sampling.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            history_window_s: 120,
            max_drain_s: 2400.0,
            lc_latency_samples: 8000,
            qos_p99_ms: None,
            seed: 7,
        }
    }
}

/// Outcome of one finished application.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Workload name.
    pub name: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Mode it ran in.
    pub mode: MemoryMode,
    /// Whether the mode came from the policy (vs forced).
    pub policy_decided: bool,
    /// Arrival time, seconds.
    pub arrived_s: f64,
    /// Completion time, seconds.
    pub finished_s: f64,
    /// Wall-clock runtime, seconds (the BE performance metric).
    pub runtime_s: f64,
    /// Mean slowdown experienced.
    pub mean_slowdown: f32,
    /// p99 response time, ms (LC only).
    pub p99_ms: Option<f32>,
    /// p99.9 response time, ms (LC only).
    pub p999_ms: Option<f32>,
    /// Time to serve the configured load, seconds (LC only).
    pub lc_total_time_s: Option<f32>,
}

/// Everything recorded during one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the policy that ran.
    pub policy: String,
    /// Finished applications in completion order.
    pub outcomes: Vec<AppOutcome>,
    /// The full 1 Hz metric trace.
    pub samples: Vec<MetricSample>,
    /// Total bytes moved over the ThymesisFlow link.
    pub link_bytes: f64,
    /// Final simulation time, seconds.
    pub end_time_s: f64,
    /// Arrivals that never completed within the drain budget.
    pub unfinished: usize,
}

impl RunReport {
    /// Outcomes of policy-decided applications of one class.
    pub fn decided_of_class(&self, class: WorkloadClass) -> impl Iterator<Item = &AppOutcome> {
        self.outcomes
            .iter()
            .filter(move |o| o.class == class && o.policy_decided)
    }

    /// `(local, remote)` placement counts over policy-decided apps.
    pub fn placement_counts(&self) -> (usize, usize) {
        let mut local = 0;
        let mut remote = 0;
        for o in self.outcomes.iter().filter(|o| o.policy_decided) {
            match o.mode {
                MemoryMode::Local => local += 1,
                MemoryMode::Remote => remote += 1,
            }
        }
        (local, remote)
    }

    /// Fraction of policy-decided apps placed on remote memory.
    pub fn offload_fraction(&self) -> f32 {
        let (local, remote) = self.placement_counts();
        let total = local + remote;
        if total == 0 {
            0.0
        } else {
            remote as f32 / total as f32
        }
    }

    /// The 1 Hz history window (`window_s` rows) preceding `at_s`, if the
    /// trace covers it. Used to extract model inputs for trace records.
    pub fn history_before(&self, at_s: f64, window_s: usize) -> Option<Vec<MetricVec>> {
        let end = at_s.floor() as usize;
        if end < window_s || end > self.samples.len() {
            return None;
        }
        Some(
            self.samples[end - window_s..end]
                .iter()
                .map(|s| *s.vec())
                .collect(),
        )
    }

    /// Mean metric vector over `[from_s, to_s)`, if the trace covers at
    /// least one sample of it.
    pub fn mean_between(&self, from_s: f64, to_s: f64) -> Option<MetricVec> {
        let lo = (from_s.floor() as usize).min(self.samples.len());
        let hi = (to_s.ceil() as usize).min(self.samples.len());
        if lo >= hi {
            return None;
        }
        let mut acc = MetricVec::zero();
        for s in &self.samples[lo..hi] {
            acc = acc.add(s.vec());
        }
        Some(acc.scale(1.0 / (hi - lo) as f32))
    }
}

/// Hooks the engine invokes while replaying a schedule.
///
/// The engine loop is generic over the observer and the no-op
/// implementation for `()` has empty inlined methods, so the
/// unobserved [`run_schedule`] monomorphizes to exactly the
/// pre-observability code — tracing costs nothing unless an observer
/// is attached.
pub trait EngineObserver {
    /// Called once per placement (policy-decided *and* forced), right
    /// after the deployment id is assigned.
    fn on_decision(
        &mut self,
        at_s: f64,
        id: DeploymentId,
        profile: &WorkloadProfile,
        history: Option<&[MetricVec]>,
        decision: &ExplainedDecision,
        policy_name: &str,
    ) {
        let _ = (at_s, id, profile, history, decision, policy_name);
    }

    /// Called once per simulated second with the testbed's step report.
    fn on_step(&mut self, report: &StepReport) {
        let _ = report;
    }

    /// Called when an application finishes, with its full outcome.
    fn on_complete(&mut self, id: DeploymentId, outcome: &AppOutcome) {
        let _ = (id, outcome);
    }

    /// Called once after the run, with the final report and the time of
    /// the last scheduled arrival (for drain-time accounting).
    fn on_run_end(&mut self, report: &RunReport, last_arrival_s: f64) {
        let _ = (report, last_arrival_s);
    }
}

/// The no-op observer: every hook is an empty default method.
impl EngineObserver for () {}

/// The load specification used to measure a store's tail latency,
/// mirroring the paper: 10 k requests/client for Redis, 40 k for
/// Memcached (≈30 k and ≈100 k ops/s respectively).
pub fn lc_load_spec(profile: &WorkloadProfile) -> LoadSpec {
    match profile.name() {
        "memcached" => LoadSpec::paper_default(40_000),
        _ => LoadSpec::paper_default(10_000),
    }
}

/// Replays `arrivals` on a fresh testbed under `policy`.
///
/// Each simulated second: deploy due arrivals (consulting the policy
/// unless the arrival forces a mode), step the testbed, feed the Watcher
/// and collect completions. LC completions get their tail latency
/// measured from the contention environment averaged over their
/// residency.
///
/// # Panics
///
/// Panics if `arrivals` is not sorted by arrival time.
pub fn run_schedule(
    testbed_cfg: TestbedConfig,
    engine_cfg: EngineConfig,
    arrivals: &[ScheduledArrival],
    policy: &mut dyn Policy,
) -> RunReport {
    run_schedule_inner(testbed_cfg, engine_cfg, arrivals, &[], policy, &mut ())
}

/// [`run_schedule`] with an attached [`adrias_obs::Observer`]: every
/// placement lands in the decision audit trail, each step feeds the sim
/// metrics, and completed apps become trace spans. Same-seed runs leave
/// byte-identical exports in the observer.
pub fn run_schedule_observed(
    testbed_cfg: TestbedConfig,
    engine_cfg: EngineConfig,
    arrivals: &[ScheduledArrival],
    policy: &mut dyn Policy,
    obs: &mut adrias_obs::Observer,
) -> RunReport {
    let mut run = crate::engine_obs::ObservedRun::new(obs);
    run_schedule_inner(testbed_cfg, engine_cfg, arrivals, &[], policy, &mut run)
}

/// [`run_schedule_observed`] with a link-degradation schedule: each
/// [`FaultEvent`] is applied to the testbed just before the first step
/// at or after its `at_s`, in order. An empty `faults` slice runs the
/// exact un-faulted loop (same RNG streams, bit-identical report).
///
/// # Panics
///
/// Panics if `arrivals` or `faults` is not sorted by time.
pub fn run_schedule_observed_faulted(
    testbed_cfg: TestbedConfig,
    engine_cfg: EngineConfig,
    arrivals: &[ScheduledArrival],
    faults: &[FaultEvent],
    policy: &mut dyn Policy,
    obs: &mut adrias_obs::Observer,
) -> RunReport {
    let mut run = crate::engine_obs::ObservedRun::new(obs);
    run_schedule_inner(testbed_cfg, engine_cfg, arrivals, faults, policy, &mut run)
}

/// [`run_schedule`] with a caller-supplied [`EngineObserver`] — the
/// generic extension point behind both [`run_schedule`] (which passes
/// the no-op `()` observer) and [`run_schedule_observed`] (which passes
/// [`crate::ObservedRun`]). The loop is monomorphized per observer
/// type, so an observer with empty hooks compiles down to the plain
/// engine loop.
pub fn run_schedule_hooked<O: EngineObserver>(
    testbed_cfg: TestbedConfig,
    engine_cfg: EngineConfig,
    arrivals: &[ScheduledArrival],
    policy: &mut dyn Policy,
    obs: &mut O,
) -> RunReport {
    run_schedule_inner(testbed_cfg, engine_cfg, arrivals, &[], policy, obs)
}

fn run_schedule_inner<O: EngineObserver>(
    testbed_cfg: TestbedConfig,
    engine_cfg: EngineConfig,
    arrivals: &[ScheduledArrival],
    faults: &[FaultEvent],
    policy: &mut dyn Policy,
    obs: &mut O,
) -> RunReport {
    assert!(
        arrivals.windows(2).all(|w| w[0].at_s <= w[1].at_s),
        "arrivals must be sorted by time"
    );
    assert!(
        faults.windows(2).all(|w| w[0].at_s <= w[1].at_s),
        "faults must be sorted by time"
    );
    let mut testbed = Testbed::new(testbed_cfg, engine_cfg.seed);
    let mut next_fault = 0usize;
    let mut watcher = Watcher::new(engine_cfg.history_window_s.max(1));
    let mut lc_rng = Xoshiro256pp::seed_from_u64(engine_cfg.seed ^ 0x1C);
    let mut outcomes = Vec::new();
    let mut samples = Vec::new();
    let mut next_arrival = 0usize;
    // Decision-path fast lane: one history buffer reused across every
    // decision (refilled in place, no per-decision window allocation),
    // plus the Watcher stamp that lets stamp-aware policies memoise
    // their system-state forecast between arrivals of the same second.
    let mut history_buf: Vec<MetricVec> = Vec::with_capacity(engine_cfg.history_window_s);
    // Deployment id → (policy_decided, profile)
    let mut decided: std::collections::HashMap<adrias_sim::DeploymentId, (bool, WorkloadProfile)> =
        std::collections::HashMap::new();

    let last_arrival_s = arrivals.last().map_or(0.0, |a| a.at_s);
    let deadline_s = last_arrival_s + engine_cfg.max_drain_s;

    loop {
        let now = testbed.time_s();
        // Apply every link fault due at or before `now` (last one wins)
        // before deployments consult the policy and the testbed steps.
        while next_fault < faults.len() && faults[next_fault].at_s <= now {
            testbed.set_link(faults[next_fault].link);
            next_fault += 1;
        }
        // Deploy everything due at or before `now`.
        while next_arrival < arrivals.len() && arrivals[next_arrival].at_s <= now {
            let arrival = &arrivals[next_arrival];
            next_arrival += 1;
            let stamp = watcher.history_fill(engine_cfg.history_window_s, &mut history_buf);
            let history_rows: Option<&[MetricVec]> = stamp.map(|_| history_buf.as_slice());
            let (decision, was_decided) = match arrival.forced_mode {
                Some(m) => (
                    ExplainedDecision {
                        mode: m,
                        rule: adrias_obs::DecisionRule::Forced,
                        pred_local: None,
                        pred_remote: None,
                    },
                    false,
                ),
                None => {
                    let ctx = DecisionContext {
                        profile: &arrival.profile,
                        history: history_rows,
                        qos_p99_ms: engine_cfg.qos_p99_ms,
                        stamp,
                    };
                    (policy.decide_explained(&ctx), true)
                }
            };
            let duration = arrival
                .duration_s
                .unwrap_or_else(|| arrival.profile.base_runtime_s());
            let id = testbed.deploy_for(arrival.profile.clone(), decision.mode, duration);
            obs.on_decision(
                now,
                id,
                &arrival.profile,
                history_rows,
                &decision,
                policy.name(),
            );
            decided.insert(id, (was_decided, arrival.profile.clone()));
        }

        let report = testbed.step();
        watcher.record(report.sample);
        samples.push(report.sample);
        obs.on_step(&report);

        for done in report.finished {
            let (policy_decided, profile) = decided
                .remove(&done.id)
                .expect("completion for unknown deployment");
            let (p99, p999, total) = if done.class == WorkloadClass::LatencyCritical {
                let spec = lc_load_spec(&profile);
                let tl = tail_latency(
                    &profile,
                    &spec,
                    &done.average_env,
                    engine_cfg.lc_latency_samples,
                    &mut lc_rng,
                );
                (Some(tl.p99_ms), Some(tl.p999_ms), Some(tl.total_time_s))
            } else {
                (None, None, None)
            };
            let outcome = AppOutcome {
                name: done.name,
                class: done.class,
                mode: done.mode,
                policy_decided,
                arrived_s: done.arrived_s,
                finished_s: done.finished_s,
                runtime_s: done.runtime_s,
                mean_slowdown: done.mean_slowdown,
                p99_ms: p99,
                p999_ms: p999,
                lc_total_time_s: total,
            };
            obs.on_complete(done.id, &outcome);
            outcomes.push(outcome);
        }

        let all_arrived = next_arrival == arrivals.len();
        if (all_arrived && testbed.resident_count() == 0) || testbed.time_s() >= deadline_s {
            break;
        }
    }

    let report = RunReport {
        policy: policy.name().to_owned(),
        outcomes,
        samples,
        link_bytes: testbed.link_bytes_total(),
        end_time_s: testbed.time_s(),
        unfinished: testbed.resident_count() + (arrivals.len() - next_arrival),
    };
    obs.on_run_end(&report, last_arrival_s);
    report
}

/// Runs `profile` isolated on an empty testbed in `mode` and returns its
/// outcome paired with the metric trace — the signature-capture primitive
/// and the Figs. 3–4 isolation experiment.
pub fn run_isolated(
    testbed_cfg: TestbedConfig,
    engine_cfg: EngineConfig,
    profile: WorkloadProfile,
    mode: MemoryMode,
) -> (AppOutcome, Vec<MetricSample>) {
    let mut testbed = Testbed::new(testbed_cfg, engine_cfg.seed);
    let mut lc_rng = Xoshiro256pp::seed_from_u64(engine_cfg.seed ^ 0x150);
    let (done, trace) = testbed.run_isolated(profile.clone(), mode);
    let (p99, p999, total) = if done.class == WorkloadClass::LatencyCritical {
        let spec = lc_load_spec(&profile);
        let tl = tail_latency(
            &profile,
            &spec,
            &done.average_env,
            engine_cfg.lc_latency_samples,
            &mut lc_rng,
        );
        (Some(tl.p99_ms), Some(tl.p999_ms), Some(tl.total_time_s))
    } else {
        (None, None, None)
    };
    (
        AppOutcome {
            name: done.name,
            class: done.class,
            mode: done.mode,
            policy_decided: false,
            arrived_s: done.arrived_s,
            finished_s: done.finished_s,
            runtime_s: done.runtime_s,
            mean_slowdown: done.mean_slowdown,
            p99_ms: p99,
            p999_ms: p999,
            lc_total_time_s: total,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{AllLocalPolicy, AllRemotePolicy, RoundRobinPolicy};
    use adrias_workloads::{ibench, spark, IbenchKind};

    fn quick_engine() -> EngineConfig {
        EngineConfig {
            lc_latency_samples: 2000,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn empty_schedule_terminates_immediately() {
        let mut policy = AllLocalPolicy::new();
        let report = run_schedule(TestbedConfig::noiseless(), quick_engine(), &[], &mut policy);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.unfinished, 0);
    }

    #[test]
    fn single_be_app_completes_with_base_runtime() {
        let app = spark::by_name("wordcount").unwrap();
        let arrivals = [ScheduledArrival::new(0.0, app.clone())];
        let mut policy = AllLocalPolicy::new();
        let report = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
        assert_eq!(report.outcomes.len(), 1);
        let o = &report.outcomes[0];
        assert!(o.policy_decided);
        assert_eq!(o.mode, MemoryMode::Local);
        assert!((o.runtime_s - f64::from(app.base_runtime_s())).abs() <= 1.5);
        assert_eq!(report.unfinished, 0);
        assert!(!report.samples.is_empty());
    }

    #[test]
    fn forced_modes_bypass_policy() {
        let app = spark::by_name("gmm").unwrap();
        let arrivals = [ScheduledArrival::new(0.0, app).with_mode(MemoryMode::Remote)];
        let mut policy = AllLocalPolicy::new();
        let report = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
        assert_eq!(report.outcomes[0].mode, MemoryMode::Remote);
        assert!(!report.outcomes[0].policy_decided);
        assert_eq!(report.placement_counts(), (0, 0));
    }

    #[test]
    fn lc_outcomes_carry_tail_latency() {
        let redis = adrias_workloads::keyvalue::redis();
        let arrivals = [ScheduledArrival::new(0.0, redis).with_duration(40.0)];
        let mut policy = AllRemotePolicy::new();
        let report = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
        let o = &report.outcomes[0];
        assert!(o.p99_ms.unwrap() > 0.0);
        assert!(o.p999_ms.unwrap() >= o.p99_ms.unwrap());
        assert!(o.lc_total_time_s.unwrap() > 0.0);
    }

    #[test]
    fn round_robin_alternates_across_schedule() {
        let app = spark::by_name("gmm").unwrap();
        let arrivals: Vec<ScheduledArrival> = (0..4)
            .map(|i| ScheduledArrival::new(i as f64 * 5.0, app.clone()))
            .collect();
        let mut policy = RoundRobinPolicy::new();
        let report = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
        assert_eq!(report.placement_counts(), (2, 2));
        assert!((report.offload_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn remote_apps_generate_link_traffic_local_do_not() {
        let app = spark::by_name("lr").unwrap();
        let mut all_local = AllLocalPolicy::new();
        let local_report = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &[ScheduledArrival::new(0.0, app.clone())],
            &mut all_local,
        );
        assert_eq!(local_report.link_bytes, 0.0);

        let mut all_remote = AllRemotePolicy::new();
        let remote_report = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &[ScheduledArrival::new(0.0, app)],
            &mut all_remote,
        );
        assert!(remote_report.link_bytes > 0.0);
    }

    #[test]
    fn trace_windows_are_extractable() {
        let app = spark::by_name("sort").unwrap();
        let stressor = ibench::profile(IbenchKind::MemBw);
        let arrivals = vec![
            ScheduledArrival::new(0.0, stressor)
                .with_mode(MemoryMode::Local)
                .with_duration(400.0),
            ScheduledArrival::new(150.0, app),
        ];
        let mut policy = AllLocalPolicy::new();
        let report = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
        let o = report
            .outcomes
            .iter()
            .find(|o| o.name == "sort")
            .expect("sort finished");
        let hist = report.history_before(o.arrived_s, 120).expect("window");
        assert_eq!(hist.len(), 120);
        assert!(report.history_before(50.0, 120).is_none());
        let fut = report
            .mean_between(o.arrived_s, o.arrived_s + 120.0)
            .expect("future mean");
        assert!(fut.get(adrias_telemetry::Metric::LlcLoads) > 0.0);
    }

    #[test]
    fn drain_budget_bounds_runtime() {
        let stressor = ibench::profile(IbenchKind::Cpu);
        let arrivals = [ScheduledArrival::new(0.0, stressor)
            .with_mode(MemoryMode::Local)
            .with_duration(100_000.0)];
        let cfg = EngineConfig {
            max_drain_s: 50.0,
            ..quick_engine()
        };
        let mut policy = AllLocalPolicy::new();
        let report = run_schedule(TestbedConfig::noiseless(), cfg, &arrivals, &mut policy);
        assert!(report.end_time_s <= 60.0);
        assert_eq!(report.unfinished, 1);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_arrivals_rejected() {
        let app = spark::by_name("gmm").unwrap();
        let arrivals = vec![
            ScheduledArrival::new(10.0, app.clone()),
            ScheduledArrival::new(5.0, app),
        ];
        let mut policy = AllLocalPolicy::new();
        let _ = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical_to_unfaulted_run() {
        let app = spark::by_name("lr").unwrap();
        let arrivals = [ScheduledArrival::new(0.0, app)];
        let run = |faults: &[FaultEvent]| {
            let mut policy = AllRemotePolicy::new();
            let mut obs = adrias_obs::Observer::default();
            let report = run_schedule_observed_faulted(
                TestbedConfig::paper(),
                quick_engine(),
                &arrivals,
                faults,
                &mut policy,
                &mut obs,
            );
            (
                format!("{report:?}"),
                adrias_obs::export::to_jsonl_events(&obs),
            )
        };
        assert_eq!(run(&[]), run(&[]));
        let (plain_report, plain_events) = run(&[]);
        let mut policy = AllRemotePolicy::new();
        let unfaulted = run_schedule(
            TestbedConfig::paper(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
        assert_eq!(plain_report, format!("{unfaulted:?}"));
        assert!(!plain_events.is_empty());
    }

    #[test]
    fn throughput_collapse_slows_remote_apps() {
        let app = spark::by_name("lr").unwrap();
        let arrivals = [ScheduledArrival::new(0.0, app)];
        let run = |faults: &[FaultEvent]| {
            let mut policy = AllRemotePolicy::new();
            let mut obs = adrias_obs::Observer::default();
            run_schedule_observed_faulted(
                TestbedConfig::noiseless(),
                quick_engine(),
                &arrivals,
                faults,
                &mut policy,
                &mut obs,
            )
        };
        let healthy = run(&[]);
        let collapsed = run(&[FaultEvent {
            at_s: 0.0,
            link: LinkConfig {
                effective_cap_gbps: 0.25,
                base_latency_cycles: 850.0,
                saturated_latency_cycles: 1700.0,
                remote_latency_ns: 2400.0,
                ..LinkConfig::paper()
            },
        }]);
        assert!(
            collapsed.outcomes[0].runtime_s > healthy.outcomes[0].runtime_s,
            "collapsed link {} vs healthy {}",
            collapsed.outcomes[0].runtime_s,
            healthy.outcomes[0].runtime_s
        );
    }

    #[test]
    fn healing_fault_restores_the_link() {
        // Flap: degrade at t=0, heal at t=5; a local app is unaffected
        // either way, but a remote app started after the heal sees the
        // healthy link again.
        let app = spark::by_name("lr").unwrap();
        let degraded = LinkConfig {
            effective_cap_gbps: 0.25,
            remote_latency_ns: 2400.0,
            ..LinkConfig::paper()
        };
        let flap = [
            FaultEvent {
                at_s: 0.0,
                link: degraded,
            },
            FaultEvent {
                at_s: 5.0,
                link: LinkConfig::paper(),
            },
        ];
        let arrivals = [ScheduledArrival::new(10.0, app.clone())];
        let mut policy = AllRemotePolicy::new();
        let mut obs = adrias_obs::Observer::default();
        let flapped = run_schedule_observed_faulted(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &flap,
            &mut policy,
            &mut obs,
        );
        let mut policy = AllRemotePolicy::new();
        let healthy = run_schedule(
            TestbedConfig::noiseless(),
            quick_engine(),
            &arrivals,
            &mut policy,
        );
        assert!(
            (flapped.outcomes[0].runtime_s - healthy.outcomes[0].runtime_s).abs() < 1.0,
            "healed link should behave like the healthy one: {} vs {}",
            flapped.outcomes[0].runtime_s,
            healthy.outcomes[0].runtime_s
        );
    }

    #[test]
    #[should_panic(expected = "faults must be sorted")]
    fn unsorted_faults_rejected() {
        let faults = [
            FaultEvent {
                at_s: 10.0,
                link: LinkConfig::paper(),
            },
            FaultEvent {
                at_s: 5.0,
                link: LinkConfig::paper(),
            },
        ];
        let mut policy = AllLocalPolicy::new();
        let mut obs = adrias_obs::Observer::default();
        let _ = run_schedule_observed_faulted(
            TestbedConfig::noiseless(),
            quick_engine(),
            &[],
            &faults,
            &mut policy,
            &mut obs,
        );
    }

    #[test]
    fn isolated_run_matches_testbed_isolation() {
        let app = spark::by_name("nweight").unwrap();
        let (outcome, trace) = run_isolated(
            TestbedConfig::noiseless(),
            quick_engine(),
            app.clone(),
            MemoryMode::Remote,
        );
        let ratio = outcome.runtime_s / f64::from(app.base_runtime_s());
        assert!((ratio - f64::from(app.remote_penalty())).abs() < 0.1);
        assert_eq!(trace.len(), outcome.finished_s.ceil() as usize);
    }
}
